//! Property-based tests for the workload models: stream well-formedness
//! across arbitrary seeds and benchmarks.

use paco_types::InstrClass;
use paco_workloads::{BenchmarkId, Workload, ALL_BENCHMARKS};
use proptest::prelude::*;

fn any_benchmark() -> impl Strategy<Value = BenchmarkId> {
    (0usize..ALL_BENCHMARKS.len()).prop_map(|i| ALL_BENCHMARKS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The goodpath stream follows architectural successors for every
    /// benchmark and seed: instruction N+1 sits at N's successor PC.
    #[test]
    fn stream_continuity(bench in any_benchmark(), seed in 1u64..1_000_000) {
        let mut w = bench.build(seed);
        let mut prev = w.next_instr();
        for _ in 0..3_000 {
            let cur = w.next_instr();
            prop_assert_eq!(cur.pc, prev.successor());
            prev = cur;
        }
    }

    /// Streams are reproducible from the seed.
    #[test]
    fn stream_determinism(bench in any_benchmark(), seed in 1u64..1_000_000) {
        let mut a = bench.build(seed);
        let mut b = bench.build(seed);
        for _ in 0..500 {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    /// Memory instructions always carry addresses inside the model's data
    /// region; non-memory instructions never carry one.
    #[test]
    fn memory_addresses_in_region(bench in any_benchmark(), seed in 1u64..1_000_000) {
        let spec = bench.spec();
        let lo = spec.data.base;
        let hi = spec.data.base + spec.data.footprint.max(64);
        let mut w = bench.build(seed);
        for _ in 0..3_000 {
            let i = w.next_instr();
            match i.class {
                InstrClass::Load | InstrClass::Store => {
                    let a = i.mem.expect("memory op must carry an address").addr;
                    prop_assert!((lo..hi).contains(&a), "addr {a:#x} outside region");
                }
                _ => prop_assert!(i.mem.is_none()),
            }
        }
    }

    /// Wrong-path generators stay inside the code footprint and advance
    /// sequentially between redirects.
    #[test]
    fn wrong_path_well_formed(bench in any_benchmark(), seed in 1u64..1_000_000) {
        let w = bench.build(seed);
        let start = w.cfg().blocks()[0].start_pc;
        let mut gen = w.wrong_path(start, seed ^ 0xbad);
        let mut prev_pc = None;
        for _ in 0..500 {
            let i = gen.next_instr();
            if let Some(p) = prev_pc {
                prop_assert_eq!(i.pc, p, "wrong path must be sequential");
            }
            prev_pc = Some(i.pc.next());
            if i.class.is_control() {
                let t = i.target.addr();
                let base = start.addr();
                prop_assert!(t >= base && t < base + w.cfg().code_bytes() + 64);
            }
        }
    }

    /// The dynamic conditional-branch fraction stays in a plausible band
    /// for every model (control flow density drives everything downstream).
    #[test]
    fn branch_density_plausible(bench in any_benchmark(), seed in 1u64..100) {
        let mut w = bench.build(seed);
        let mut cond = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if w.next_instr().class.is_conditional_branch() {
                cond += 1;
            }
        }
        let frac = cond as f64 / n as f64;
        prop_assert!((0.02..0.30).contains(&frac), "conditional fraction {frac}");
    }
}
