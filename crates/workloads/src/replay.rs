//! Trace replay: a [`Workload`] backed by a recorded instruction stream.
//!
//! Recording lives in the `paco-trace` crate (which depends on this one);
//! replay lives here so that *every* simulator entry point — gating
//! sweeps, SMT pairings, reliability diagrams — accepts a recorded trace
//! wherever it accepts a synthetic workload, with no code changes. The
//! coupling point is the [`ReplaySource`] trait: `paco-trace` implements
//! it over its on-disk chunk format, and [`BufferSource`] implements it
//! over an in-memory record vector.

use crate::wrong_path::WrongPathParams;
use crate::Workload;
use paco_types::DynInstr;

/// A rewindable stream of recorded goodpath instructions.
///
/// Implementations must be deterministic: after [`rewind`](Self::rewind),
/// [`next_record`](Self::next_record) must reproduce the same sequence.
/// Sources are validated at construction; an implementation that hits an
/// unrecoverable I/O or corruption error mid-stream may panic, since a
/// replayed simulation cannot meaningfully continue on a diverged stream.
///
/// Sources are `Send` so that replay workloads (and the machines built on
/// them) can run on experiment-engine worker threads.
pub trait ReplaySource: std::fmt::Debug + Send {
    /// The next recorded instruction, or `None` at end of trace.
    fn next_record(&mut self) -> Option<DynInstr>;

    /// Restarts the stream from the first record.
    fn rewind(&mut self);

    /// Total records in the stream, when cheaply known.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A [`ReplaySource`] over an in-memory record vector.
///
/// # Examples
///
/// ```
/// use paco_types::{DynInstr, Pc};
/// use paco_workloads::{BufferSource, ReplaySource};
///
/// let mut src = BufferSource::new(vec![DynInstr::alu(Pc::new(0x1000))]);
/// assert!(src.next_record().is_some());
/// assert!(src.next_record().is_none());
/// src.rewind();
/// assert!(src.next_record().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct BufferSource {
    records: Vec<DynInstr>,
    pos: usize,
}

impl BufferSource {
    /// Wraps a record vector.
    pub fn new(records: Vec<DynInstr>) -> Self {
        BufferSource { records, pos: 0 }
    }
}

impl ReplaySource for BufferSource {
    fn next_record(&mut self) -> Option<DynInstr> {
        let r = self.records.get(self.pos).copied();
        self.pos += r.is_some() as usize;
        r
    }

    fn rewind(&mut self) {
        self.pos = 0;
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }
}

/// A workload that replays a recorded goodpath instruction stream.
///
/// Implements [`Workload`], so a recorded trace drops into every
/// simulator entry point unchanged. Two semantics matter:
///
/// * **Looping.** When the simulated run needs more instructions than the
///   trace holds, the stream rewinds and replays from the start
///   (mirroring how trace-driven simulators traditionally handle short
///   traces); [`loops`](Self::loops) counts the rewinds so harnesses can
///   report coverage.
/// * **Wrong paths.** The trace holds only goodpath instructions (a trace
///   has no wrong path, cf. the paper's §3 discussion); wrong-path
///   excursions are re-synthesized from the recorded
///   [`WrongPathParams`], which makes them identical to the live run's.
///
/// # Examples
///
/// ```
/// use paco_workloads::{BenchmarkId, BufferSource, TraceWorkload, Workload};
///
/// // "Record" 1000 instructions of gzip, then replay 2500: the stream
/// // loops and stays identical to the original.
/// let mut live = BenchmarkId::Gzip.build(7);
/// let records: Vec<_> = (0..1000).map(|_| live.next_instr()).collect();
/// let mut replay = TraceWorkload::new(
///     "gzip",
///     live.wrong_path_params(),
///     Box::new(BufferSource::new(records.clone())),
/// );
/// for i in 0..2500 {
///     assert_eq!(replay.next_instr(), records[i % 1000]);
/// }
/// assert_eq!(replay.loops(), 2);
/// ```
#[derive(Debug)]
pub struct TraceWorkload {
    name: String,
    params: WrongPathParams,
    source: Box<dyn ReplaySource>,
    produced: u64,
    loops: u64,
}

impl TraceWorkload {
    /// Creates a replay workload over `source`.
    ///
    /// `name` and `params` normally come from the trace header and must
    /// match the recorded workload for bit-exact replay.
    pub fn new(
        name: impl Into<String>,
        params: WrongPathParams,
        source: Box<dyn ReplaySource>,
    ) -> Self {
        TraceWorkload {
            name: name.into(),
            params,
            source,
            produced: 0,
            loops: 0,
        }
    }

    /// How many times the stream has wrapped back to the start.
    pub fn loops(&self) -> u64 {
        self.loops
    }

    /// Total records in the underlying source, when known.
    pub fn trace_len(&self) -> Option<u64> {
        self.source.len_hint()
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_instr(&mut self) -> DynInstr {
        self.produced += 1;
        if let Some(i) = self.source.next_record() {
            return i;
        }
        self.loops += 1;
        self.source.rewind();
        self.source
            .next_record()
            .expect("replay source must contain at least one record")
    }

    fn wrong_path_params(&self) -> WrongPathParams {
        self.params
    }

    fn instructions_produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BenchmarkId;
    use paco_types::Pc;

    fn recorded(n: usize) -> (Vec<DynInstr>, WrongPathParams) {
        let mut w = BenchmarkId::Twolf.build(3);
        let records = (0..n).map(|_| w.next_instr()).collect();
        (records, w.wrong_path_params())
    }

    #[test]
    fn replays_the_recorded_stream_verbatim() {
        let (records, params) = recorded(500);
        let mut t = TraceWorkload::new(
            "twolf",
            params,
            Box::new(BufferSource::new(records.clone())),
        );
        for r in &records {
            assert_eq!(t.next_instr(), *r);
        }
        assert_eq!(t.instructions_produced(), 500);
        assert_eq!(t.loops(), 0);
    }

    #[test]
    fn loops_past_the_end() {
        let (records, params) = recorded(100);
        let mut t = TraceWorkload::new(
            "twolf",
            params,
            Box::new(BufferSource::new(records.clone())),
        );
        for i in 0..350 {
            assert_eq!(t.next_instr(), records[i % 100], "index {i}");
        }
        assert_eq!(t.loops(), 3);
        assert_eq!(t.trace_len(), Some(100));
    }

    #[test]
    fn wrong_path_matches_the_original_workload() {
        let w = BenchmarkId::Gap.build(11);
        let params = w.wrong_path_params();
        let t = TraceWorkload::new("gap", params, Box::new(BufferSource::new(vec![])));
        let from = Pc::new(params.code_base + 64);
        let mut live = w.wrong_path(from, 1234);
        let mut replayed = t.wrong_path(from, 1234);
        for _ in 0..200 {
            assert_eq!(live.next_instr(), replayed.next_instr());
        }
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn empty_source_panics_on_pull() {
        let (_, params) = recorded(1);
        let mut t = TraceWorkload::new("empty", params, Box::new(BufferSource::new(vec![])));
        t.next_instr();
    }
}
