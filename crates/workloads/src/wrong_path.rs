//! Wrong-path instruction synthesis.
//!
//! The paper's execution-driven simulator fetches real instructions down
//! mispredicted paths. A trace has no wrong path, so we synthesize one:
//! instructions with the same broad mix as the goodpath stream, PCs inside
//! the program's code footprint (so they perturb the I-cache and BTB), and
//! data accesses spread over the data footprint (cache pollution — the
//! effect the paper observes on `gap` and `perlbmk`).

use crate::generator::DataParams;
use paco_types::{ControlKind, DynInstr, InstrClass, Pc, SplitMix64};

/// Everything needed to synthesize a workload's wrong-path streams.
///
/// Wrong-path generation is a pure function of these parameters plus the
/// `(from, seed)` pair of each excursion, which is what makes recorded
/// traces replayable bit-for-bit: a
/// [`TraceWorkload`](crate::TraceWorkload) carrying the original
/// workload's parameters produces *identical* wrong-path streams to the
/// live run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrongPathParams {
    /// Base address of the code footprint (first block's start PC).
    pub code_base: u64,
    /// Code footprint size in bytes.
    pub code_bytes: u64,
    /// Data-address stream parameters for wrong-path loads/stores.
    pub data: DataParams,
}

/// A generator of synthetic wrong-path instructions.
///
/// Created by [`Workload::wrong_path`](crate::Workload::wrong_path) when a
/// branch mispredicts; the simulator pulls instructions from it until the
/// mispredicted branch resolves, calling [`redirect`](Self::redirect)
/// whenever a wrong-path control instruction is predicted taken.
#[derive(Debug, Clone)]
pub struct WrongPathGen {
    rng: SplitMix64,
    cursor: Pc,
    code_base: u64,
    code_bytes: u64,
    data: DataParams,
    produced: u64,
}

impl WrongPathGen {
    /// Fraction of wrong-path instructions that are conditional branches.
    const COND_FRAC: f64 = 0.12;
    /// Fraction that are unconditional jumps.
    const JUMP_FRAC: f64 = 0.04;
    /// Fraction that are loads.
    const LOAD_FRAC: f64 = 0.26;
    /// Fraction that are stores.
    const STORE_FRAC: f64 = 0.10;

    /// Creates a wrong-path generator for `params` starting at `from`.
    pub fn for_params(from: Pc, params: WrongPathParams, seed: u64) -> Self {
        Self::new(from, params.code_base, params.code_bytes, params.data, seed)
    }

    /// Creates a wrong-path generator starting at `from`.
    pub fn new(from: Pc, code_base: u64, code_bytes: u64, data: DataParams, seed: u64) -> Self {
        WrongPathGen {
            rng: SplitMix64::new(seed ^ 0xbad_bad_bad),
            cursor: from,
            code_base,
            code_bytes: code_bytes.max(64),
            data,
            produced: 0,
        }
    }

    /// A random instruction-aligned PC inside the code footprint.
    fn random_code_pc(&mut self) -> Pc {
        let words = self.code_bytes / Pc::INSTR_BYTES;
        Pc::new(self.code_base + self.rng.below(words.max(1)) * Pc::INSTR_BYTES)
    }

    /// Produces the next wrong-path instruction at the current cursor.
    ///
    /// Conditional branches are emitted with `taken = false` and a
    /// plausible taken-target; the *simulator* decides the fetch direction
    /// from its predictor (there is no ground truth down a wrong path).
    pub fn next_instr(&mut self) -> DynInstr {
        self.produced += 1;
        let pc = self.cursor;
        let draw = self.rng.next_f64();
        let instr = if draw < Self::COND_FRAC {
            let target = self.random_code_pc();
            DynInstr {
                pc,
                class: InstrClass::Control(ControlKind::Conditional),
                deps: [0, 0],
                mem: None,
                taken: false,
                target,
            }
        } else if draw < Self::COND_FRAC + Self::JUMP_FRAC {
            let target = self.random_code_pc();
            DynInstr {
                pc,
                class: InstrClass::Control(ControlKind::Jump),
                deps: [0, 0],
                mem: None,
                taken: true,
                target,
            }
        } else if draw < Self::COND_FRAC + Self::JUMP_FRAC + Self::LOAD_FRAC {
            let fp = self.data.footprint.max(64);
            DynInstr {
                pc,
                class: InstrClass::Load,
                deps: [self.dep(), self.dep()],
                mem: None,
                taken: false,
                target: Pc::default(),
            }
            .with_mem(self.data.base + self.rng.below(fp / 8) * 8)
        } else if draw < Self::COND_FRAC + Self::JUMP_FRAC + Self::LOAD_FRAC + Self::STORE_FRAC {
            let fp = self.data.footprint.max(64);
            DynInstr {
                pc,
                class: InstrClass::Store,
                deps: [self.dep(), self.dep()],
                mem: None,
                taken: false,
                target: Pc::default(),
            }
            .with_mem(self.data.base + self.rng.below(fp / 8) * 8)
        } else {
            DynInstr {
                pc,
                class: InstrClass::Alu,
                deps: [self.dep(), self.dep()],
                mem: None,
                taken: false,
                target: Pc::default(),
            }
        };
        self.cursor = self.cursor.next();
        instr
    }

    fn dep(&mut self) -> u32 {
        if self.rng.chance_f64(0.6) {
            1 + self.rng.below(4) as u32
        } else {
            0
        }
    }

    /// Redirects the wrong-path cursor (the simulator followed a predicted
    /// taken branch).
    pub fn redirect(&mut self, to: Pc) {
        self.cursor = to;
    }

    /// The PC the next instruction will be generated at (drives the
    /// simulator's I-cache probe).
    pub fn cursor(&self) -> Pc {
        self.cursor
    }

    /// Number of wrong-path instructions produced.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64) -> WrongPathGen {
        WrongPathGen::new(
            Pc::new(0x40_1000),
            0x40_0000,
            1 << 16,
            DataParams::friendly(),
            seed,
        )
    }

    #[test]
    fn pcs_advance_sequentially_until_redirect() {
        let mut g = gen(1);
        let a = g.next_instr();
        let b = g.next_instr();
        assert_eq!(b.pc, a.pc.next());
        g.redirect(Pc::new(0x40_2000));
        assert_eq!(g.next_instr().pc, Pc::new(0x40_2000));
    }

    #[test]
    fn mix_includes_branches_and_memory() {
        let mut g = gen(2);
        let mut cond = 0;
        let mut mem = 0;
        for _ in 0..10_000 {
            let i = g.next_instr();
            if i.class.is_conditional_branch() {
                cond += 1;
            }
            if i.mem.is_some() {
                mem += 1;
            }
        }
        assert!((800..=1600).contains(&cond), "cond branches {cond}");
        assert!(mem > 2500, "memory ops {mem}");
    }

    #[test]
    fn targets_stay_in_code_footprint() {
        let mut g = gen(3);
        for _ in 0..5_000 {
            let i = g.next_instr();
            if i.class.is_control() {
                let t = i.target.addr();
                assert!((0x40_0000..0x40_0000 + (1 << 16)).contains(&t));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = gen(7);
        let mut b = gen(7);
        for _ in 0..100 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }
}
