//! The CFG walker: turns a [`SyntheticCfg`] into an endless goodpath
//! dynamic instruction stream.

use crate::behavior::{BehaviorState, OutcomeCtx};
use crate::cfg::{ControlTerminator, SyntheticCfg};
use crate::wrong_path::WrongPathParams;
use crate::Workload;
use paco_types::{ControlKind, DynInstr, InstrClass, Pc, SplitMix64};

/// Parameters for the data-address stream of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataParams {
    /// Base virtual address of the data region.
    pub base: u64,
    /// Data footprint in bytes — small footprints fit in L1/L2, large ones
    /// (mcf) thrash.
    pub footprint: u64,
    /// Number of sequential streams.
    pub streams: usize,
    /// Probability that an access follows a stream rather than jumping to
    /// a random address in the footprint.
    pub locality: f64,
}

impl DataParams {
    /// A cache-friendly default.
    pub const fn friendly() -> Self {
        DataParams {
            base: 0x1000_0000,
            footprint: 1 << 16, // 64 KB: fits in L2 easily
            streams: 4,
            locality: 0.9,
        }
    }

    /// A cache-hostile configuration (mcf-like).
    pub const fn hostile() -> Self {
        DataParams {
            base: 0x1000_0000,
            footprint: 1 << 26, // 64 MB: thrashes L2
            streams: 2,
            locality: 0.25,
        }
    }
}

#[derive(Debug, Clone)]
struct DataAddressGen {
    params: DataParams,
    stream_offsets: Vec<u64>,
}

impl DataAddressGen {
    fn new(params: DataParams) -> Self {
        DataAddressGen {
            stream_offsets: (0..params.streams.max(1))
                .map(|i| (i as u64 * 0x1000) % params.footprint.max(1))
                .collect(),
            params,
        }
    }

    fn next_addr(&mut self, rng: &mut SplitMix64) -> u64 {
        let fp = self.params.footprint.max(64);
        if rng.chance_f64(self.params.locality) {
            let s = rng.below(self.stream_offsets.len() as u64) as usize;
            let off = self.stream_offsets[s];
            self.stream_offsets[s] = (off + 8) % fp;
            self.params.base + off
        } else {
            self.params.base + (rng.below(fp / 8)) * 8
        }
    }
}

/// A workload produced by walking a [`SyntheticCfg`].
///
/// # Examples
///
/// ```
/// use paco_workloads::{BenchmarkId, Workload};
/// use paco_types::InstrClass;
///
/// let mut w = BenchmarkId::Bzip2.build(1);
/// let mut branches = 0;
/// for _ in 0..10_000 {
///     if w.next_instr().class.is_control() {
///         branches += 1;
///     }
/// }
/// assert!(branches > 500, "control flow should be a sizable fraction");
/// ```
#[derive(Debug, Clone)]
pub struct CfgWorkload {
    name: String,
    cfg: SyntheticCfg,
    behavior_states: Vec<BehaviorState>,
    indirect_cursor: Vec<usize>,
    call_stack: CallRing,
    data: DataAddressGen,
    rng: SplitMix64,
    cur_block: usize,
    cur_slot: usize,
    actual_history: u64,
    produced: u64,
    since_conditional: u64,
    wrong_path_data: DataParams,
}

/// A fixed-depth call-continuation ring with the same wrap-on-overflow
/// semantics as the simulator's return-address stack, so that deep
/// recursion corrupts the *actual* return targets exactly the way the RAS
/// predicts them — deep returns then still match instead of mispredicting.
#[derive(Debug, Clone)]
struct CallRing {
    ring: Vec<usize>,
    top: usize,
    occupancy: usize,
}

impl CallRing {
    fn new(depth: usize) -> Self {
        CallRing {
            ring: vec![0; depth],
            top: 0,
            occupancy: 0,
        }
    }

    fn push(&mut self, continuation: usize) {
        let depth = self.ring.len();
        self.ring[self.top] = continuation;
        self.top = (self.top + 1) % depth;
        self.occupancy = (self.occupancy + 1).min(depth);
    }

    fn pop(&mut self) -> Option<usize> {
        if self.occupancy == 0 {
            return None;
        }
        let depth = self.ring.len();
        self.top = (self.top + depth - 1) % depth;
        self.occupancy -= 1;
        Some(self.ring[self.top])
    }
}

impl CfgWorkload {
    /// Depth of the generator's call-continuation ring; matches the
    /// simulator's default return-address-stack depth so overflow behaviour
    /// is identical on both sides.
    const MAX_STACK: usize = 32;

    /// Creates a workload walking `cfg`.
    pub fn new(name: impl Into<String>, cfg: SyntheticCfg, data: DataParams, seed: u64) -> Self {
        let behavior_states = cfg.behaviors().iter().map(|b| b.new_state()).collect();
        let indirect_cursor = vec![0; cfg.blocks().len()];
        CfgWorkload {
            name: name.into(),
            behavior_states,
            indirect_cursor,
            call_stack: CallRing::new(Self::MAX_STACK),
            data: DataAddressGen::new(data),
            rng: SplitMix64::new(seed ^ 0x5eed_f00d),
            cfg,
            cur_block: 0,
            cur_slot: 0,
            actual_history: 0,
            produced: 0,
            since_conditional: 0,
            wrong_path_data: data,
        }
    }

    /// Instructions without a conditional branch after which the walk
    /// forcibly escapes to a random block. Random CFGs can contain small
    /// conditional-free cycles (pure jump/return loops); real programs
    /// escape those via interrupts, and so do we.
    const ESCAPE_LIMIT: u64 = 256;

    /// The underlying CFG.
    pub fn cfg(&self) -> &SyntheticCfg {
        &self.cfg
    }

    fn fall_through(&self, block: usize) -> usize {
        (block + 1) % self.cfg.blocks().len()
    }

    fn emit_terminator(&mut self) -> DynInstr {
        let nblocks = self.cfg.blocks().len();
        let block_idx = self.cur_block;
        let pc = self.cfg.blocks()[block_idx].terminator_pc();
        let terminator = self.cfg.blocks()[block_idx].terminator.clone();
        // Anti-trap escape: see ESCAPE_LIMIT.
        let escape_target = if self.since_conditional >= Self::ESCAPE_LIMIT
            && !matches!(terminator, ControlTerminator::Conditional { .. })
        {
            self.since_conditional = 0;
            Some(self.rng.below(nblocks as u64) as usize)
        } else {
            None
        };
        let (instr, next_block) = match terminator {
            ControlTerminator::Conditional {
                behavior,
                taken_target,
            } => {
                let ctx = OutcomeCtx {
                    actual_history: self.actual_history,
                    instr_count: self.produced,
                };
                let spec = &self.cfg.behaviors()[behavior];
                let taken = spec.outcome(&mut self.behavior_states[behavior], ctx, &mut self.rng);
                self.actual_history = (self.actual_history << 1) | taken as u64;
                self.since_conditional = 0;
                let target_pc = self.cfg.blocks()[taken_target].start_pc;
                let next = if taken {
                    taken_target
                } else {
                    self.fall_through(block_idx)
                };
                (DynInstr::branch(pc, taken, target_pc), next)
            }
            ControlTerminator::Jump { target } => {
                let target = escape_target.unwrap_or(target);
                (
                    DynInstr {
                        pc,
                        class: InstrClass::Control(ControlKind::Jump),
                        deps: [0, 0],
                        mem: None,
                        taken: true,
                        target: self.cfg.blocks()[target].start_pc,
                    },
                    target,
                )
            }
            ControlTerminator::Call { target } => {
                let target = escape_target.unwrap_or(target);
                let continuation = self.fall_through(block_idx);
                self.call_stack.push(continuation);
                (
                    DynInstr {
                        pc,
                        class: InstrClass::Control(ControlKind::Call),
                        deps: [0, 0],
                        mem: None,
                        taken: true,
                        target: self.cfg.blocks()[target].start_pc,
                    },
                    target,
                )
            }
            ControlTerminator::Return => {
                // A return that actually matches a call pops the stack and
                // is emitted as a Return (predictable by the RAS). When the
                // generator stack is empty (walk "returned" past its entry)
                // or the anti-trap escape fires, the walk continues at a
                // random block — real programs reach such code via computed
                // jumps, so emit a Jump (which front ends resolve at
                // decode) rather than a bogus unpredictable Return.
                let (kind, target) = match (escape_target, self.call_stack.pop()) {
                    (Some(t), popped) => {
                        // The escape discards the pending continuation, if
                        // any, exactly like a longjmp.
                        let _ = popped;
                        (ControlKind::Jump, t)
                    }
                    (None, Some(t)) => (ControlKind::Return, t),
                    (None, None) => (ControlKind::Jump, self.rng.below(nblocks as u64) as usize),
                };
                (
                    DynInstr {
                        pc,
                        class: InstrClass::Control(kind),
                        deps: [0, 0],
                        mem: None,
                        taken: true,
                        target: self.cfg.blocks()[target].start_pc,
                    },
                    target,
                )
            }
            ControlTerminator::Indirect {
                ref targets,
                switch_prob,
            } => {
                let cursor = &mut self.indirect_cursor[block_idx];
                if self.rng.chance_f64(switch_prob) {
                    *cursor = (*cursor + 1) % targets.len().max(1);
                }
                let target = escape_target
                    .unwrap_or_else(|| targets.get(*cursor).copied().unwrap_or(0) % nblocks);
                (
                    DynInstr {
                        pc,
                        class: InstrClass::Control(ControlKind::Indirect),
                        deps: [0, 0],
                        mem: None,
                        taken: true,
                        target: self.cfg.blocks()[target].start_pc,
                    },
                    target,
                )
            }
            ControlTerminator::FallThrough => {
                // Emits nothing; jump straight to the next block's first
                // instruction by recursing (bounded: blocks are finite).
                // Undo the count bump — the recursion re-counts.
                self.produced -= 1;
                self.cur_block = self.fall_through(block_idx);
                self.cur_slot = 0;
                return self.next_instr();
            }
        };
        self.cur_block = next_block;
        self.cur_slot = 0;
        instr
    }
}

impl Workload for CfgWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_instr(&mut self) -> DynInstr {
        self.produced += 1;
        self.since_conditional += 1;
        let block = &self.cfg.blocks()[self.cur_block];
        if self.cur_slot < block.body.len() {
            let class = block.body[self.cur_slot];
            let deps = block.deps[self.cur_slot];
            let pc = block.start_pc.offset(self.cur_slot as u64);
            self.cur_slot += 1;
            let mut instr = DynInstr {
                pc,
                class,
                deps,
                mem: None,
                taken: false,
                target: Pc::default(),
            };
            if matches!(class, InstrClass::Load | InstrClass::Store) {
                instr = instr.with_mem(self.data.next_addr(&mut self.rng));
            }
            instr
        } else {
            self.emit_terminator()
        }
    }

    fn wrong_path_params(&self) -> WrongPathParams {
        WrongPathParams {
            code_base: self.cfg.blocks()[0].start_pc.addr(),
            code_bytes: self.cfg.code_bytes(),
            data: self.wrong_path_data,
        }
    }

    fn instructions_produced(&self) -> u64 {
        self.produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::CfgParams;

    fn test_workload(seed: u64) -> CfgWorkload {
        let params = CfgParams::test_default();
        let cfg = SyntheticCfg::build(&params, seed);
        CfgWorkload::new("test", cfg, DataParams::friendly(), seed)
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = test_workload(3);
        let mut b = test_workload(3);
        for _ in 0..10_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn taken_branches_land_on_block_starts() {
        let mut w = test_workload(4);
        let starts: std::collections::HashSet<u64> =
            w.cfg().blocks().iter().map(|b| b.start_pc.addr()).collect();
        for _ in 0..20_000 {
            let i = w.next_instr();
            if i.class.is_control() && i.taken {
                assert!(starts.contains(&i.target.addr()), "target {:x}", i.target);
            }
        }
    }

    #[test]
    fn not_taken_branches_fall_through_sequentially() {
        let mut w = test_workload(4);
        let mut prev: Option<DynInstr> = None;
        for _ in 0..20_000 {
            let i = w.next_instr();
            if let Some(p) = prev {
                assert_eq!(
                    i.pc,
                    p.successor(),
                    "instruction stream must follow architectural successors"
                );
            }
            prev = Some(i);
        }
    }

    #[test]
    fn loads_and_stores_carry_addresses() {
        let mut w = test_workload(9);
        let mut mem_seen = 0;
        for _ in 0..10_000 {
            let i = w.next_instr();
            match i.class {
                InstrClass::Load | InstrClass::Store => {
                    assert!(i.mem.is_some());
                    mem_seen += 1;
                }
                _ => assert!(i.mem.is_none()),
            }
        }
        assert!(mem_seen > 2000, "mem fraction too low: {mem_seen}");
    }

    #[test]
    fn friendly_data_reuses_addresses() {
        let mut gen = DataAddressGen::new(DataParams::friendly());
        let mut rng = SplitMix64::new(5);
        let mut set = std::collections::HashSet::new();
        for _ in 0..10_000 {
            set.insert(gen.next_addr(&mut rng));
        }
        // 64KB footprint / 8B granules = 8192 distinct addresses max.
        assert!(set.len() <= 8192);
    }

    #[test]
    fn hostile_data_spreads_addresses() {
        let mut gen = DataAddressGen::new(DataParams::hostile());
        let mut rng = SplitMix64::new(5);
        let mut set = std::collections::HashSet::new();
        for _ in 0..10_000 {
            set.insert(gen.next_addr(&mut rng) >> 6); // cache lines
        }
        assert!(set.len() > 5_000, "hostile stream must touch many lines");
    }

    #[test]
    fn call_return_targets_match_continuations() {
        // Whenever a Return is emitted, its target must equal the
        // continuation a RAS-like ring (same depth, same wrap semantics)
        // would predict — by construction the generator and the simulator's
        // return-address stack then agree even under deep recursion.
        let mut w = test_workload(11);
        let mut ring = CallRing::new(CfgWorkload::MAX_STACK);
        let mut checked = 0;
        for _ in 0..50_000 {
            let i = w.next_instr();
            match i.class {
                InstrClass::Control(ControlKind::Call) => {
                    // Continuations are block starts; the call's
                    // fall-through PC is exactly the next block.
                    ring.push(i.pc.next().addr() as usize);
                }
                InstrClass::Control(ControlKind::Return) => {
                    let expect = ring.pop().expect("generator emits Jump on empty stack");
                    assert_eq!(i.target.addr() as usize, expect);
                    checked += 1;
                }
                _ => {}
            }
        }
        assert!(checked > 10, "need real call/return nesting: {checked}");
    }

    #[test]
    fn instructions_produced_counts() {
        let mut w = test_workload(1);
        for _ in 0..123 {
            w.next_instr();
        }
        assert_eq!(w.instructions_produced(), 123);
    }
}
