//! The twelve named SPEC2000int-like benchmark models.
//!
//! Each model is a parameter set for [`SyntheticCfg`] + [`CfgWorkload`]
//! chosen to land near the paper's per-benchmark branch statistics
//! (Table 7) and to reproduce the qualitative pathology the paper calls
//! out for the benchmark (phases for gcc/mcf, clustered mispredicts for
//! gap, the indirect-call blind spot for perlbmk, near-perfect prediction
//! for vortex, hard data-dependent branches for twolf/vpr).
//!
//! The achieved mispredict rates are *emergent*: outcomes stream through
//! the real tournament predictor, so the numbers below are targets, and
//! the calibration test in this module checks the workspace stays in the
//! right regime.

use crate::behavior::BehaviorSpec;
use crate::cfg::{CfgParams, SyntheticCfg};
use crate::generator::{CfgWorkload, DataParams};
use paco_types::canon::Canon;

/// Identifies one of the twelve modeled benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum BenchmarkId {
    Bzip2,
    Crafty,
    Gcc,
    Gap,
    Gzip,
    Mcf,
    Parser,
    Perlbmk,
    Twolf,
    Vortex,
    VprPlace,
    VprRoute,
}

/// All benchmarks, in the paper's table order.
pub const ALL_BENCHMARKS: [BenchmarkId; 12] = [
    BenchmarkId::Bzip2,
    BenchmarkId::Crafty,
    BenchmarkId::Gcc,
    BenchmarkId::Gap,
    BenchmarkId::Gzip,
    BenchmarkId::Mcf,
    BenchmarkId::Parser,
    BenchmarkId::Perlbmk,
    BenchmarkId::Twolf,
    BenchmarkId::Vortex,
    BenchmarkId::VprPlace,
    BenchmarkId::VprRoute,
];

impl BenchmarkId {
    /// The benchmark's display name (paper spelling).
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkId::Bzip2 => "bzip2",
            BenchmarkId::Crafty => "crafty",
            BenchmarkId::Gcc => "gcc",
            BenchmarkId::Gap => "gap",
            BenchmarkId::Gzip => "gzip",
            BenchmarkId::Mcf => "mcf",
            BenchmarkId::Parser => "parser",
            BenchmarkId::Perlbmk => "perlbmk",
            BenchmarkId::Twolf => "twolf",
            BenchmarkId::Vortex => "vortex",
            BenchmarkId::VprPlace => "vprPlace",
            BenchmarkId::VprRoute => "vprRoute",
        }
    }

    /// Parses a benchmark name (paper spelling, case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_BENCHMARKS
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The model specification.
    pub fn spec(self) -> ModelSpec {
        ModelSpec::for_benchmark(self)
    }

    /// Builds the workload with a given seed.
    pub fn build(self, seed: u64) -> CfgWorkload {
        self.spec().build(seed)
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Canon for BenchmarkId {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x30); // type tag
                        // Discriminant = position in the paper's table order, which is
                        // stable; the name is included so renames/reorders cannot silently
                        // alias cache keys.
        let idx = ALL_BENCHMARKS.iter().position(|b| b == self).unwrap() as u8;
        idx.canon(out);
        self.name().canon(out);
    }
}

/// The full parameterization of one benchmark model.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Which benchmark this models.
    pub id: BenchmarkId,
    /// CFG construction parameters.
    pub cfg: CfgParams,
    /// Data-address stream parameters.
    pub data: DataParams,
    /// The paper's conditional-branch mispredict rate (Table 7), percent.
    pub paper_cond_mispredict_pct: f64,
    /// The paper's overall control-flow mispredict rate (Table 7), percent.
    pub paper_overall_mispredict_pct: f64,
}

impl ModelSpec {
    /// Builds the workload for this spec.
    pub fn build(&self, seed: u64) -> CfgWorkload {
        let cfg = SyntheticCfg::build(&self.cfg, seed ^ self.id as u64);
        CfgWorkload::new(self.id.name(), cfg, self.data, seed.wrapping_mul(0x9e37))
    }

    /// Overrides the indirect-site target-switch probability
    /// (benchmarks whose overall mispredict rate exceeds their conditional
    /// rate in Table 7 need noisier indirect control flow).
    fn with_indirect_churn(mut self, switch_prob: f64) -> Self {
        self.cfg.indirect_switch_prob = switch_prob;
        self
    }

    /// The specification for a benchmark (see module docs for rationale).
    pub fn for_benchmark(id: BenchmarkId) -> ModelSpec {
        use BehaviorSpec::{Bias, Burst, Correlated, Loop, Phased};
        let std_terms = [0.72, 0.08, 0.08, 0.08, 0.04];
        let base = |blocks, mix: Vec<(BehaviorSpec, f64)>, data, cond, overall| ModelSpec {
            id,
            cfg: CfgParams {
                blocks,
                min_body: 3,
                max_body: 10,
                code_base: 0x0040_0000,
                terminator_weights: std_terms,
                behavior_mix: mix,
                load_frac: 0.28,
                store_frac: 0.11,
                muldiv_frac: 0.03,
                indirect_fanout: 3,
                indirect_switch_prob: 0.002,
                bias_jitter: 0.4,
            },
            data,
            paper_cond_mispredict_pct: cond,
            paper_overall_mispredict_pct: overall,
        };

        let data_medium = DataParams {
            base: 0x1000_0000,
            footprint: 1 << 21, // 2 MB
            streams: 4,
            locality: 0.65,
        };

        match id {
            BenchmarkId::Bzip2 => base(
                360,
                vec![
                    (Bias(0.85), 0.45),
                    (Bias(0.70), 0.12),
                    (Bias(0.98), 0.30),
                    (Loop(6), 0.13),
                ],
                DataParams {
                    base: 0x1000_0000,
                    footprint: 1 << 22,
                    streams: 6,
                    locality: 0.75,
                },
                10.5,
                9.03,
            ),
            BenchmarkId::Crafty => base(
                800,
                vec![
                    (Bias(0.92), 0.40),
                    (Bias(0.80), 0.08),
                    (Bias(0.99), 0.40),
                    (
                        Correlated {
                            bits: 6,
                            noise: 0.02,
                        },
                        0.12,
                    ),
                ],
                DataParams::friendly(),
                5.49,
                5.43,
            ),
            BenchmarkId::Gcc => base(
                2200,
                vec![
                    (
                        Phased {
                            specs: vec![Bias(0.97), Bias(0.92), Bias(0.96), Bias(0.995)],
                            period: 25_000,
                        },
                        0.35,
                    ),
                    (Bias(0.995), 0.55),
                    (Loop(5), 0.10),
                ],
                DataParams {
                    base: 0x1000_0000,
                    footprint: 1 << 20,
                    streams: 4,
                    locality: 0.7,
                },
                2.61,
                3.07,
            )
            .with_indirect_churn(0.012),
            BenchmarkId::Gap => base(
                500,
                vec![
                    (
                        Burst {
                            calm_taken: 0.97,
                            enter_burst: 0.004,
                            exit_burst: 0.02,
                        },
                        0.35,
                    ),
                    (Bias(0.97), 0.45),
                    (Loop(7), 0.20),
                ],
                data_medium,
                5.16,
                6.05,
            )
            .with_indirect_churn(0.012),
            BenchmarkId::Gzip => base(
                150,
                vec![
                    (Bias(0.94), 0.35),
                    (Bias(0.99), 0.45),
                    (Loop(12), 0.10),
                    (
                        Correlated {
                            bits: 4,
                            noise: 0.005,
                        },
                        0.10,
                    ),
                ],
                DataParams {
                    base: 0x1000_0000,
                    footprint: 1 << 19,
                    streams: 4,
                    locality: 0.85,
                },
                3.17,
                2.86,
            ),
            BenchmarkId::Mcf => base(
                160,
                vec![
                    (
                        Phased {
                            specs: vec![Bias(0.93), Bias(0.985)],
                            period: 400_000,
                        },
                        0.50,
                    ),
                    (Bias(0.95), 0.30),
                    (Bias(0.995), 0.20),
                ],
                DataParams::hostile(),
                4.51,
                3.95,
            ),
            BenchmarkId::Parser => base(
                700,
                vec![
                    (Bias(0.90), 0.35),
                    (Bias(0.98), 0.45),
                    (
                        Correlated {
                            bits: 5,
                            noise: 0.03,
                        },
                        0.20,
                    ),
                ],
                data_medium,
                5.26,
                3.98,
            ),
            BenchmarkId::Perlbmk => {
                // >95% of mispredicts come from one hot indirect call that
                // keeps switching targets; conditional branches are almost
                // perfectly predictable.
                let mut spec = base(
                    600,
                    vec![
                        (Bias(0.9997), 0.90),
                        (
                            Correlated {
                                bits: 2,
                                noise: 0.001,
                            },
                            0.10,
                        ),
                    ],
                    DataParams::friendly(),
                    0.11,
                    9.73,
                );
                spec.cfg.terminator_weights = [0.62, 0.08, 0.10, 0.10, 0.10];
                spec.cfg.indirect_fanout = 6;
                spec.cfg.indirect_switch_prob = 0.35;
                spec
            }
            BenchmarkId::Twolf => base(
                420,
                vec![(Bias(0.72), 0.40), (Bias(0.88), 0.25), (Bias(0.99), 0.35)],
                data_medium,
                14.8,
                11.8,
            ),
            BenchmarkId::Vortex => base(
                1200,
                // Nearly perfectly biased branches: bimodal learns each
                // site in a handful of executions, matching vortex's
                // famously predictable control flow.
                vec![(Bias(0.998), 0.90), (Bias(0.97), 0.10)],
                DataParams::friendly(),
                0.65,
                0.50,
            ),
            BenchmarkId::VprPlace => base(
                380,
                vec![(Bias(0.78), 0.55), (Bias(0.90), 0.20), (Bias(0.99), 0.25)],
                data_medium,
                11.7,
                9.47,
            ),
            BenchmarkId::VprRoute => base(
                380,
                vec![(Bias(0.74), 0.35), (Bias(0.87), 0.22), (Bias(0.995), 0.43)],
                data_medium,
                11.9,
                8.85,
            ),
        }
    }
}

/// A nonstationary stress model (not one of the twelve benchmarks): most
/// conditional sites drift sinusoidally between easy and hard regimes.
///
/// This is the regime the paper's Appendix A argues separates the MRT
/// designs: lifetime per-branch mispredict rates lag the drift, while the
/// MDC-bucketed, periodically re-measured MRT tracks it. Used by the
/// `tab_a1` harness's stress section and the integration suite.
pub fn drifting_stress_spec() -> ModelSpec {
    use BehaviorSpec::{Bias, Drifting};
    ModelSpec {
        id: BenchmarkId::Twolf, // reuses twolf's name slot for display only
        cfg: CfgParams {
            blocks: 400,
            min_body: 3,
            max_body: 10,
            code_base: 0x0040_0000,
            terminator_weights: [0.72, 0.08, 0.08, 0.08, 0.04],
            behavior_mix: vec![
                (
                    Drifting {
                        min_taken: 0.62,
                        max_taken: 0.995,
                        // Slow drift: several MRT refresh windows per
                        // oscillation, so the periodically re-measured MRT
                        // can track it while a lifetime average lags.
                        period: 1_500_000,
                    },
                    0.6,
                ),
                (Bias(0.97), 0.4),
            ],
            load_frac: 0.28,
            store_frac: 0.11,
            muldiv_frac: 0.03,
            indirect_fanout: 3,
            indirect_switch_prob: 0.002,
            bias_jitter: 0.4,
        },
        data: DataParams::friendly(),
        paper_cond_mispredict_pct: f64::NAN,
        paper_overall_mispredict_pct: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;

    #[test]
    fn all_models_build_and_stream() {
        for id in ALL_BENCHMARKS {
            let mut w = id.build(1);
            for _ in 0..5_000 {
                let _ = w.next_instr();
            }
            assert_eq!(w.name(), id.name());
        }
    }

    #[test]
    fn names_round_trip() {
        for id in ALL_BENCHMARKS {
            assert_eq!(BenchmarkId::from_name(id.name()), Some(id));
        }
        assert_eq!(
            BenchmarkId::from_name("VPRROUTE"),
            Some(BenchmarkId::VprRoute)
        );
        assert_eq!(BenchmarkId::from_name("eon"), None);
    }

    #[test]
    fn perlbmk_has_hot_indirect_sites() {
        let spec = BenchmarkId::Perlbmk.spec();
        assert!(spec.cfg.terminator_weights[4] >= 0.1);
        assert!(spec.cfg.indirect_switch_prob >= 0.3);
    }

    #[test]
    fn mcf_is_cache_hostile() {
        let spec = BenchmarkId::Mcf.spec();
        assert!(spec.data.footprint >= 1 << 25);
        assert!(spec.data.locality < 0.5);
    }

    #[test]
    fn models_are_deterministic_per_seed() {
        let mut a = BenchmarkId::Twolf.build(9);
        let mut b = BenchmarkId::Twolf.build(9);
        for _ in 0..1_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn paper_targets_recorded() {
        // Table 7 spot checks.
        assert_eq!(BenchmarkId::Twolf.spec().paper_cond_mispredict_pct, 14.8);
        assert_eq!(
            BenchmarkId::Vortex.spec().paper_overall_mispredict_pct,
            0.50
        );
    }

    /// A coarse end-to-end calibration check: streaming each model through
    /// the real tournament predictor must produce a conditional mispredict
    /// rate in the same regime as the paper's Table 7 value. (The precise
    /// values are recorded per run in EXPERIMENTS.md.)
    #[test]
    fn calibration_against_tournament_predictor() {
        use paco_branch::{DirectionPredictor, TournamentConfig, TournamentPredictor};
        use paco_types::GlobalHistory;

        for id in ALL_BENCHMARKS {
            let mut w = id.build(5);
            let mut pred = TournamentPredictor::new(TournamentConfig::paper());
            let mut hist = GlobalHistory::new(8);
            let mut branches = 0u64;
            let mut miss = 0u64;
            // Warm up, then measure.
            for phase in 0..2 {
                let (n, measure) = if phase == 0 {
                    (60_000, false)
                } else {
                    (240_000, true)
                };
                let mut seen = 0;
                while seen < n {
                    let i = w.next_instr();
                    if i.class.is_conditional_branch() {
                        let p = pred.predict(i.pc, hist.bits());
                        pred.update(i.pc, hist.bits(), i.taken, p);
                        hist.push(i.taken);
                        if measure {
                            branches += 1;
                            if p != i.taken {
                                miss += 1;
                            }
                        }
                    }
                    seen += 1;
                }
            }
            let rate = 100.0 * miss as f64 / branches as f64;
            let target = id.spec().paper_cond_mispredict_pct;
            // Regime check: within a factor band, not exact equality.
            let (lo, hi) = if target < 1.0 {
                (0.0, 2.0)
            } else {
                (target * 0.5, target * 1.7 + 1.0)
            };
            assert!(
                (lo..=hi).contains(&rate),
                "{}: achieved {rate:.2}% vs paper {target}% (band {lo:.1}..{hi:.1})",
                id.name()
            );
        }
    }
}
