//! Branch behaviour generators.
//!
//! Each static conditional-branch site in a synthetic CFG carries a
//! [`BehaviorSpec`] describing how its outcome stream is produced, and a
//! [`BehaviorState`] holding the site's runtime state (loop counters,
//! pattern positions, burst mode). The *mispredict rate* of a site is an
//! emergent property of streaming its outcomes through the real tournament
//! predictor: a `Bias(0.7)` site ends up around 30% mispredicts, a
//! `Loop(10)` site around 10% under bimodal but near 0% under gshare, etc.

use paco_types::SplitMix64;

/// Context available to a behaviour generator when producing an outcome.
#[derive(Debug, Clone, Copy)]
pub struct OutcomeCtx {
    /// Actual outcomes of recent branches, youngest in bit 0.
    pub actual_history: u64,
    /// Count of dynamic instructions produced so far (drives phases).
    pub instr_count: u64,
}

/// The static description of a branch site's outcome process.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorSpec {
    /// Independent Bernoulli outcomes: taken with probability `p`.
    ///
    /// After training, the best any predictor can do is `min(p, 1−p)`
    /// mispredicts — this is the knob for "inherently hard" branches.
    Bias(f64),
    /// A loop-exit branch: taken `n−1` times, then not-taken once.
    ///
    /// Learnable by gshare when `n` fits the history length.
    Loop(u32),
    /// A fixed repeating outcome pattern.
    Pattern(Vec<bool>),
    /// Outcome is the parity of the last `bits` *actual* branch outcomes,
    /// flipped with probability `noise`.
    ///
    /// gshare learns the parity function; `noise` sets the floor.
    Correlated {
        /// How many recent outcomes feed the parity.
        bits: u32,
        /// Probability of flipping the deterministic outcome.
        noise: f64,
    },
    /// Markov-modulated burstiness: in *calm* mode the branch is taken with
    /// probability `calm_taken`; in *burst* mode it is an unpredictable
    /// 50/50. Transitions happen with probabilities `enter_burst` /
    /// `exit_burst` per execution. Produces globally clustered
    /// mispredicts (the paper's `gap` pathology).
    Burst {
        /// P(taken) while calm.
        calm_taken: f64,
        /// P(calm → burst) per execution.
        enter_burst: f64,
        /// P(burst → calm) per execution.
        exit_burst: f64,
    },
    /// Phase-modulated behaviour: cycles through `specs`, switching every
    /// `period` dynamic instructions (the gcc / mcf pathology).
    Phased {
        /// The per-phase behaviours.
        specs: Vec<BehaviorSpec>,
        /// Dynamic-instruction count per phase.
        period: u64,
    },
    /// Nonstationary bias: the taken-probability oscillates sinusoidally
    /// between `min_taken` and `max_taken` over `period` dynamic
    /// instructions, with a random per-site phase.
    ///
    /// This models the slow drift of real branches' behaviour. It is the
    /// stress case separating the MRT designs of Appendix A: a *lifetime*
    /// per-branch rate lags the drift, while the MDC bucketing (which keys
    /// on *recent* predictability) and the periodically refreshed MRT
    /// track it.
    Drifting {
        /// Minimum taken-probability over the cycle.
        min_taken: f64,
        /// Maximum taken-probability over the cycle.
        max_taken: f64,
        /// Dynamic instructions per full oscillation.
        period: u64,
    },
}

impl BehaviorSpec {
    /// Creates the runtime state for this spec.
    pub fn new_state(&self) -> BehaviorState {
        match self {
            BehaviorSpec::Phased { specs, .. } => BehaviorState {
                loop_count: 0,
                pattern_pos: 0,
                in_burst: false,
                phase_states: specs.iter().map(BehaviorSpec::new_state).collect(),
            },
            _ => BehaviorState::default(),
        }
    }

    /// Produces the next outcome for a site with state `state`.
    pub fn outcome(
        &self,
        state: &mut BehaviorState,
        ctx: OutcomeCtx,
        rng: &mut SplitMix64,
    ) -> bool {
        match self {
            BehaviorSpec::Bias(p) => rng.chance_f64(*p),
            BehaviorSpec::Loop(n) => {
                let n = (*n).max(2);
                state.loop_count += 1;
                if state.loop_count >= n {
                    state.loop_count = 0;
                    false
                } else {
                    true
                }
            }
            BehaviorSpec::Pattern(pat) => {
                if pat.is_empty() {
                    return false;
                }
                let out = pat[state.pattern_pos % pat.len()];
                state.pattern_pos = (state.pattern_pos + 1) % pat.len();
                out
            }
            BehaviorSpec::Correlated { bits, noise } => {
                let mask = if *bits >= 64 {
                    u64::MAX
                } else {
                    (1u64 << bits) - 1
                };
                let parity = ((ctx.actual_history & mask).count_ones() & 1) == 1;
                if rng.chance_f64(*noise) {
                    !parity
                } else {
                    parity
                }
            }
            BehaviorSpec::Burst {
                calm_taken,
                enter_burst,
                exit_burst,
            } => {
                if state.in_burst {
                    if rng.chance_f64(*exit_burst) {
                        state.in_burst = false;
                    }
                } else if rng.chance_f64(*enter_burst) {
                    state.in_burst = true;
                }
                if state.in_burst {
                    rng.chance_f64(0.5)
                } else {
                    rng.chance_f64(*calm_taken)
                }
            }
            BehaviorSpec::Drifting {
                min_taken,
                max_taken,
                period,
            } => {
                if !state.in_burst {
                    // Repurpose the flag as "phase initialized"; the phase
                    // itself lives in pattern_pos (scaled to the period).
                    state.in_burst = true;
                    state.pattern_pos = (rng.next_f64() * (*period).max(1) as f64) as usize;
                }
                let t = (ctx.instr_count + state.pattern_pos as u64) as f64;
                let angle = std::f64::consts::TAU * t / (*period).max(1) as f64;
                let mid = (min_taken + max_taken) / 2.0;
                let amp = (max_taken - min_taken) / 2.0;
                let p = mid + amp * angle.sin();
                rng.chance_f64(p)
            }
            BehaviorSpec::Phased { specs, period } => {
                if specs.is_empty() {
                    return false;
                }
                let phase = ((ctx.instr_count / (*period).max(1)) as usize) % specs.len();
                // Phase states were created in `new_state`; guard anyway.
                if state.phase_states.len() != specs.len() {
                    state.phase_states = specs.iter().map(BehaviorSpec::new_state).collect();
                }
                let mut sub = std::mem::take(&mut state.phase_states);
                let out = specs[phase].outcome(&mut sub[phase], ctx, rng);
                state.phase_states = sub;
                out
            }
        }
    }
}

/// Runtime state for one branch site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BehaviorState {
    loop_count: u32,
    pattern_pos: usize,
    in_burst: bool,
    phase_states: Vec<BehaviorState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(count: u64) -> OutcomeCtx {
        OutcomeCtx {
            actual_history: 0,
            instr_count: count,
        }
    }

    fn run(spec: &BehaviorSpec, n: usize) -> Vec<bool> {
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(7);
        (0..n)
            .map(|i| spec.outcome(&mut state, ctx(i as u64), &mut rng))
            .collect()
    }

    #[test]
    fn bias_matches_probability() {
        let outs = run(&BehaviorSpec::Bias(0.8), 50_000);
        let taken = outs.iter().filter(|&&t| t).count() as f64 / outs.len() as f64;
        assert!((taken - 0.8).abs() < 0.01, "taken rate {taken}");
    }

    #[test]
    fn loop_repeats_exactly() {
        let outs = run(&BehaviorSpec::Loop(4), 12);
        assert_eq!(
            outs,
            vec![true, true, true, false, true, true, true, false, true, true, true, false]
        );
    }

    #[test]
    fn pattern_repeats() {
        let outs = run(&BehaviorSpec::Pattern(vec![true, false]), 6);
        assert_eq!(outs, vec![true, false, true, false, true, false]);
    }

    #[test]
    fn correlated_without_noise_is_parity() {
        let spec = BehaviorSpec::Correlated {
            bits: 3,
            noise: 0.0,
        };
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(1);
        for hist in 0u64..8 {
            let c = OutcomeCtx {
                actual_history: hist,
                instr_count: 0,
            };
            let out = spec.outcome(&mut state, c, &mut rng);
            assert_eq!(out, hist.count_ones() % 2 == 1, "hist {hist:b}");
        }
    }

    #[test]
    fn burst_clusters_randomness() {
        let spec = BehaviorSpec::Burst {
            calm_taken: 1.0,
            enter_burst: 0.01,
            exit_burst: 0.05,
        };
        let outs = run(&spec, 100_000);
        // In calm mode the branch is always taken; every not-taken outcome
        // happens inside a burst. Not-taken outcomes must cluster: the
        // probability that a not-taken is followed within 5 slots by
        // another not-taken should far exceed the base rate.
        let nt: Vec<usize> = outs
            .iter()
            .enumerate()
            .filter(|(_, &t)| !t)
            .map(|(i, _)| i)
            .collect();
        assert!(!nt.is_empty());
        let base_rate = nt.len() as f64 / outs.len() as f64;
        let clustered =
            nt.windows(2).filter(|w| w[1] - w[0] <= 5).count() as f64 / (nt.len() - 1) as f64;
        assert!(
            clustered > 3.0 * base_rate,
            "clustered {clustered} vs base {base_rate}"
        );
    }

    #[test]
    fn drifting_oscillates_between_bounds() {
        let spec = BehaviorSpec::Drifting {
            min_taken: 0.1,
            max_taken: 0.9,
            period: 1000,
        };
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(9);
        // Sample the taken rate in two half-period windows; with a random
        // phase they must differ substantially at least somewhere across
        // the cycle.
        let mut window_rates = Vec::new();
        for w in 0..16u64 {
            let mut taken = 0;
            for i in 0..125 {
                let c = OutcomeCtx {
                    actual_history: 0,
                    instr_count: w * 125 + i,
                };
                taken += spec.outcome(&mut state, c, &mut rng) as u32;
            }
            window_rates.push(taken as f64 / 125.0);
        }
        let max = window_rates.iter().cloned().fold(0.0, f64::max);
        let min = window_rates.iter().cloned().fold(1.0, f64::min);
        assert!(
            max - min > 0.3,
            "drift must move the rate: {window_rates:?}"
        );
    }

    #[test]
    fn drifting_mean_rate_is_centered() {
        let spec = BehaviorSpec::Drifting {
            min_taken: 0.6,
            max_taken: 1.0,
            period: 2_000,
        };
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(3);
        let n = 100_000u64;
        let mut taken = 0u64;
        for i in 0..n {
            let c = OutcomeCtx {
                actual_history: 0,
                instr_count: i,
            };
            taken += spec.outcome(&mut state, c, &mut rng) as u64;
        }
        let rate = taken as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "mean rate {rate}");
    }

    #[test]
    fn phased_switches_behavior() {
        let spec = BehaviorSpec::Phased {
            specs: vec![BehaviorSpec::Bias(1.0), BehaviorSpec::Bias(0.0)],
            period: 100,
        };
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(3);
        let first = spec.outcome(&mut state, ctx(0), &mut rng);
        let second = spec.outcome(&mut state, ctx(150), &mut rng);
        assert!(first);
        assert!(!second);
    }

    #[test]
    fn phased_state_isolated_per_phase() {
        let spec = BehaviorSpec::Phased {
            specs: vec![BehaviorSpec::Loop(3), BehaviorSpec::Loop(3)],
            period: 10,
        };
        let mut state = spec.new_state();
        let mut rng = SplitMix64::new(3);
        // Drive phase 0 one step, then phase 1, then phase 0 again — the
        // loop counters must not interfere.
        let a = spec.outcome(&mut state, ctx(0), &mut rng);
        let _ = spec.outcome(&mut state, ctx(10), &mut rng);
        let b = spec.outcome(&mut state, ctx(0), &mut rng);
        assert!(a && b, "phase-0 loop counter must advance independently");
    }
}
