//! Synthetic control-flow graphs.
//!
//! A [`SyntheticCfg`] is a randomized-but-fixed program skeleton: a set of
//! basic blocks with fixed PCs, fixed instruction classes, and fixed
//! control-flow edges. Branch *outcomes* are dynamic (driven by
//! [`BehaviorSpec`]s at walk time), but the static structure — which gives
//! the I-cache, BTB and predictor tables realistic, repeating PC streams —
//! never changes after construction.

use crate::behavior::BehaviorSpec;
use paco_types::{InstrClass, Pc, SplitMix64};

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlTerminator {
    /// Conditional branch: `taken_target` if the behaviour says taken,
    /// fall-through otherwise.
    Conditional {
        /// Index of the behaviour spec driving this site.
        behavior: usize,
        /// Block index reached when taken.
        taken_target: usize,
    },
    /// Unconditional direct jump.
    Jump {
        /// Destination block index.
        target: usize,
    },
    /// Direct call: jumps to `target`, pushes the fall-through block.
    Call {
        /// Callee entry block index.
        target: usize,
    },
    /// Function return: pops the caller's continuation block.
    Return,
    /// Indirect jump/call rotating among `targets`.
    ///
    /// `switch_prob` is the per-execution probability of hopping to the
    /// next target in the set — the knob behind the `perlbmk` pathology
    /// (a last-target predictor mispredicts on every hop).
    Indirect {
        /// Candidate destination block indices.
        targets: Vec<usize>,
        /// Per-execution probability of switching targets.
        switch_prob: f64,
    },
    /// No control flow: fall straight through (merged blocks).
    FallThrough,
}

/// One basic block: a run of body instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start_pc: Pc,
    /// Instruction classes of the body (not including the terminator).
    pub body: Vec<InstrClass>,
    /// Dependency distances for each body instruction.
    pub deps: Vec<[u32; 2]>,
    /// The terminator.
    pub terminator: ControlTerminator,
}

impl BasicBlock {
    /// Total instructions in the block, including the terminator (0 for
    /// fall-through terminators, which emit no instruction).
    pub fn len(&self) -> usize {
        self.body.len()
            + match self.terminator {
                ControlTerminator::FallThrough => 0,
                _ => 1,
            }
    }

    /// Whether the block is empty (no body, fall-through terminator).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// PC of the terminator instruction.
    pub fn terminator_pc(&self) -> Pc {
        self.start_pc.offset(self.body.len() as u64)
    }

    /// PC of the first instruction after the block (fall-through target).
    pub fn end_pc(&self) -> Pc {
        self.start_pc.offset(self.len() as u64)
    }
}

/// Parameters controlling random CFG construction.
#[derive(Debug, Clone, PartialEq)]
pub struct CfgParams {
    /// Number of basic blocks.
    pub blocks: usize,
    /// Minimum body length per block.
    pub min_body: usize,
    /// Maximum body length per block.
    pub max_body: usize,
    /// Code base address.
    pub code_base: u64,
    /// Relative weights for terminator kinds:
    /// `[conditional, jump, call, return, indirect]`.
    pub terminator_weights: [f64; 5],
    /// Behaviour specs assigned round-robin-by-weight to conditional sites:
    /// `(spec, weight)`.
    pub behavior_mix: Vec<(BehaviorSpec, f64)>,
    /// Fraction of body instructions that are loads.
    pub load_frac: f64,
    /// Fraction of body instructions that are stores.
    pub store_frac: f64,
    /// Fraction of body instructions that are multi-cycle mul/div.
    pub muldiv_frac: f64,
    /// Number of targets per indirect site.
    pub indirect_fanout: usize,
    /// Per-execution probability an indirect site switches targets.
    pub indirect_switch_prob: f64,
    /// Construction-time jitter on each `Bias` site's minority-outcome
    /// rate: the rate is scaled by `2^u` with `u` uniform in
    /// `[-bias_jitter, bias_jitter]`. This gives sites a smooth continuum
    /// of mispredict rates (like real programs) instead of a few discrete
    /// classes, while preserving each class's order of magnitude.
    pub bias_jitter: f64,
}

impl CfgParams {
    /// A small, generic parameter set used by tests.
    pub fn test_default() -> Self {
        CfgParams {
            blocks: 64,
            min_body: 3,
            max_body: 9,
            code_base: 0x0040_0000,
            terminator_weights: [0.70, 0.10, 0.08, 0.08, 0.04],
            behavior_mix: vec![
                (BehaviorSpec::Bias(0.95), 0.6),
                (BehaviorSpec::Bias(0.7), 0.2),
                (BehaviorSpec::Loop(8), 0.2),
            ],
            load_frac: 0.30,
            store_frac: 0.12,
            muldiv_frac: 0.04,
            indirect_fanout: 4,
            indirect_switch_prob: 0.1,
            bias_jitter: 0.05,
        }
    }
}

/// A fixed synthetic program skeleton.
#[derive(Debug, Clone)]
pub struct SyntheticCfg {
    blocks: Vec<BasicBlock>,
    behaviors: Vec<BehaviorSpec>,
    code_bytes: u64,
}

impl SyntheticCfg {
    /// Builds a random CFG from `params`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `params.blocks == 0` or the body bounds are inverted.
    pub fn build(params: &CfgParams, seed: u64) -> Self {
        assert!(params.blocks > 0, "CFG needs at least one block");
        assert!(
            params.min_body <= params.max_body,
            "body length bounds inverted"
        );
        let mut rng = SplitMix64::new(seed);
        let mut behaviors = Vec::new();

        // First pass: choose body lengths and terminator kinds, assign PCs.
        let mut blocks = Vec::with_capacity(params.blocks);
        let mut pc_cursor = params.code_base;
        let kind_weights = params.terminator_weights;
        // Stratified behaviour assignment: pick the spec whose assigned
        // share lags its weight the most. This pins the *static* mix to the
        // requested proportions exactly, instead of letting sampling noise
        // skew small CFGs.
        let behavior_weights: Vec<f64> = params.behavior_mix.iter().map(|(_, w)| *w).collect();
        let weight_total: f64 = behavior_weights.iter().sum::<f64>().max(1e-12);
        let mut behavior_assigned = vec![0usize; params.behavior_mix.len()];

        for i in 0..params.blocks {
            let body_len = params.min_body
                + rng.below((params.max_body - params.min_body + 1) as u64) as usize;
            let mut body = Vec::with_capacity(body_len);
            let mut deps = Vec::with_capacity(body_len);
            for _ in 0..body_len {
                let draw = rng.next_f64();
                let class = if draw < params.load_frac {
                    InstrClass::Load
                } else if draw < params.load_frac + params.store_frac {
                    InstrClass::Store
                } else if draw < params.load_frac + params.store_frac + params.muldiv_frac {
                    InstrClass::MulDiv
                } else {
                    InstrClass::Alu
                };
                body.push(class);
                // Geometric-ish dependency distances 1..=8, sometimes none.
                let d0 = if rng.chance_f64(0.75) {
                    1 + rng.below(4) as u32
                } else {
                    0
                };
                let d1 = if rng.chance_f64(0.35) {
                    1 + rng.below(8) as u32
                } else {
                    0
                };
                deps.push([d0, d1]);
            }

            // Terminator kind. The last block always jumps back to block 0
            // so every walk is endless.
            let kind = if i == params.blocks - 1 {
                1 // jump
            } else {
                rng.weighted_choice(&kind_weights).unwrap_or(0)
            };
            let terminator = match kind {
                0 => {
                    let total_sites = behaviors.len() + 1;
                    let spec_idx = (0..behavior_weights.len())
                        .max_by(|&a, &b| {
                            let deficit = |i: usize| {
                                behavior_weights[i] / weight_total * total_sites as f64
                                    - behavior_assigned[i] as f64
                            };
                            deficit(a)
                                .partial_cmp(&deficit(b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or(0);
                    behavior_assigned[spec_idx] += 1;
                    let mut spec = params.behavior_mix[spec_idx].0.clone();
                    if let BehaviorSpec::Bias(p) = &mut spec {
                        let u = (rng.next_f64() * 2.0 - 1.0) * params.bias_jitter;
                        let factor = u.exp2();
                        // Scale the minority-outcome rate multiplicatively.
                        *p = if *p >= 0.5 {
                            1.0 - ((1.0 - *p) * factor).clamp(0.0005, 0.38)
                        } else {
                            (*p * factor).clamp(0.0005, 0.38)
                        };
                    }
                    behaviors.push(spec);
                    ControlTerminator::Conditional {
                        behavior: behaviors.len() - 1,
                        taken_target: rng.below(params.blocks as u64) as usize,
                    }
                }
                1 => ControlTerminator::Jump {
                    target: if i == params.blocks - 1 {
                        0
                    } else {
                        rng.below(params.blocks as u64) as usize
                    },
                },
                2 => ControlTerminator::Call {
                    target: rng.below(params.blocks as u64) as usize,
                },
                3 => ControlTerminator::Return,
                _ => {
                    let fanout = params.indirect_fanout.max(1);
                    let targets = (0..fanout)
                        .map(|_| rng.below(params.blocks as u64) as usize)
                        .collect();
                    ControlTerminator::Indirect {
                        targets,
                        switch_prob: params.indirect_switch_prob,
                    }
                }
            };

            // Blocks are laid out contiguously: a conditional branch's
            // fall-through PC is exactly the next block's start PC, so the
            // architectural successor of a not-taken branch is sequential.
            let start_pc = Pc::new(pc_cursor);
            let total_len = body_len + 1;
            pc_cursor += total_len as u64 * Pc::INSTR_BYTES;

            blocks.push(BasicBlock {
                start_pc,
                body,
                deps,
                terminator,
            });
        }

        SyntheticCfg {
            blocks,
            behaviors,
            code_bytes: pc_cursor - params.code_base,
        }
    }

    /// Assembles a CFG from explicit blocks and behaviour specs.
    ///
    /// This is the programmatic-construction entry point for generators
    /// that need precise control over structure (e.g. the `paco-corpus`
    /// Markov-walk family, where every transition probability is a
    /// parameter) instead of [`build`](Self::build)'s randomized layout.
    /// The walker's invariants still apply: blocks must be laid out
    /// contiguously (a not-taken conditional falls through to the next
    /// block's start PC), and the caller should make the last block an
    /// explicit [`ControlTerminator::Jump`] so the walk never falls off
    /// the end non-sequentially.
    ///
    /// # Panics
    ///
    /// Panics when `blocks` is empty, blocks overlap or are unordered, or
    /// a terminator references an out-of-range behaviour or block index.
    pub fn from_parts(blocks: Vec<BasicBlock>, behaviors: Vec<BehaviorSpec>) -> Self {
        assert!(!blocks.is_empty(), "CFG needs at least one block");
        for w in blocks.windows(2) {
            // Strict equality: a gap would make a not-taken conditional
            // "fall through" to a PC that is not its architectural
            // successor, breaking the stream-continuity invariant that
            // trace delta-PC encoding and replay depend on.
            assert!(
                w[0].end_pc() == w[1].start_pc,
                "blocks must be laid out contiguously and in order"
            );
        }
        let nblocks = blocks.len();
        for b in &blocks {
            match &b.terminator {
                ControlTerminator::Conditional {
                    behavior,
                    taken_target,
                } => {
                    assert!(*behavior < behaviors.len(), "behaviour index out of range");
                    assert!(*taken_target < nblocks, "taken target out of range");
                }
                ControlTerminator::Jump { target } | ControlTerminator::Call { target } => {
                    assert!(*target < nblocks, "target out of range");
                }
                ControlTerminator::Indirect { targets, .. } => {
                    for t in targets {
                        assert!(*t < nblocks, "indirect target out of range");
                    }
                }
                ControlTerminator::Return | ControlTerminator::FallThrough => {}
            }
        }
        let code_bytes = blocks.last().unwrap().end_pc().addr() - blocks[0].start_pc.addr();
        SyntheticCfg {
            blocks,
            behaviors,
            code_bytes,
        }
    }

    /// The basic blocks.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The behaviour specs referenced by conditional terminators.
    pub fn behaviors(&self) -> &[BehaviorSpec] {
        &self.behaviors
    }

    /// Total code footprint in bytes (drives I-cache behaviour).
    pub fn code_bytes(&self) -> u64 {
        self.code_bytes
    }

    /// Number of conditional-branch sites.
    pub fn conditional_sites(&self) -> usize {
        self.behaviors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let p = CfgParams::test_default();
        let a = SyntheticCfg::build(&p, 99);
        let b = SyntheticCfg::build(&p, 99);
        assert_eq!(a.blocks(), b.blocks());
    }

    #[test]
    fn different_seeds_differ() {
        let p = CfgParams::test_default();
        let a = SyntheticCfg::build(&p, 1);
        let b = SyntheticCfg::build(&p, 2);
        assert_ne!(a.blocks(), b.blocks());
    }

    #[test]
    fn pcs_are_disjoint_and_ordered() {
        let p = CfgParams::test_default();
        let cfg = SyntheticCfg::build(&p, 5);
        for w in cfg.blocks().windows(2) {
            assert!(w[0].end_pc() <= w[1].start_pc, "blocks must not overlap");
        }
    }

    #[test]
    fn last_block_jumps_to_entry() {
        let p = CfgParams::test_default();
        let cfg = SyntheticCfg::build(&p, 5);
        assert_eq!(
            cfg.blocks().last().unwrap().terminator,
            ControlTerminator::Jump { target: 0 }
        );
    }

    #[test]
    fn terminator_mix_roughly_follows_weights() {
        let mut p = CfgParams::test_default();
        p.blocks = 2000;
        let cfg = SyntheticCfg::build(&p, 7);
        let cond = cfg
            .blocks()
            .iter()
            .filter(|b| matches!(b.terminator, ControlTerminator::Conditional { .. }))
            .count();
        let frac = cond as f64 / p.blocks as f64;
        assert!((frac - 0.70).abs() < 0.05, "conditional fraction {frac}");
    }

    #[test]
    fn code_footprint_scales_with_blocks() {
        let mut p = CfgParams::test_default();
        p.blocks = 32;
        let small = SyntheticCfg::build(&p, 3).code_bytes();
        p.blocks = 512;
        let large = SyntheticCfg::build(&p, 3).code_bytes();
        assert!(large > 8 * small);
    }

    #[test]
    fn from_parts_assembles_and_validates() {
        let blocks = vec![
            BasicBlock {
                start_pc: Pc::new(0x1000),
                body: vec![InstrClass::Alu],
                deps: vec![[0, 0]],
                terminator: ControlTerminator::Conditional {
                    behavior: 0,
                    taken_target: 1,
                },
            },
            BasicBlock {
                start_pc: Pc::new(0x1008),
                body: vec![],
                deps: vec![],
                terminator: ControlTerminator::Jump { target: 0 },
            },
        ];
        let cfg = SyntheticCfg::from_parts(blocks, vec![BehaviorSpec::Bias(0.5)]);
        assert_eq!(cfg.blocks().len(), 2);
        assert_eq!(cfg.conditional_sites(), 1);
        assert_eq!(cfg.code_bytes(), 0xc);
    }

    #[test]
    #[should_panic(expected = "behaviour index out of range")]
    fn from_parts_rejects_dangling_behavior() {
        let blocks = vec![BasicBlock {
            start_pc: Pc::new(0x1000),
            body: vec![],
            deps: vec![],
            terminator: ControlTerminator::Conditional {
                behavior: 3,
                taken_target: 0,
            },
        }];
        SyntheticCfg::from_parts(blocks, vec![]);
    }

    #[test]
    fn block_pc_helpers() {
        let b = BasicBlock {
            start_pc: Pc::new(0x100),
            body: vec![InstrClass::Alu, InstrClass::Load],
            deps: vec![[0, 0], [1, 0]],
            terminator: ControlTerminator::Return,
        };
        assert_eq!(b.len(), 3);
        assert_eq!(b.terminator_pc(), Pc::new(0x108));
        assert_eq!(b.end_pc(), Pc::new(0x10c));
    }
}
