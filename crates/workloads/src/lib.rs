//! Synthetic SPEC2000int-like workload models.
//!
//! The paper evaluates on the SPEC2000 integer benchmarks compiled for a
//! 64-bit MIPS variant. Those binaries (and the authors' toolchain) are not
//! available, so this crate substitutes **synthetic workload models**: each
//! named model builds a randomized-but-fixed control-flow graph whose
//! branch sites carry *behaviour generators* (biased, loop, pattern,
//! history-correlated, bursty, phased). Streaming a walk over the CFG
//! through the real tournament predictor reproduces the statistics that
//! drive path-confidence behaviour:
//!
//! * the per-benchmark conditional/overall mispredict rates (paper Table 7),
//! * the spread of mispredict rates across JRS/MDC buckets (Figure 2),
//! * phase changes (gcc, mcf), clustered mispredicts (gap), and the
//!   indirect-call-dominated profile of perlbmk,
//! * realistic PC streams (I-cache, BTB) and data streams (D-cache).
//!
//! See `DESIGN.md` §2 for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use paco_workloads::{BenchmarkId, Workload};
//!
//! let mut w = BenchmarkId::Gzip.build(42);
//! let i = w.next_instr();
//! assert!(i.pc.addr() > 0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod behavior;
mod cfg;
mod generator;
mod replay;
mod spec;
mod wrong_path;

pub use behavior::{BehaviorSpec, BehaviorState};
pub use cfg::{BasicBlock, CfgParams, ControlTerminator, SyntheticCfg};
pub use generator::{CfgWorkload, DataParams};
pub use replay::{BufferSource, ReplaySource, TraceWorkload};
pub use spec::{drifting_stress_spec, BenchmarkId, ModelSpec, ALL_BENCHMARKS};
pub use wrong_path::{WrongPathGen, WrongPathParams};

use paco_types::{DynInstr, Pc};

/// A workload: an endless dynamic instruction stream plus a factory for
/// wrong-path instruction generators.
///
/// The timing simulator pulls goodpath instructions with
/// [`next_instr`](Self::next_instr); when a branch mispredicts it asks for
/// a [`WrongPathGen`] starting at the bogus fetch target and consumes that
/// until the mispredicted branch resolves.
///
/// Workloads are `Send`: the experiment engine runs one machine per
/// worker thread, and every workload must be movable onto its worker.
pub trait Workload: Send {
    /// The model's name (benchmark it imitates).
    fn name(&self) -> &str;

    /// Produces the next goodpath dynamic instruction.
    fn next_instr(&mut self) -> DynInstr;

    /// The parameters wrong-path synthesis derives from.
    ///
    /// These are recorded in trace headers so that a replayed workload
    /// reproduces the live run's wrong-path streams exactly.
    fn wrong_path_params(&self) -> WrongPathParams;

    /// Creates a wrong-path instruction generator starting at `from`.
    ///
    /// `seed` decorrelates successive wrong-path excursions. The default
    /// implementation derives the generator purely from
    /// [`wrong_path_params`](Self::wrong_path_params), which every
    /// workload should preserve: replay fidelity depends on wrong-path
    /// streams being a function of `(params, from, seed)` alone.
    fn wrong_path(&self, from: Pc, seed: u64) -> WrongPathGen {
        WrongPathGen::for_params(from, self.wrong_path_params(), seed)
    }

    /// Number of goodpath instructions produced so far.
    fn instructions_produced(&self) -> u64;
}
