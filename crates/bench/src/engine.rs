//! The sharded experiment engine: executes every cell of an
//! [`ExperimentSpec`], in parallel, with optional result caching.
//!
//! # Determinism
//!
//! Each cell is *self-contained*: its machine, workload and every derived
//! RNG seed are functions of the [`CellSpec`] alone, never of ambient or
//! shared state. Workers therefore produce the same [`CellResult`] for a
//! cell no matter which thread runs it or in which order, and results are
//! written into a slot vector indexed by cell position — so `--jobs 8`
//! output is byte-identical to `--jobs 1` output (the integration suite
//! asserts this on serialized JSON).
//!
//! # Scheduling
//!
//! Cells are claimed from a shared atomic cursor by `jobs` scoped worker
//! threads — a degenerate but effective form of work stealing: long cells
//! never block short ones behind a static partition, and the wall-clock
//! cost of a grid approaches `total_work / cores` for grids with at least
//! a few times more cells than workers (every paper artifact qualifies).
//!
//! # Seed derivation
//!
//! Per-kind machine seeds reproduce the pre-engine binaries exactly
//! (`seed ^ 0xACC0` for accuracy runs, `^ 0x6A7E` for gating, `^ 0x517` /
//! `^ 0x53B` / workload `^ 0xF00` for SMT, `^ 0xF1640` for phase windows,
//! `^ 0xD81F7` for the drifting stress model), so every figure and table
//! is bit-compatible with its hand-rolled predecessor. Corpus cells
//! (`robustness`) have no pre-engine ancestor; they salt with `^ 0xC0B50`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use paco_sim::{MachineBuilder, MachineStats, SCORE_BINS};
use paco_workloads::drifting_stress_spec;

use crate::cache::ResultCache;
use crate::spec::{CellKind, CellSpec, ExperimentSpec};

/// The outcome of one cell: full machine statistics, plus per-phase
/// score-instance bins for [`CellKind::Phased`] cells.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Statistics of the measured (post-warmup) run.
    pub stats: MachineStats,
    /// Per-phase score-instance bins (`phases × SCORE_BINS` of
    /// `(instances, instances-on-goodpath)`); empty for non-phased cells.
    pub phases: Vec<Vec<(u64, u64)>>,
}

/// The outcome of an engine run over a spec.
#[derive(Debug)]
pub struct EngineRun {
    /// Per-cell results, indexed like [`ExperimentSpec::cells`].
    pub results: Vec<CellResult>,
    /// Number of results served from the cache.
    pub cached: usize,
    /// Number of cells actually simulated.
    pub executed: usize,
    /// Worker threads used.
    pub jobs: usize,
}

/// The experiment engine: a job count plus an optional result cache.
#[derive(Debug, Default)]
pub struct Engine {
    jobs: Option<usize>,
    cache: Option<ResultCache>,
}

impl Engine {
    /// An engine with default parallelism (all available cores) and no
    /// cache.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Sets the number of worker threads (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Attaches a result cache.
    pub fn cache(mut self, cache: ResultCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The effective worker count.
    pub fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Runs every cell of `spec` and returns the results in cell order.
    pub fn run(&self, spec: &ExperimentSpec) -> EngineRun {
        let cells = spec.cells();
        let jobs = self.effective_jobs().min(cells.len()).max(1);
        let slots: Vec<OnceLock<CellResult>> = cells.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let cached = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let hash = cell.content_hash();
                    let result = match self.cache.as_ref().and_then(|c| c.load(hash)) {
                        Some(hit) => {
                            cached.fetch_add(1, Ordering::Relaxed);
                            hit
                        }
                        None => {
                            let fresh = execute_cell(cell);
                            if let Some(cache) = &self.cache {
                                // Failing to persist is not failing to
                                // compute; the result is still returned.
                                let _ = cache.store(hash, &fresh);
                            }
                            fresh
                        }
                    };
                    slots[i]
                        .set(result)
                        .expect("each cell slot is written exactly once");
                });
            }
        });

        let results: Vec<CellResult> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("worker loop covered every cell"))
            .collect();
        let cached = cached.into_inner();
        EngineRun {
            executed: results.len() - cached,
            cached,
            results,
            jobs,
        }
    }
}

/// Executes one cell synchronously on the calling thread.
///
/// This is the single definition of every experiment's execution recipe;
/// the legacy helpers in [`crate::runner`] and the parallel engine both
/// route through it.
pub fn execute_cell(cell: &CellSpec) -> CellResult {
    let seed = cell.seed;
    // One derivation of the machine configuration, shared with the cache
    // key (`CellSpec::canon` hashes the same value): changing a kind's
    // machine automatically invalidates its cached results.
    let config = cell.kind.sim_config();
    match cell.kind {
        CellKind::Accuracy { bench, estimator } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(bench.build(seed)), estimator)
                .seed(seed ^ 0xACC0)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
        CellKind::Gating {
            bench,
            estimator,
            gating,
        } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(bench.build(seed)), estimator)
                .gating(gating)
                .seed(seed ^ 0x6A7E)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
        CellKind::SmtSingle { bench } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(bench.build(seed)), paco_sim::EstimatorKind::None)
                .seed(seed ^ 0x517)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
        CellKind::SmtPair {
            pair,
            estimator,
            policy,
        } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(pair.0.build(seed)), estimator)
                .thread(Box::new(pair.1.build(seed ^ 0xF00)), estimator)
                .fetch_policy(policy)
                .seed(seed ^ 0x53B)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
        CellKind::Phased {
            bench,
            estimator,
            window,
            phases,
        } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(bench.build(seed)), estimator)
                .seed(seed ^ 0xF1640)
                .build();
            let nphases = phases as usize;
            let total = cell.instrs;
            let mut per_phase = vec![vec![(0u64, 0u64); SCORE_BINS]; nphases];
            let mut prev = vec![(0u64, 0u64); SCORE_BINS];
            let mut boundary = window;
            let mut phase = 0usize;
            let mut stats = machine.stats();
            while boundary <= total {
                stats = machine.run(boundary);
                let cur = &stats.threads[0].score_instances;
                for (i, acc) in per_phase[phase].iter_mut().enumerate() {
                    acc.0 += cur[i].0 - prev[i].0;
                    acc.1 += cur[i].1 - prev[i].1;
                }
                prev.clone_from_slice(cur);
                boundary += window;
                phase = (phase + 1) % nphases;
            }
            CellResult {
                stats,
                phases: per_phase,
            }
        }
        CellKind::Stress { estimator } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(drifting_stress_spec().build(seed)), estimator)
                .seed(seed ^ 0xD81F7)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
        CellKind::Corpus { family, estimator } => {
            let mut machine = MachineBuilder::new(config)
                .thread(Box::new(family.build(seed)), estimator)
                .seed(seed ^ 0xC0B50)
                .build();
            machine.run(config.warmup_for(cell.warmup));
            machine.reset_stats();
            let stats = machine.run(cell.instrs);
            CellResult {
                stats,
                phases: Vec::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RunParams;
    use paco_sim::EstimatorKind;
    use paco_workloads::BenchmarkId;

    fn params() -> RunParams {
        RunParams {
            instrs: 5_000,
            seed: 1,
            warmup: 2_000,
        }
    }

    fn small_spec() -> ExperimentSpec {
        let p = params();
        let mut spec = ExperimentSpec::new("unit", p);
        for bench in [BenchmarkId::Gzip, BenchmarkId::Twolf, BenchmarkId::Mcf] {
            spec.push(CellSpec::accuracy(bench, EstimatorKind::None, &p));
        }
        spec
    }

    #[test]
    fn parallel_results_match_sequential() {
        let spec = small_spec();
        let seq = Engine::new().jobs(1).run(&spec);
        let par = Engine::new().jobs(3).run(&spec);
        assert_eq!(seq.results, par.results);
        assert_eq!(par.jobs, 3);
        assert_eq!(seq.cached, 0);
        assert_eq!(seq.executed, 3);
    }

    #[test]
    fn execute_cell_is_deterministic() {
        let p = params();
        let cell = CellSpec::smt_pair(
            (BenchmarkId::Gzip, BenchmarkId::Twolf),
            EstimatorKind::None,
            paco_sim::FetchPolicy::ICount,
            &p,
        );
        assert_eq!(execute_cell(&cell), execute_cell(&cell));
    }

    #[test]
    fn phased_cell_accumulates_per_phase() {
        let p = params();
        let cell = CellSpec::phased(BenchmarkId::Gzip, EstimatorKind::None, 2_000, 2, 8_000, &p);
        let r = execute_cell(&cell);
        assert_eq!(r.phases.len(), 2);
        let total: u64 = r.phases.iter().flatten().map(|b| b.0).sum();
        assert!(total > 0, "phase windows must capture instances");
    }

    #[test]
    fn jobs_clamp_to_cell_count() {
        let spec = small_spec();
        let run = Engine::new().jobs(64).run(&spec);
        assert_eq!(run.jobs, 3);
        assert_eq!(run.results.len(), 3);
    }
}
