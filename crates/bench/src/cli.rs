//! The `paco-bench` command-line interface, shared by the unified binary
//! and the per-figure wrapper binaries.
//!
//! ```text
//! paco-bench list
//! paco-bench run <experiment>... [--jobs N] [--no-cache] [--json]
//! ```
//!
//! `run` accepts any experiment name from `list` (or `all`), executes its
//! spec through the parallel engine with the on-disk result cache, prints
//! the rendered artifact to stdout (or machine-readable JSON with
//! `--json`), and reports an execution summary on stderr:
//!
//! ```text
//! paco-bench: fig9: cells=12 cached=12 executed=0 jobs=8 secs=0.01
//! ```

use std::time::Instant;

use crate::cache::ResultCache;
use crate::engine::Engine;
use crate::experiments::{ExperimentId, ResultSet, ALL_EXPERIMENTS};
use crate::json::run_json;
use crate::runner::env_params;

/// Parsed `run` options.
#[derive(Debug, Clone, Default)]
struct RunOptions {
    jobs: Option<usize>,
    no_cache: bool,
    json: bool,
    help: bool,
    /// `--batch N[,N…]`: hotpath-only batch-size sweep.
    batch: Option<Vec<usize>>,
}

const USAGE: &str = "usage:
  paco-bench list
  paco-bench run <experiment>... [--jobs N] [--no-cache] [--json]
                                 [--batch N[,N...]]
  paco-bench version

Run `paco-bench list` for the available experiments; `all` runs every
one. PACO_INSTRS / PACO_SEED / PACO_WARMUP adjust run lengths, and
PACO_BENCH_CACHE_DIR relocates the result cache
(default: target/paco-bench-cache). `--batch` applies to the hotpath
experiment only: it sweeps the batched pipeline lane across the given
frame sizes (e.g. `--batch 64,128,512,2048`) on top of the default
512-event frames. `version` prints the executable fingerprint that
keys the result cache.";

/// Entry point for the `paco-bench` binary. Returns the process exit
/// code.
pub fn main_multi(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("list") => {
            for id in ALL_EXPERIMENTS {
                println!("{:<10} {}", id.name(), id.describe());
            }
            0
        }
        Some("run") => match parse_run(&args[1..]) {
            Ok((_, opts)) if opts.help => {
                println!("{USAGE}");
                0
            }
            Ok((ids, opts)) if !ids.is_empty() => {
                let mut code = 0;
                for id in ids {
                    if !run_experiment(id, opts.clone()) {
                        code = 1;
                    }
                }
                code
            }
            Ok(_) => {
                eprintln!("paco-bench: run requires at least one experiment name\n{USAGE}");
                2
            }
            Err(e) => {
                eprintln!("paco-bench: {e}\n{USAGE}");
                2
            }
        },
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-bench {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                crate::cache::code_fingerprint()
            );
            0
        }
        Some("--help") | Some("-h") | Some("help") => {
            println!("{USAGE}");
            0
        }
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// Entry point for the per-figure wrapper binaries (`fig2` … `ablations`):
/// the named experiment with optional `--jobs/--no-cache/--json` flags.
/// Returns the process exit code.
pub fn main_single(id: ExperimentId, args: &[String]) -> i32 {
    let usage = format!(
        "usage: {} [--jobs N] [--no-cache] [--json]\n\
         (equivalent to `paco-bench run {}`)",
        id.name(),
        id.name()
    );
    match parse_run(args) {
        Ok((_, opts)) if opts.help => {
            println!("{usage}");
            0
        }
        // The wrappers take flags only; a stray positional (even a valid
        // experiment name) is a usage error here, not a request to run
        // some other figure.
        Ok((ids, _)) if !ids.is_empty() => {
            eprintln!(
                "paco-bench({}): unexpected argument; this wrapper runs only {}\n{usage}",
                id.name(),
                id.name()
            );
            2
        }
        Ok((_, opts)) => {
            if run_experiment(id, opts) {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("paco-bench({}): {e}\n{usage}", id.name());
            2
        }
    }
}

fn parse_run(args: &[String]) -> Result<(Vec<ExperimentId>, RunOptions), String> {
    let mut ids = Vec::new();
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs requires a value")?;
                let jobs: usize = v
                    .parse()
                    .map_err(|_| format!("invalid --jobs value {v:?}"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(jobs);
            }
            "--no-cache" => opts.no_cache = true,
            "--json" => opts.json = true,
            "--help" | "-h" => opts.help = true,
            "--batch" => {
                let v = it.next().ok_or("--batch requires a value")?;
                let sizes = v
                    .split(',')
                    .map(|s| match s.trim().parse::<usize>() {
                        Ok(n) if n > 0 => Ok(n),
                        _ => Err(format!("invalid --batch size {s:?}")),
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                if sizes.is_empty() {
                    return Err("--batch requires at least one size".into());
                }
                opts.batch = Some(sizes);
            }
            "all" => {
                for id in ALL_EXPERIMENTS {
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
            }
            name if name.starts_with('-') => {
                return Err(format!("unknown flag {name:?}"));
            }
            name => {
                let id = ExperimentId::from_name(name)
                    .ok_or_else(|| format!("unknown experiment {name:?}"))?;
                if !ids.contains(&id) {
                    ids.push(id);
                }
            }
        }
    }
    Ok((ids, opts))
}

/// Runs one experiment; `false` on failure (a parity break or server
/// error in `serve_throughput` must fail the process, not just print).
fn run_experiment(id: ExperimentId, opts: RunOptions) -> bool {
    if opts.batch.is_some() && id != ExperimentId::Hotpath {
        eprintln!(
            "paco-bench: warning: --batch only applies to the hotpath experiment; \
             ignored for {}",
            id.name()
        );
    }
    // The service experiments measure wall-clock behavior (a real
    // loopback server / the two pipeline lanes); they bypass the engine
    // and are never cached.
    if id == ExperimentId::ServeThroughput {
        let started = Instant::now();
        return match crate::serve_bench::run_serve_throughput() {
            Ok(report) => {
                if opts.json {
                    println!("{}", report.render_json());
                } else {
                    print!("{}", crate::serve_bench::render_text(&report));
                }
                eprintln!(
                    "paco-bench: serve_throughput: events={} sessions={} secs={:.2}",
                    report.events,
                    report.sessions.len(),
                    started.elapsed().as_secs_f64()
                );
                true
            }
            Err(e) => {
                eprintln!("paco-bench: serve_throughput failed: {e}");
                false
            }
        };
    }
    if id == ExperimentId::ServeScale {
        let started = Instant::now();
        return match crate::serve_scale::run_serve_scale() {
            Ok(report) => {
                if opts.json {
                    println!("{}", report.render_json());
                } else {
                    print!("{}", crate::serve_scale::render_text(&report));
                }
                eprintln!(
                    "paco-bench: serve_scale: sessions={} peak_parked={} migrated={} secs={:.2}",
                    report.sessions,
                    report.peak_parked,
                    report.migrated,
                    started.elapsed().as_secs_f64()
                );
                true
            }
            Err(e) => {
                eprintln!("paco-bench: serve_scale failed: {e}");
                false
            }
        };
    }
    if id == ExperimentId::Hotpath {
        let started = Instant::now();
        let result = match &opts.batch {
            Some(sizes) => crate::hotpath::run_hotpath_sweep(sizes),
            None => crate::hotpath::run_hotpath(),
        };
        return match result {
            Ok(report) => {
                if opts.json {
                    println!("{}", crate::hotpath::render_json(&report));
                } else {
                    print!("{}", crate::hotpath::render_text(&report));
                }
                eprintln!(
                    "paco-bench: hotpath: events={} estimators={} secs={:.2}",
                    report.events,
                    report.rows.len(),
                    started.elapsed().as_secs_f64()
                );
                true
            }
            Err(e) => {
                eprintln!("paco-bench: hotpath failed (lane divergence or setup): {e}");
                false
            }
        };
    }

    let params = env_params(id.default_instrs());
    let spec = id.spec(params);

    let mut engine = Engine::new();
    if let Some(jobs) = opts.jobs {
        engine = engine.jobs(jobs);
    }
    if !opts.no_cache {
        match ResultCache::open_default() {
            Ok(cache) => engine = engine.cache(cache),
            Err(e) => eprintln!(
                "paco-bench: warning: cannot open result cache at {}: {e}; running uncached",
                ResultCache::default_dir().display()
            ),
        }
    }

    let started = Instant::now();
    let run = engine.run(&spec);
    let secs = started.elapsed().as_secs_f64();

    if opts.json {
        println!("{}", run_json(&spec, &run));
    } else {
        let set = ResultSet {
            spec: &spec,
            results: &run.results,
        };
        print!("{}", id.render(&set));
    }
    eprintln!(
        "paco-bench: {}: cells={} cached={} executed={} jobs={} secs={secs:.2}",
        spec.name,
        spec.cells().len(),
        run.cached,
        run.executed,
        run.jobs
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_flags() {
        let (ids, opts) =
            parse_run(&strs(&["fig9", "--jobs", "4", "--no-cache", "--json"])).unwrap();
        assert_eq!(ids, vec![ExperimentId::Fig9]);
        assert_eq!(opts.jobs, Some(4));
        assert!(opts.no_cache && opts.json);
    }

    #[test]
    fn expands_all_and_dedupes() {
        let (ids, _) = parse_run(&strs(&["fig3", "all"])).unwrap();
        assert_eq!(ids.len(), ALL_EXPERIMENTS.len());
    }

    #[test]
    fn rejects_unknown_names_and_flags() {
        assert!(parse_run(&strs(&["fig99"])).is_err());
        assert!(parse_run(&strs(&["--bogus"])).is_err());
        assert!(parse_run(&strs(&["fig2", "--jobs"])).is_err());
        assert!(parse_run(&strs(&["fig2", "--jobs", "0"])).is_err());
    }

    #[test]
    fn parses_batch_sweep_list() {
        let (ids, opts) = parse_run(&strs(&["hotpath", "--batch", "64,128,512,2048"])).unwrap();
        assert_eq!(ids, vec![ExperimentId::Hotpath]);
        assert_eq!(opts.batch, Some(vec![64, 128, 512, 2048]));
        let (_, single) = parse_run(&strs(&["hotpath", "--batch", "256"])).unwrap();
        assert_eq!(single.batch, Some(vec![256]));
        assert!(parse_run(&strs(&["hotpath", "--batch"])).is_err());
        assert!(parse_run(&strs(&["hotpath", "--batch", "0"])).is_err());
        assert!(parse_run(&strs(&["hotpath", "--batch", "64,x"])).is_err());
        assert!(parse_run(&strs(&["hotpath", "--batch", ""])).is_err());
    }

    #[test]
    fn help_flag_is_recognized() {
        let (_, opts) = parse_run(&strs(&["--help"])).unwrap();
        assert!(opts.help);
        assert_eq!(main_single(ExperimentId::Fig9, &strs(&["-h"])), 0);
        assert_eq!(main_multi(&strs(&["run", "--help"])), 0);
    }

    #[test]
    fn wrapper_rejects_positional_arguments() {
        assert_eq!(main_single(ExperimentId::Fig9, &strs(&["all"])), 2);
        assert_eq!(main_single(ExperimentId::Fig9, &strs(&["fig2"])), 2);
    }
}
