//! The `hotpath` experiment: the per-event vs batched confidence lanes,
//! measured head to head.
//!
//! Two lane pairs are timed over the same recorded event stream, for a
//! set of estimator kinds:
//!
//! * **pipeline** — events already in memory, straight through the
//!   pipeline: `on_instr` per event (the `dyn`-dispatched PR-3 path)
//!   vs [`OnlinePipeline::run_batch`] (the monomorphized,
//!   allocation-free batch lane).
//! * **wire** — the full `paco-served` frame hot path, wire bytes to
//!   wire bytes: decode EVENTS payload → predict → encode PREDICTIONS
//!   payload. The per-event variant is the PR-3 server loop
//!   (`decode_events` into a fresh `Vec<DynInstr>`, collect, per-event
//!   `encode_outcomes`); the batched variant is today's server loop
//!   (`decode_events_into` a reused [`EventBatch`], `run_batch`,
//!   `encode_outcomes_into` a reused buffer).
//!
//! A third wire variant, **wire+watch**, is the batched loop with
//! per-session calibration telemetry enabled
//! ([`WatchState::observe_batch`](paco_serve::WatchState) against a real
//! reference profile, resolved untimed before the passes start) — the
//! cost of watching a session, isolated. The baseline policy in
//! `docs/EXPERIMENTS.md` caps the watch lane's overhead at 5% of the
//! batched wire lane.
//!
//! A fourth wire variant, **wire+metrics**, is the batched loop with the
//! full `paco-obs` metric plane attached exactly as `paco-served` wires
//! it: one frame-counter bump, one batch-size histogram record and one
//! handle-time histogram record (with its own clock reads) per frame —
//! the cost of running metered, isolated. The baseline policy caps this
//! lane's overhead at 2% of the unmetered batched wire lane.
//!
//! Each row also carries a **per-pass breakdown** (predict / train /
//! estimator microseconds per frame), measured on a separate probed run
//! of the *chunked* data-parallel kernel
//! ([`OnlinePipeline::run_batch_probed`]) — the [`PassProbe`] hook adds
//! clock reads, so it never touches the headline numbers, which come
//! from the fused `run_batch` kernel. `--batch N[,N…]` additionally
//! sweeps the batched pipeline lane across frame sizes, digest-gating
//! every size against the default-size outcome stream.
//!
//! Like `serve_throughput`, this is a wall-clock measurement: it
//! bypasses the engine and the result cache. The numbers only count if
//! the lanes agree — every run digests every lane's prediction payloads
//! (per-event reference, fused batched, chunked kernel, watched) and
//! fails on any divergence, so the benchmark doubles as a parity
//! check. The `--json` output of this experiment (plus
//! `serve_throughput`) is what `BENCH_baseline.json` at the repo root
//! records; see `docs/EXPERIMENTS.md` for how baselines are compared.

use std::time::{Duration, Instant};

use paco::{PacoConfig, ThresholdCountConfig};
use paco_corpus::CalibrationProfile;
use paco_obs::HistogramSnapshot;
use paco_serve::proto::{
    decode_events, decode_events_into, encode_events, encode_outcomes, encode_outcomes_into,
};
use paco_serve::{Digest, FrameKind, ServeMetrics, WatchState};
use paco_sim::{
    EstimatorKind, HotPass, NoProbe, OnlineConfig, OnlinePipeline, OutcomeBatch, PassProbe,
};
use paco_types::{DynInstr, EventBatch};
use paco_workloads::{BenchmarkId, Workload};

use crate::runner::{default_instrs, default_seed};

/// Default instruction-stream length the event trace is extracted from
/// (`PACO_INSTRS` overrides).
pub const DEFAULT_INSTRS: u64 = 400_000;

/// Default events per frame/batch, matching the serve defaults
/// (`paco-bench run hotpath --batch N[,N…]` sweeps other sizes).
pub const DEFAULT_BATCH: usize = 512;

/// Timed passes per lane; the best pass is reported (the lanes are
/// deterministic, so the best pass is the least-perturbed one).
const PASSES: u32 = 5;

/// One lane pair: events/second through each lane, and the ratio.
#[derive(Debug, Clone, Copy)]
pub struct LanePair {
    /// Events/second through the per-event lane.
    pub per_event_eps: f64,
    /// Events/second through the batched lane.
    pub batched_eps: f64,
}

impl LanePair {
    /// Batched-over-per-event throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.batched_eps / self.per_event_eps.max(1e-9)
    }
}

/// Where the chunked data-parallel kernel's wall time goes, attributed
/// per pass by a [`PassProbe`] over the whole stream and averaged per
/// frame.
///
/// Probed runs carry two extra clock reads per pass per 16-event chunk,
/// so these numbers attribute time *within* the chunked kernel; the
/// headline `batched_eps` comes from a separate unprobed run of the
/// fused `run_batch` kernel. The final partial chunk runs through the
/// scalar step unattributed, so the three passes sum to slightly less
/// than a probed frame's wall time.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassBreakdown {
    /// Mean microseconds per frame in Pass 0 (event compaction, history
    /// scan, hashed index precomputation, next-chunk prefetch).
    pub predict_us: f64,
    /// Mean microseconds per frame in Pass A (the order-exact table
    /// pass: counter reads, MDC fetches, due resolve-time trains).
    pub train_us: f64,
    /// Mean microseconds per frame in Pass B (the estimator chunk hook,
    /// window pushes and outcome packing).
    pub estimator_us: f64,
}

/// Measurements for one estimator kind.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// The estimator's display name.
    pub estimator: String,
    /// In-memory pipeline lanes.
    pub pipeline: LanePair,
    /// Wire-to-wire (decode + predict + encode) lanes.
    pub wire: LanePair,
    /// Events/second through the batched wire lane with watch telemetry
    /// enabled.
    pub wire_watch_eps: f64,
    /// Events/second through the batched wire lane with the `paco-obs`
    /// metric plane attached (the `paco-served` per-frame recording).
    pub wire_metrics_eps: f64,
    /// Per-pass wall-time attribution of the batched pipeline lane.
    pub passes: PassBreakdown,
}

impl HotpathRow {
    /// Watch-lane overhead as a fraction of batched wire throughput
    /// (0.03 = watching costs 3%; negative = noise in the lane's favor).
    pub fn watch_overhead(&self) -> f64 {
        1.0 - self.wire_watch_eps / self.wire.batched_eps.max(1e-9)
    }

    /// Metric-plane overhead as a fraction of batched wire throughput
    /// (0.01 = metering costs 1%; negative = noise in the lane's favor).
    pub fn metrics_overhead(&self) -> f64 {
        1.0 - self.wire_metrics_eps / self.wire.batched_eps.max(1e-9)
    }
}

/// One estimator's batched-pipeline throughput at one swept batch size.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The estimator's display name.
    pub estimator: String,
    /// Events/second through the batched pipeline lane at this size.
    pub batched_eps: f64,
    /// Ratio against the same run's per-event pipeline lane.
    pub speedup: f64,
}

/// All estimators' batched-pipeline throughput at one swept batch size.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Events per batch at this sweep point.
    pub batch: usize,
    /// One cell per estimator kind, in the report's row order.
    pub cells: Vec<SweepCell>,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Branch events per pass.
    pub events: u64,
    /// Events per frame/batch.
    pub batch: usize,
    /// Timed passes per lane.
    pub passes: u32,
    /// Per-estimator measurements.
    pub rows: Vec<HotpathRow>,
    /// Speedup-vs-batch-size curve (`--batch` sweep; empty otherwise).
    pub sweep: Vec<SweepPoint>,
}

/// Runs the experiment at the env-configured scale (`PACO_INSTRS` /
/// `PACO_SEED`); returns the report or a human-readable error (lane
/// divergence is an error, not a number).
pub fn run_hotpath() -> Result<HotpathReport, String> {
    run_at(default_instrs(DEFAULT_INSTRS), default_seed())
}

/// [`run_hotpath`] plus a batched-pipeline sweep over `batches` sizes
/// (the `--batch` flag); each sweep point re-chunks the same event
/// stream and is digest-gated against the default-size lane before it
/// is timed.
pub fn run_hotpath_sweep(batches: &[usize]) -> Result<HotpathReport, String> {
    run_at_sweep(default_instrs(DEFAULT_INSTRS), default_seed(), batches)
}

/// The estimator kinds the experiment sweeps.
fn kinds() -> [EstimatorKind; 3] {
    [
        EstimatorKind::None,
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        EstimatorKind::Paco(PacoConfig::paper()),
    ]
}

/// Runs the experiment at an explicit scale (tests use this directly so
/// they never mutate process environment).
pub fn run_at(instrs: u64, seed: u64) -> Result<HotpathReport, String> {
    run_at_sweep(instrs, seed, &[])
}

/// [`run_at`] plus the batch-size sweep, at an explicit scale.
pub fn run_at_sweep(
    instrs: u64,
    seed: u64,
    sweep_sizes: &[usize],
) -> Result<HotpathReport, String> {
    // The control-event stream of a gzip run — the same extraction the
    // serve_throughput experiment and paco-load's trace replay use.
    let mut workload = BenchmarkId::Gzip.build(seed);
    let events: Vec<DynInstr> = (0..instrs)
        .map(|_| workload.next_instr())
        .filter(|i| i.class.is_control())
        .collect();
    if events.is_empty() {
        return Err("no control events generated".into());
    }
    if let Some(&bad) = sweep_sizes.iter().find(|&&b| b == 0) {
        return Err(format!("invalid sweep batch size {bad}"));
    }

    // Pre-built inputs, shared by all lanes: encoded EVENTS payloads for
    // the wire lanes, struct-of-arrays batches for the batched pipeline
    // lane (its native input shape, as produced by the serve decoder).
    let frames: Vec<Vec<u8>> = events.chunks(DEFAULT_BATCH).map(encode_events).collect();
    let batches: Vec<EventBatch> = events.chunks(DEFAULT_BATCH).map(EventBatch::from).collect();

    // The watch lane's reference profile, resolved (and lazily computed)
    // before any pass is timed so its one-time cost never lands inside a
    // measurement.
    let reference = *paco_corpus::reference_profile("biased_bimodal")
        .ok_or("reference profile for biased_bimodal missing")?;

    let mut rows = Vec::new();
    for kind in kinds() {
        let config = OnlineConfig::paper(kind);
        let estimator = OnlinePipeline::new(&config).estimator_name();

        // Parity gate (untimed): all lanes' prediction payloads must
        // digest identically before any number is reported. The chunked
        // kernel is gated even though the headline timings run fused —
        // the probed breakdown below runs through it, and its parity
        // contract is load-bearing regardless of which kernel the
        // router picks. The watched lane is included too — telemetry
        // must never change the bytes.
        let per_event_digest = digest_per_event(&config, &frames)?;
        let batched_digest = digest_batched(&config, &frames)?;
        if per_event_digest != batched_digest {
            return Err(format!(
                "lane divergence for {estimator}: per-event digest {per_event_digest:016x} \
                 != batched digest {batched_digest:016x}"
            ));
        }
        let chunked_digest = digest_chunked(&config, &frames)?;
        if chunked_digest != batched_digest {
            return Err(format!(
                "chunked-kernel divergence for {estimator}: chunked digest \
                 {chunked_digest:016x} != batched digest {batched_digest:016x}"
            ));
        }
        let watched_digest = digest_watched(&config, &frames, &reference)?;
        if watched_digest != batched_digest {
            return Err(format!(
                "watch lane perturbed predictions for {estimator}: watched digest \
                 {watched_digest:016x} != batched digest {batched_digest:016x}"
            ));
        }
        // The metered lane records into a real server metric plane; its
        // one contract is that recording is observational, so it is held
        // to the same byte-parity gate as every other lane.
        let metrics = ServeMetrics::new();
        let metered_digest = digest_metered(&config, &frames, &metrics)?;
        if metered_digest != batched_digest {
            return Err(format!(
                "metric plane perturbed predictions for {estimator}: metered digest \
                 {metered_digest:016x} != batched digest {batched_digest:016x}"
            ));
        }

        let pipeline = LanePair {
            per_event_eps: eps(
                events.len(),
                best_of(PASSES, || pipeline_per_event(&config, &events)),
            ),
            batched_eps: eps(
                events.len(),
                best_of(PASSES, || pipeline_batched(&config, &batches)),
            ),
        };
        let wire = LanePair {
            per_event_eps: eps(
                events.len(),
                best_of(PASSES, || wire_per_event(&config, &frames)),
            ),
            batched_eps: eps(
                events.len(),
                best_of(PASSES, || wire_batched(&config, &frames)),
            ),
        };
        let wire_watch_eps = eps(
            events.len(),
            best_of(PASSES, || wire_watched(&config, &frames, &reference)),
        );
        let wire_metrics_eps = eps(
            events.len(),
            best_of(PASSES, || wire_metered(&config, &frames, &metrics)),
        );
        let passes = pipeline_breakdown(&config, &batches);
        rows.push(HotpathRow {
            estimator,
            pipeline,
            wire,
            wire_watch_eps,
            wire_metrics_eps,
            passes,
        });
    }

    // The `--batch` sweep: the batched pipeline lane re-timed at each
    // requested frame size, against the default-size per-event lane
    // already in `rows`. Chunking must never change the outcome stream,
    // so every size is digest-gated against the default-size lane
    // before it is timed.
    let mut sweep = Vec::new();
    for &size in sweep_sizes {
        let sized: Vec<EventBatch> = events.chunks(size).map(EventBatch::from).collect();
        let mut cells = Vec::new();
        for (kind, row) in kinds().into_iter().zip(&rows) {
            let config = OnlineConfig::paper(kind);
            let base = digest_outcomes(&config, &batches);
            let at_size = digest_outcomes(&config, &sized);
            if at_size != base {
                return Err(format!(
                    "batch-size divergence for {} at batch {size}: digest {at_size:016x} \
                     != default-size digest {base:016x}",
                    row.estimator
                ));
            }
            let batched_eps = eps(
                events.len(),
                best_of(PASSES, || pipeline_batched(&config, &sized)),
            );
            cells.push(SweepCell {
                estimator: row.estimator.clone(),
                batched_eps,
                speedup: batched_eps / row.pipeline.per_event_eps.max(1e-9),
            });
        }
        sweep.push(SweepPoint { batch: size, cells });
    }

    Ok(HotpathReport {
        events: events.len() as u64,
        batch: DEFAULT_BATCH,
        passes: PASSES,
        rows,
        sweep,
    })
}

fn eps(events: usize, elapsed: Duration) -> f64 {
    events as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn best_of(passes: u32, mut lane: impl FnMut() -> Duration) -> Duration {
    (0..passes.max(1)).map(|_| lane()).min().unwrap()
}

fn pipeline_per_event(config: &OnlineConfig, events: &[DynInstr]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = Vec::with_capacity(DEFAULT_BATCH);
    let t0 = Instant::now();
    for chunk in events.chunks(DEFAULT_BATCH) {
        out.clear();
        out.extend(chunk.iter().filter_map(|i| pipe.on_instr(i)));
        std::hint::black_box(&out);
    }
    t0.elapsed()
}

fn pipeline_batched(config: &OnlineConfig, batches: &[EventBatch]) -> Duration {
    let cap = batches.first().map_or(0, EventBatch::len);
    let mut pipe = OnlinePipeline::new(config);
    let mut out = OutcomeBatch::with_capacity(cap);
    let t0 = Instant::now();
    for batch in batches {
        out.clear();
        pipe.run_batch(batch, &mut out);
        std::hint::black_box(&out);
    }
    t0.elapsed()
}

/// Wall-time accumulator behind the per-pass breakdown: two `Instant`
/// reads per pass per chunk, which is why probed runs are separate from
/// the headline timings.
///
/// Spans land in the same log-linear [`HistogramSnapshot`] the serve
/// metric plane and `paco-load`'s streaming latency use — the breakdown
/// reads the sums, and the full per-chunk span distribution rides along
/// for anyone holding the probe.
#[derive(Debug, Default)]
struct TimingProbe {
    predict: HistogramSnapshot,
    train: HistogramSnapshot,
    estimator: HistogramSnapshot,
}

impl TimingProbe {
    /// Attributed nanoseconds across all three passes (wrapping, like
    /// every histogram sum; a probe lives far short of a wrap).
    fn total_ns(&self) -> u64 {
        self.predict
            .sum()
            .wrapping_add(self.train.sum())
            .wrapping_add(self.estimator.sum())
    }
}

impl PassProbe for TimingProbe {
    #[inline]
    fn span<R>(&mut self, pass: HotPass, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        match pass {
            HotPass::Predict => self.predict.record(ns),
            HotPass::Train => self.train.record(ns),
            HotPass::Estimator => self.estimator.record(ns),
        }
        r
    }
}

/// Times the batched pipeline lane with a [`TimingProbe`] attached,
/// best of [`PASSES`] by attributed total, averaged per frame.
fn pipeline_breakdown(config: &OnlineConfig, batches: &[EventBatch]) -> PassBreakdown {
    let cap = batches.first().map_or(0, EventBatch::len);
    let mut best: Option<TimingProbe> = None;
    for _ in 0..PASSES.max(1) {
        let mut pipe = OnlinePipeline::new(config);
        let mut out = OutcomeBatch::with_capacity(cap);
        let mut probe = TimingProbe::default();
        for batch in batches {
            out.clear();
            pipe.run_batch_probed(batch, &mut out, &mut probe);
            std::hint::black_box(&out);
        }
        let better = match &best {
            Some(b) => probe.total_ns() < b.total_ns(),
            None => true,
        };
        if better {
            best = Some(probe);
        }
    }
    let probe = best.unwrap_or_default();
    let frames = batches.len().max(1) as f64;
    let us = |h: &HistogramSnapshot| h.sum() as f64 / 1e3 / frames;
    PassBreakdown {
        predict_us: us(&probe.predict),
        train_us: us(&probe.train),
        estimator_us: us(&probe.estimator),
    }
}

/// Digest of the raw outcome stream (flags, scores, probability bits)
/// produced by the batched pipeline over `batches` — frame-boundary
/// free, so runs chunked at different batch sizes are comparable.
fn digest_outcomes(config: &OnlineConfig, batches: &[EventBatch]) -> u64 {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = OutcomeBatch::new();
    // One digest per outcome array, combined at the end: interleaving
    // the arrays per frame would make the digest depend on where the
    // frame boundaries fall, which is exactly what this gate must not
    // be sensitive to.
    let mut flags = Digest::new();
    let mut scores = Digest::new();
    let mut probs = Digest::new();
    for batch in batches {
        out.clear();
        pipe.run_batch(batch, &mut out);
        flags.update(out.flags());
        for &s in out.scores() {
            scores.update(&s.to_le_bytes());
        }
        for &p in out.prob_bits() {
            probs.update(&p.to_le_bytes());
        }
    }
    let mut combined = Digest::new();
    combined.update(&flags.value().to_le_bytes());
    combined.update(&scores.value().to_le_bytes());
    combined.update(&probs.value().to_le_bytes());
    combined.value()
}

/// The PR-3 `paco-served` frame loop: allocate-and-collect per frame.
fn wire_per_event(config: &OnlineConfig, frames: &[Vec<u8>]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let t0 = Instant::now();
    for frame in frames {
        let instrs = decode_events(frame).expect("self-encoded frame");
        let outcomes: Vec<_> = instrs.iter().filter_map(|i| pipe.on_instr(i)).collect();
        let payload = encode_outcomes(&outcomes);
        std::hint::black_box(&payload);
    }
    t0.elapsed()
}

/// Today's `paco-served` frame loop: reused batches, zero dispatch.
fn wire_batched(config: &OnlineConfig, frames: &[Vec<u8>]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for frame in frames {
        decode_events_into(frame, &mut batch).expect("self-encoded frame");
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        std::hint::black_box(&payload);
    }
    t0.elapsed()
}

/// The watched `paco-served` frame loop: the batched lane plus
/// per-session calibration telemetry — what serving a declared session
/// costs with `paco-watch` enabled.
fn wire_watched(
    config: &OnlineConfig,
    frames: &[Vec<u8>],
    reference: &CalibrationProfile,
) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut watch = WatchState::new(Some("biased_bimodal".into()), Some(*reference));
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for frame in frames {
        decode_events_into(frame, &mut batch).expect("self-encoded frame");
        out.clear();
        pipe.run_batch(&batch, &mut out);
        watch.observe_batch(&out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        std::hint::black_box(&payload);
    }
    std::hint::black_box(watch.events());
    t0.elapsed()
}

/// The metered `paco-served` frame loop: the batched lane plus exactly
/// the per-frame recording the server does — a frame-counter bump, a
/// batch-size histogram record, and a handle-time histogram record with
/// its own two clock reads. What running with `--metrics-addr` scraping
/// enabled costs the hot path.
fn wire_metered(config: &OnlineConfig, frames: &[Vec<u8>], metrics: &ServeMetrics) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for frame in frames {
        let f0 = Instant::now();
        decode_events_into(frame, &mut batch).expect("self-encoded frame");
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        metrics.frame(FrameKind::Events).inc();
        metrics.batch_events.record(batch.len() as u64);
        metrics
            .batch_handle_ns
            .record(f0.elapsed().as_nanos() as u64);
        std::hint::black_box(&payload);
    }
    t0.elapsed()
}

fn digest_per_event(config: &OnlineConfig, frames: &[Vec<u8>]) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut digest = Digest::new();
    for frame in frames {
        let instrs = decode_events(frame).map_err(|e| e.to_string())?;
        let outcomes: Vec<_> = instrs.iter().filter_map(|i| pipe.on_instr(i)).collect();
        digest.update(&encode_outcomes(&outcomes));
    }
    Ok(digest.value())
}

fn digest_batched(config: &OnlineConfig, frames: &[Vec<u8>]) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        digest.update(&payload);
    }
    Ok(digest.value())
}

/// Same stream through the chunked data-parallel kernel
/// (`run_batch_probed` with [`NoProbe`]) — the kernel the per-pass
/// breakdown instruments must stay byte-identical to the fused lane.
fn digest_chunked(config: &OnlineConfig, frames: &[Vec<u8>]) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch_probed(&batch, &mut out, &mut NoProbe);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        digest.update(&payload);
    }
    Ok(digest.value())
}

/// Same stream through the metered loop — recording into a live metric
/// plane must never change the prediction bytes.
fn digest_metered(
    config: &OnlineConfig,
    frames: &[Vec<u8>],
    metrics: &ServeMetrics,
) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        let f0 = Instant::now();
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        metrics.frame(FrameKind::Events).inc();
        metrics.batch_events.record(batch.len() as u64);
        metrics
            .batch_handle_ns
            .record(f0.elapsed().as_nanos() as u64);
        digest.update(&payload);
    }
    Ok(digest.value())
}

fn digest_watched(
    config: &OnlineConfig,
    frames: &[Vec<u8>],
    reference: &CalibrationProfile,
) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut watch = WatchState::new(Some("biased_bimodal".into()), Some(*reference));
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch(&batch, &mut out);
        watch.observe_batch(&out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        digest.update(&payload);
    }
    Ok(digest.value())
}

/// Renders the experiment artifact (text mode).
pub fn render_text(report: &HotpathReport) -> String {
    use paco_analysis::Table;
    let mut out = String::new();
    out.push_str("== hotpath: per-event vs batched confidence lanes ==\n");
    out.push_str(&format!(
        "   ({} events, batch {}, best of {} passes; parity verified per run)\n\n",
        report.events, report.batch, report.passes
    ));
    let mut table = Table::new(&[
        "estimator",
        "pipeline/event (ev/s)",
        "pipeline/batch (ev/s)",
        "speedup",
        "wire/event (ev/s)",
        "wire/batch (ev/s)",
        "speedup",
        "wire+watch (ev/s)",
        "watch ovh",
        "wire+metrics (ev/s)",
        "metrics ovh",
    ]);
    for row in &report.rows {
        table.row_owned(vec![
            row.estimator.clone(),
            format!("{:.0}", row.pipeline.per_event_eps),
            format!("{:.0}", row.pipeline.batched_eps),
            format!("{:.2}x", row.pipeline.speedup()),
            format!("{:.0}", row.wire.per_event_eps),
            format!("{:.0}", row.wire.batched_eps),
            format!("{:.2}x", row.wire.speedup()),
            format!("{:.0}", row.wire_watch_eps),
            format!("{:.1}%", row.watch_overhead() * 100.0),
            format!("{:.0}", row.wire_metrics_eps),
            format!("{:.1}%", row.metrics_overhead() * 100.0),
        ]);
    }
    out.push_str(&format!("{}\n", table.render()));

    out.push_str("per-pass breakdown of the batched lane (probed run, us/frame):\n");
    let mut passes = Table::new(&["estimator", "predict", "train", "estimator pass", "total"]);
    for row in &report.rows {
        let p = &row.passes;
        passes.row_owned(vec![
            row.estimator.clone(),
            format!("{:.1}", p.predict_us),
            format!("{:.1}", p.train_us),
            format!("{:.1}", p.estimator_us),
            format!("{:.1}", p.predict_us + p.train_us + p.estimator_us),
        ]);
    }
    out.push_str(&format!("{}\n", passes.render()));

    if !report.sweep.is_empty() {
        out.push_str("speedup vs batch size (batched pipeline lane):\n");
        let mut sweep = Table::new(&["batch", "estimator", "batched (ev/s)", "speedup"]);
        for point in &report.sweep {
            for cell in &point.cells {
                sweep.row_owned(vec![
                    point.batch.to_string(),
                    cell.estimator.clone(),
                    format!("{:.0}", cell.batched_eps),
                    format!("{:.2}x", cell.speedup),
                ]);
            }
        }
        out.push_str(&format!("{}\n", sweep.render()));
    }

    out.push_str(
        "All lanes' prediction payloads were digest-compared this run\n\
         (byte-identical, or this experiment errors out); `wire` spans\n\
         decode EVENTS -> predict -> encode PREDICTIONS, the full\n\
         paco-served frame hot path, `wire+watch` adds per-session\n\
         calibration telemetry (the paco-watch lane), and `wire+metrics`\n\
         adds the paco-obs metric plane's per-frame recording (the\n\
         --metrics-addr lane).\n",
    );
    out
}

/// Renders the report as deterministic-key-order JSON (values are
/// measurements, so numbers vary run to run and across machines).
pub fn render_json(report: &HotpathReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"events\":{},\"batch\":{},\"passes\":{},\"estimators\":[",
        report.events, report.batch, report.passes
    ));
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lane = |p: &LanePair| {
            format!(
                "{{\"per_event_eps\":{:.0},\"batched_eps\":{:.0},\"speedup\":{:.3}}}",
                p.per_event_eps,
                p.batched_eps,
                p.speedup()
            )
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"pipeline\":{},\"wire\":{},\"wire_watch_eps\":{:.0},\
             \"watch_overhead\":{:.4},\"wire_metrics_eps\":{:.0},\"metrics_overhead\":{:.4},\
             \"passes\":{{\"predict_us\":{:.2},\"train_us\":{:.2},\"estimator_us\":{:.2}}},\
             \"parity\":true}}",
            row.estimator,
            lane(&row.pipeline),
            lane(&row.wire),
            row.wire_watch_eps,
            row.watch_overhead(),
            row.wire_metrics_eps,
            row.metrics_overhead(),
            row.passes.predict_us,
            row.passes.train_us,
            row.passes.estimator_us,
        ));
    }
    out.push_str("],\"sweep\":[");
    for (i, point) in report.sweep.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"batch\":{},\"estimators\":[", point.batch));
        for (j, cell) in point.cells.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"batched_eps\":{:.0},\"speedup\":{:.3}}}",
                cell.estimator, cell.batched_eps, cell.speedup
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_runs_and_holds_parity() {
        // Small but long enough to fill the in-flight window and cross
        // frame boundaries; run_at fails on any lane divergence.
        let report = run_at(20_000, 42).expect("hotpath runs");
        assert_eq!(report.rows.len(), kinds().len());
        assert!(report.sweep.is_empty());
        for row in &report.rows {
            assert!(row.pipeline.per_event_eps > 0.0);
            assert!(row.pipeline.batched_eps > 0.0);
            assert!(row.wire.per_event_eps > 0.0);
            assert!(row.wire.batched_eps > 0.0);
            // Throughput only; the 5% watch and 2% metrics overhead
            // budgets are baseline policy (docs/EXPERIMENTS.md), not
            // unit-test assertions — timing assertions flake under CI
            // load.
            assert!(row.wire_watch_eps > 0.0);
            assert!(row.wire_metrics_eps > 0.0);
            // The probed run attributes real time to every pass.
            assert!(row.passes.predict_us > 0.0);
            assert!(row.passes.train_us > 0.0);
            assert!(row.passes.estimator_us > 0.0);
        }
        let text = render_text(&report);
        assert!(text.contains("hotpath"));
        assert!(text.contains("per-pass breakdown"));
        for row in &report.rows {
            assert!(text.contains(&row.estimator), "missing {}", row.estimator);
        }
        let json = render_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pipeline\":"));
        assert!(json.contains("\"speedup\":"));
        assert!(json.contains("\"wire_watch_eps\":"));
        assert!(json.contains("\"watch_overhead\":"));
        assert!(json.contains("\"wire_metrics_eps\":"));
        assert!(json.contains("\"metrics_overhead\":"));
        assert!(json.contains("\"passes\":{\"predict_us\":"));
        assert!(json.contains("\"parity\":true"));
        assert!(json.contains("\"sweep\":[]"));
    }

    #[test]
    fn hotpath_sweep_gates_and_reports_every_size() {
        // Non-lane-multiple and tiny sizes included on purpose: the
        // sweep digest gate proves chunking never changes the outcome
        // stream, whatever the frame size.
        let report = run_at_sweep(12_000, 7, &[48, 100]).expect("sweep runs");
        assert_eq!(report.sweep.len(), 2);
        for (point, &size) in report.sweep.iter().zip(&[48usize, 100]) {
            assert_eq!(point.batch, size);
            assert_eq!(point.cells.len(), kinds().len());
            for cell in &point.cells {
                assert!(cell.batched_eps > 0.0);
                assert!(cell.speedup > 0.0);
            }
        }
        assert!(run_at_sweep(12_000, 7, &[0]).is_err());
        let text = render_text(&report);
        assert!(text.contains("speedup vs batch size"));
        let json = render_json(&report);
        assert!(json.contains("\"sweep\":[{\"batch\":48,"));
    }
}
