//! The `hotpath` experiment: the per-event vs batched confidence lanes,
//! measured head to head.
//!
//! Two lane pairs are timed over the same recorded event stream, for a
//! set of estimator kinds:
//!
//! * **pipeline** — events already in memory, straight through the
//!   pipeline: `on_instr` per event (the `dyn`-dispatched PR-3 path)
//!   vs [`OnlinePipeline::run_batch`] (the monomorphized,
//!   allocation-free batch lane).
//! * **wire** — the full `paco-served` frame hot path, wire bytes to
//!   wire bytes: decode EVENTS payload → predict → encode PREDICTIONS
//!   payload. The per-event variant is the PR-3 server loop
//!   (`decode_events` into a fresh `Vec<DynInstr>`, collect, per-event
//!   `encode_outcomes`); the batched variant is today's server loop
//!   (`decode_events_into` a reused [`EventBatch`], `run_batch`,
//!   `encode_outcomes_into` a reused buffer).
//!
//! A third wire variant, **wire+watch**, is the batched loop with
//! per-session calibration telemetry enabled
//! ([`WatchState::observe_batch`](paco_serve::WatchState) against a real
//! reference profile, resolved untimed before the passes start) — the
//! cost of watching a session, isolated. The baseline policy in
//! `docs/EXPERIMENTS.md` caps the watch lane's overhead at 5% of the
//! batched wire lane.
//!
//! Like `serve_throughput`, this is a wall-clock measurement: it
//! bypasses the engine and the result cache. The numbers only count if
//! the lanes agree — every run digests both lanes' prediction payloads
//! and fails on any divergence, so the benchmark doubles as a parity
//! check. The `--json` output of this experiment (plus
//! `serve_throughput`) is what `BENCH_baseline.json` at the repo root
//! records; see `docs/EXPERIMENTS.md` for how baselines are compared.

use std::time::{Duration, Instant};

use paco::{PacoConfig, ThresholdCountConfig};
use paco_corpus::CalibrationProfile;
use paco_serve::proto::{
    decode_events, decode_events_into, encode_events, encode_outcomes, encode_outcomes_into,
};
use paco_serve::{Digest, WatchState};
use paco_sim::{EstimatorKind, OnlineConfig, OnlinePipeline, OutcomeBatch};
use paco_types::{DynInstr, EventBatch};
use paco_workloads::{BenchmarkId, Workload};

use crate::runner::{default_instrs, default_seed};

/// Default instruction-stream length the event trace is extracted from
/// (`PACO_INSTRS` overrides).
pub const DEFAULT_INSTRS: u64 = 400_000;

/// Events per frame/batch, matching the serve defaults.
const BATCH: usize = 512;

/// Timed passes per lane; the best pass is reported (the lanes are
/// deterministic, so the best pass is the least-perturbed one).
const PASSES: u32 = 5;

/// One lane pair: events/second through each lane, and the ratio.
#[derive(Debug, Clone, Copy)]
pub struct LanePair {
    /// Events/second through the per-event lane.
    pub per_event_eps: f64,
    /// Events/second through the batched lane.
    pub batched_eps: f64,
}

impl LanePair {
    /// Batched-over-per-event throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.batched_eps / self.per_event_eps.max(1e-9)
    }
}

/// Measurements for one estimator kind.
#[derive(Debug, Clone)]
pub struct HotpathRow {
    /// The estimator's display name.
    pub estimator: String,
    /// In-memory pipeline lanes.
    pub pipeline: LanePair,
    /// Wire-to-wire (decode + predict + encode) lanes.
    pub wire: LanePair,
    /// Events/second through the batched wire lane with watch telemetry
    /// enabled.
    pub wire_watch_eps: f64,
}

impl HotpathRow {
    /// Watch-lane overhead as a fraction of batched wire throughput
    /// (0.03 = watching costs 3%; negative = noise in the lane's favor).
    pub fn watch_overhead(&self) -> f64 {
        1.0 - self.wire_watch_eps / self.wire.batched_eps.max(1e-9)
    }
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Branch events per pass.
    pub events: u64,
    /// Events per frame/batch.
    pub batch: usize,
    /// Timed passes per lane.
    pub passes: u32,
    /// Per-estimator measurements.
    pub rows: Vec<HotpathRow>,
}

/// Runs the experiment at the env-configured scale (`PACO_INSTRS` /
/// `PACO_SEED`); returns the report or a human-readable error (lane
/// divergence is an error, not a number).
pub fn run_hotpath() -> Result<HotpathReport, String> {
    run_at(default_instrs(DEFAULT_INSTRS), default_seed())
}

/// The estimator kinds the experiment sweeps.
fn kinds() -> [EstimatorKind; 3] {
    [
        EstimatorKind::None,
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        EstimatorKind::Paco(PacoConfig::paper()),
    ]
}

/// Runs the experiment at an explicit scale (tests use this directly so
/// they never mutate process environment).
pub fn run_at(instrs: u64, seed: u64) -> Result<HotpathReport, String> {
    // The control-event stream of a gzip run — the same extraction the
    // serve_throughput experiment and paco-load's trace replay use.
    let mut workload = BenchmarkId::Gzip.build(seed);
    let events: Vec<DynInstr> = (0..instrs)
        .map(|_| workload.next_instr())
        .filter(|i| i.class.is_control())
        .collect();
    if events.is_empty() {
        return Err("no control events generated".into());
    }

    // Pre-built inputs, shared by all lanes: encoded EVENTS payloads for
    // the wire lanes, struct-of-arrays batches for the batched pipeline
    // lane (its native input shape, as produced by the serve decoder).
    let frames: Vec<Vec<u8>> = events.chunks(BATCH).map(encode_events).collect();
    let batches: Vec<EventBatch> = events.chunks(BATCH).map(EventBatch::from).collect();

    // The watch lane's reference profile, resolved (and lazily computed)
    // before any pass is timed so its one-time cost never lands inside a
    // measurement.
    let reference = *paco_corpus::reference_profile("biased_bimodal")
        .ok_or("reference profile for biased_bimodal missing")?;

    let mut rows = Vec::new();
    for kind in kinds() {
        let config = OnlineConfig::paper(kind);
        let estimator = OnlinePipeline::new(&config).estimator_name();

        // Parity gate (untimed): all lanes' prediction payloads must
        // digest identically before any number is reported. The watched
        // lane is included — telemetry must never change the bytes.
        let per_event_digest = digest_per_event(&config, &frames)?;
        let batched_digest = digest_batched(&config, &frames)?;
        if per_event_digest != batched_digest {
            return Err(format!(
                "lane divergence for {estimator}: per-event digest {per_event_digest:016x} \
                 != batched digest {batched_digest:016x}"
            ));
        }
        let watched_digest = digest_watched(&config, &frames, &reference)?;
        if watched_digest != batched_digest {
            return Err(format!(
                "watch lane perturbed predictions for {estimator}: watched digest \
                 {watched_digest:016x} != batched digest {batched_digest:016x}"
            ));
        }

        let pipeline = LanePair {
            per_event_eps: eps(
                events.len(),
                best_of(PASSES, || pipeline_per_event(&config, &events)),
            ),
            batched_eps: eps(
                events.len(),
                best_of(PASSES, || pipeline_batched(&config, &batches)),
            ),
        };
        let wire = LanePair {
            per_event_eps: eps(
                events.len(),
                best_of(PASSES, || wire_per_event(&config, &frames)),
            ),
            batched_eps: eps(
                events.len(),
                best_of(PASSES, || wire_batched(&config, &frames)),
            ),
        };
        let wire_watch_eps = eps(
            events.len(),
            best_of(PASSES, || wire_watched(&config, &frames, &reference)),
        );
        rows.push(HotpathRow {
            estimator,
            pipeline,
            wire,
            wire_watch_eps,
        });
    }

    Ok(HotpathReport {
        events: events.len() as u64,
        batch: BATCH,
        passes: PASSES,
        rows,
    })
}

fn eps(events: usize, elapsed: Duration) -> f64 {
    events as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn best_of(passes: u32, mut lane: impl FnMut() -> Duration) -> Duration {
    (0..passes.max(1)).map(|_| lane()).min().unwrap()
}

fn pipeline_per_event(config: &OnlineConfig, events: &[DynInstr]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = Vec::with_capacity(BATCH);
    let t0 = Instant::now();
    for chunk in events.chunks(BATCH) {
        out.clear();
        out.extend(chunk.iter().filter_map(|i| pipe.on_instr(i)));
        std::hint::black_box(&out);
    }
    t0.elapsed()
}

fn pipeline_batched(config: &OnlineConfig, batches: &[EventBatch]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = OutcomeBatch::with_capacity(BATCH);
    let t0 = Instant::now();
    for batch in batches {
        out.clear();
        pipe.run_batch(batch, &mut out);
        std::hint::black_box(&out);
    }
    t0.elapsed()
}

/// The PR-3 `paco-served` frame loop: allocate-and-collect per frame.
fn wire_per_event(config: &OnlineConfig, frames: &[Vec<u8>]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let t0 = Instant::now();
    for frame in frames {
        let instrs = decode_events(frame).expect("self-encoded frame");
        let outcomes: Vec<_> = instrs.iter().filter_map(|i| pipe.on_instr(i)).collect();
        let payload = encode_outcomes(&outcomes);
        std::hint::black_box(&payload);
    }
    t0.elapsed()
}

/// Today's `paco-served` frame loop: reused batches, zero dispatch.
fn wire_batched(config: &OnlineConfig, frames: &[Vec<u8>]) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for frame in frames {
        decode_events_into(frame, &mut batch).expect("self-encoded frame");
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        std::hint::black_box(&payload);
    }
    t0.elapsed()
}

/// The watched `paco-served` frame loop: the batched lane plus
/// per-session calibration telemetry — what serving a declared session
/// costs with `paco-watch` enabled.
fn wire_watched(
    config: &OnlineConfig,
    frames: &[Vec<u8>],
    reference: &CalibrationProfile,
) -> Duration {
    let mut pipe = OnlinePipeline::new(config);
    let mut watch = WatchState::new(Some("biased_bimodal".into()), Some(*reference));
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let t0 = Instant::now();
    for frame in frames {
        decode_events_into(frame, &mut batch).expect("self-encoded frame");
        out.clear();
        pipe.run_batch(&batch, &mut out);
        watch.observe_batch(&out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        std::hint::black_box(&payload);
    }
    std::hint::black_box(watch.events());
    t0.elapsed()
}

fn digest_per_event(config: &OnlineConfig, frames: &[Vec<u8>]) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut digest = Digest::new();
    for frame in frames {
        let instrs = decode_events(frame).map_err(|e| e.to_string())?;
        let outcomes: Vec<_> = instrs.iter().filter_map(|i| pipe.on_instr(i)).collect();
        digest.update(&encode_outcomes(&outcomes));
    }
    Ok(digest.value())
}

fn digest_batched(config: &OnlineConfig, frames: &[Vec<u8>]) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch(&batch, &mut out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        digest.update(&payload);
    }
    Ok(digest.value())
}

fn digest_watched(
    config: &OnlineConfig,
    frames: &[Vec<u8>],
    reference: &CalibrationProfile,
) -> Result<u64, String> {
    let mut pipe = OnlinePipeline::new(config);
    let mut watch = WatchState::new(Some("biased_bimodal".into()), Some(*reference));
    let mut batch = EventBatch::new();
    let mut out = OutcomeBatch::new();
    let mut payload = Vec::new();
    let mut digest = Digest::new();
    for frame in frames {
        decode_events_into(frame, &mut batch).map_err(|e| e.to_string())?;
        out.clear();
        pipe.run_batch(&batch, &mut out);
        watch.observe_batch(&out);
        payload.clear();
        encode_outcomes_into(&mut payload, &out);
        digest.update(&payload);
    }
    Ok(digest.value())
}

/// Renders the experiment artifact (text mode).
pub fn render_text(report: &HotpathReport) -> String {
    use paco_analysis::Table;
    let mut out = String::new();
    out.push_str("== hotpath: per-event vs batched confidence lanes ==\n");
    out.push_str(&format!(
        "   ({} events, batch {}, best of {} passes; parity verified per run)\n\n",
        report.events, report.batch, report.passes
    ));
    let mut table = Table::new(&[
        "estimator",
        "pipeline/event (ev/s)",
        "pipeline/batch (ev/s)",
        "speedup",
        "wire/event (ev/s)",
        "wire/batch (ev/s)",
        "speedup",
        "wire+watch (ev/s)",
        "overhead",
    ]);
    for row in &report.rows {
        table.row_owned(vec![
            row.estimator.clone(),
            format!("{:.0}", row.pipeline.per_event_eps),
            format!("{:.0}", row.pipeline.batched_eps),
            format!("{:.2}x", row.pipeline.speedup()),
            format!("{:.0}", row.wire.per_event_eps),
            format!("{:.0}", row.wire.batched_eps),
            format!("{:.2}x", row.wire.speedup()),
            format!("{:.0}", row.wire_watch_eps),
            format!("{:.1}%", row.watch_overhead() * 100.0),
        ]);
    }
    out.push_str(&format!("{}\n", table.render()));
    out.push_str(
        "All lanes' prediction payloads were digest-compared this run\n\
         (byte-identical, or this experiment errors out); `wire` spans\n\
         decode EVENTS -> predict -> encode PREDICTIONS, the full\n\
         paco-served frame hot path, and `wire+watch` adds per-session\n\
         calibration telemetry (the paco-watch lane).\n",
    );
    out
}

/// Renders the report as deterministic-key-order JSON (values are
/// measurements, so numbers vary run to run and across machines).
pub fn render_json(report: &HotpathReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"events\":{},\"batch\":{},\"passes\":{},\"estimators\":[",
        report.events, report.batch, report.passes
    ));
    for (i, row) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let lane = |p: &LanePair| {
            format!(
                "{{\"per_event_eps\":{:.0},\"batched_eps\":{:.0},\"speedup\":{:.3}}}",
                p.per_event_eps,
                p.batched_eps,
                p.speedup()
            )
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"pipeline\":{},\"wire\":{},\"wire_watch_eps\":{:.0},\
             \"watch_overhead\":{:.4},\"parity\":true}}",
            row.estimator,
            lane(&row.pipeline),
            lane(&row.wire),
            row.wire_watch_eps,
            row.watch_overhead()
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_runs_and_holds_parity() {
        // Small but long enough to fill the in-flight window and cross
        // frame boundaries; run_at fails on any lane divergence.
        let report = run_at(20_000, 42).expect("hotpath runs");
        assert_eq!(report.rows.len(), kinds().len());
        for row in &report.rows {
            assert!(row.pipeline.per_event_eps > 0.0);
            assert!(row.pipeline.batched_eps > 0.0);
            assert!(row.wire.per_event_eps > 0.0);
            assert!(row.wire.batched_eps > 0.0);
            // Throughput only; the 5% overhead budget is a baseline
            // policy (docs/EXPERIMENTS.md), not a unit-test assertion —
            // timing assertions flake under CI load.
            assert!(row.wire_watch_eps > 0.0);
        }
        let text = render_text(&report);
        assert!(text.contains("hotpath"));
        for row in &report.rows {
            assert!(text.contains(&row.estimator), "missing {}", row.estimator);
        }
        let json = render_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pipeline\":"));
        assert!(json.contains("\"speedup\":"));
        assert!(json.contains("\"wire_watch_eps\":"));
        assert!(json.contains("\"watch_overhead\":"));
        assert!(json.contains("\"parity\":true"));
    }
}
