//! Declarative experiment specifications.
//!
//! An [`ExperimentSpec`] is a named list of [`CellSpec`]s, each describing
//! one *self-contained* simulation: which benchmark(s), which estimator,
//! which gating/fetch policy, how many instructions, which seed. Cells
//! carry everything needed to run them — no ambient state — which is what
//! makes the engine's parallel execution bit-identical to sequential
//! execution, and what makes results cacheable: a cell's
//! [`content_hash`](CellSpec::content_hash) covers the full machine
//! configuration via the [`Canon`] encodings, so a hash names a result
//! forever.
//!
//! The eight paper artifacts (`fig2` … `ablations`) are just named specs
//! over these cell kinds (see [`crate::experiments`]); a new scenario is a
//! new spec, not a new binary.
//!
//! # Examples
//!
//! ```
//! use paco_bench::spec::{CellKind, CellSpec, ExperimentSpec, RunParams};
//! use paco_sim::EstimatorKind;
//! use paco_workloads::BenchmarkId;
//!
//! let params = RunParams { instrs: 50_000, seed: 1, warmup: 400_000 };
//! let mut spec = ExperimentSpec::new("demo", params);
//! let cell = CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &params);
//! let a = spec.push(cell);
//! let b = spec.push(cell); // identical cells dedupe
//! assert_eq!(a, b);
//! assert_eq!(spec.cells().len(), 1);
//! ```

use paco_corpus::CorpusFamily;
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy, SimConfig};
use paco_types::canon::{fnv1a64, Canon};
use paco_workloads::BenchmarkId;

/// Version of the cell description format. Participates in every cell
/// hash: bump it when cell semantics change (execution seeds, warmup
/// interpretation, statistics layout) so stale cache entries can never be
/// mistaken for current results.
pub const SPEC_FORMAT_VERSION: u32 = 1;

/// What kind of simulation a cell runs.
///
/// Each kind maps to one machine configuration and one execution recipe in
/// the engine (including the per-kind seed derivation the original
/// experiment binaries used, so results are bit-compatible with them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellKind {
    /// Accuracy methodology (paper §4): one thread on the 4-wide machine,
    /// no gating; every fetch and execute event is a confidence instance.
    Accuracy {
        /// Benchmark model to run.
        bench: BenchmarkId,
        /// Estimator under evaluation.
        estimator: EstimatorKind,
    },
    /// Pipeline-gating methodology (paper §5.1): one thread on the 4-wide
    /// machine under a gating/throttling policy. `GatingPolicy::None`
    /// cells are the ungated baselines.
    Gating {
        /// Benchmark model to run.
        bench: BenchmarkId,
        /// Estimator driving the gating decision.
        estimator: EstimatorKind,
        /// The gating policy (or `None` for a baseline run).
        gating: GatingPolicy,
    },
    /// Standalone IPC on the 8-wide SMT machine with a single thread — the
    /// `SingleIPC` term of HMWIPC (paper §5.2).
    SmtSingle {
        /// Benchmark model to run.
        bench: BenchmarkId,
    },
    /// Two-thread SMT run under a fetch prioritization policy (paper
    /// §5.2).
    SmtPair {
        /// The benchmark pair (thread 0, thread 1).
        pair: (BenchmarkId, BenchmarkId),
        /// Per-thread estimator (used by the `Confidence` policy).
        estimator: EstimatorKind,
        /// SMT fetch prioritization policy.
        policy: FetchPolicy,
    },
    /// Phase-windowed accuracy run (Figure 3(b)): score-instance bins are
    /// accumulated separately per phase window. The cell's `instrs` is the
    /// total run length; windows of `window` retired instructions cycle
    /// through `phases` phases. No warmup (phases are measured from cold
    /// start, as the paper's phase argument requires).
    Phased {
        /// Benchmark model to run.
        bench: BenchmarkId,
        /// Estimator under evaluation.
        estimator: EstimatorKind,
        /// Phase window length in retired instructions.
        window: u64,
        /// Number of phases the windows cycle through.
        phases: u32,
    },
    /// The nonstationary drifting-stress model (Appendix A stress section
    /// of `tab_a1`), accuracy methodology on the 4-wide machine.
    Stress {
        /// Estimator under evaluation.
        estimator: EstimatorKind,
    },
    /// A synthetic corpus family (the `robustness` sweep), accuracy
    /// methodology on the 4-wide machine. The family recipe is embedded
    /// verbatim, so its knobs participate in the cell's content hash.
    Corpus {
        /// Family recipe to build the workload from.
        family: CorpusFamily,
        /// Estimator under evaluation.
        estimator: EstimatorKind,
    },
}

impl CellKind {
    /// The machine configuration this kind runs on.
    pub fn sim_config(&self) -> SimConfig {
        match self {
            CellKind::Accuracy { .. } | CellKind::Gating { .. } => SimConfig::paper_4wide(),
            CellKind::Phased { .. } | CellKind::Stress { .. } => SimConfig::paper_4wide(),
            CellKind::Corpus { .. } => SimConfig::paper_4wide(),
            CellKind::SmtSingle { .. } => SimConfig::paper_smt_8wide().with_threads(1),
            CellKind::SmtPair { .. } => SimConfig::paper_smt_8wide(),
        }
    }

    /// A short human-readable label for progress output and JSON.
    pub fn label(&self) -> String {
        match self {
            CellKind::Accuracy { bench, estimator } => {
                format!("accuracy/{}/{}", bench.name(), estimator.build().name())
            }
            CellKind::Gating {
                bench,
                estimator,
                gating,
            } => format!(
                "gating/{}/{}/{:?}",
                bench.name(),
                estimator.build().name(),
                gating
            ),
            CellKind::SmtSingle { bench } => format!("smt-single/{}", bench.name()),
            CellKind::SmtPair {
                pair,
                estimator,
                policy,
            } => format!(
                "smt/{}-{}/{}/{:?}",
                pair.0.name(),
                pair.1.name(),
                estimator.build().name(),
                policy
            ),
            CellKind::Phased {
                bench,
                estimator,
                window,
                phases,
            } => format!(
                "phased/{}/{}/w{window}x{phases}",
                bench.name(),
                estimator.build().name()
            ),
            CellKind::Stress { estimator } => {
                format!("stress/{}", estimator.build().name())
            }
            CellKind::Corpus { family, estimator } => {
                format!("corpus/{}/{}", family.name(), estimator.build().name())
            }
        }
    }
}

impl Canon for CellKind {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x40); // type tag
        match self {
            CellKind::Accuracy { bench, estimator } => {
                out.push(0);
                bench.canon(out);
                estimator.canon(out);
            }
            CellKind::Gating {
                bench,
                estimator,
                gating,
            } => {
                out.push(1);
                bench.canon(out);
                estimator.canon(out);
                gating.canon(out);
            }
            CellKind::SmtSingle { bench } => {
                out.push(2);
                bench.canon(out);
            }
            CellKind::SmtPair {
                pair,
                estimator,
                policy,
            } => {
                out.push(3);
                pair.0.canon(out);
                pair.1.canon(out);
                estimator.canon(out);
                policy.canon(out);
            }
            CellKind::Phased {
                bench,
                estimator,
                window,
                phases,
            } => {
                out.push(4);
                bench.canon(out);
                estimator.canon(out);
                window.canon(out);
                phases.canon(out);
            }
            CellKind::Stress { estimator } => {
                out.push(5);
                estimator.canon(out);
            }
            CellKind::Corpus { family, estimator } => {
                out.push(6);
                family.canon(out);
                estimator.canon(out);
            }
        }
    }
}

/// Run-length parameters shared by every cell an experiment creates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Measured instructions per run (the per-experiment default or a
    /// `PACO_INSTRS` override).
    pub instrs: u64,
    /// Experiment seed (default 42 or a `PACO_SEED` override).
    pub seed: u64,
    /// Base warmup instruction count before width scaling (see
    /// [`SimConfig::warmup_for`]).
    pub warmup: u64,
}

/// One fully-described simulation: the atomic unit of scheduling,
/// execution and caching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// What to simulate.
    pub kind: CellKind,
    /// Measured instructions (after warmup). For [`CellKind::Phased`],
    /// the *total* run length covered by phase windows.
    pub instrs: u64,
    /// Base warmup instruction count; the engine scales it per machine
    /// via [`SimConfig::warmup_for`]. Ignored (held at 0) by
    /// [`CellKind::Phased`].
    pub warmup: u64,
    /// The cell's base seed. The engine derives the machine and workload
    /// seeds from it exactly like the pre-engine binaries did.
    pub seed: u64,
}

impl CellSpec {
    /// An accuracy cell.
    pub fn accuracy(bench: BenchmarkId, estimator: EstimatorKind, p: &RunParams) -> Self {
        CellSpec {
            kind: CellKind::Accuracy { bench, estimator },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed,
        }
    }

    /// A gating cell (`GatingPolicy::None` for the ungated baseline).
    pub fn gating(
        bench: BenchmarkId,
        estimator: EstimatorKind,
        gating: GatingPolicy,
        p: &RunParams,
    ) -> Self {
        CellSpec {
            kind: CellKind::Gating {
                bench,
                estimator,
                gating,
            },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed,
        }
    }

    /// A standalone-IPC cell on the SMT machine.
    pub fn smt_single(bench: BenchmarkId, p: &RunParams) -> Self {
        CellSpec {
            kind: CellKind::SmtSingle { bench },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed,
        }
    }

    /// A two-thread SMT cell.
    pub fn smt_pair(
        pair: (BenchmarkId, BenchmarkId),
        estimator: EstimatorKind,
        policy: FetchPolicy,
        p: &RunParams,
    ) -> Self {
        CellSpec {
            kind: CellKind::SmtPair {
                pair,
                estimator,
                policy,
            },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed,
        }
    }

    /// A phase-windowed cell covering `total` instructions.
    pub fn phased(
        bench: BenchmarkId,
        estimator: EstimatorKind,
        window: u64,
        phases: u32,
        total: u64,
        p: &RunParams,
    ) -> Self {
        CellSpec {
            kind: CellKind::Phased {
                bench,
                estimator,
                window,
                phases,
            },
            instrs: total,
            warmup: 0,
            seed: p.seed,
        }
    }

    /// A corpus-family cell (accuracy methodology over a synthetic
    /// family). `corpus_seed` is the manifest entry's seed, folded into
    /// the experiment seed so entries decorrelate while `PACO_SEED`
    /// still shifts the whole sweep.
    pub fn corpus(
        family: CorpusFamily,
        estimator: EstimatorKind,
        corpus_seed: u64,
        p: &RunParams,
    ) -> Self {
        CellSpec {
            kind: CellKind::Corpus { family, estimator },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed ^ corpus_seed,
        }
    }

    /// A drifting-stress cell.
    pub fn stress(estimator: EstimatorKind, p: &RunParams) -> Self {
        CellSpec {
            kind: CellKind::Stress { estimator },
            instrs: p.instrs,
            warmup: p.warmup,
            seed: p.seed,
        }
    }

    /// The cell's stable content hash.
    ///
    /// Covers the format version, the implied machine configuration and
    /// every cell field through their canonical encodings, so the hash is
    /// a function of the cell's meaning alone — stable across field
    /// declaration order, platforms and process runs. Used as the result
    /// cache key.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(&self.canon_bytes())
    }
}

impl Canon for CellSpec {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x41); // type tag
        SPEC_FORMAT_VERSION.canon(out);
        self.kind.sim_config().canon(out);
        self.kind.canon(out);
        self.instrs.canon(out);
        self.warmup.canon(out);
        self.seed.canon(out);
    }
}

/// A named grid of cells: the declarative description of one experiment.
///
/// Cells are deduplicated on insertion, so shared runs (e.g. the ungated
/// baselines every Figure-10 configuration compares against, or the
/// standalone IPCs shared by every Figure-12 pairing) execute — and cache —
/// exactly once per spec.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Experiment name (e.g. `fig9`).
    pub name: String,
    /// The run-length parameters the spec was built with.
    pub params: RunParams,
    cells: Vec<CellSpec>,
}

impl ExperimentSpec {
    /// Creates an empty spec.
    pub fn new(name: impl Into<String>, params: RunParams) -> Self {
        ExperimentSpec {
            name: name.into(),
            params,
            cells: Vec::new(),
        }
    }

    /// Adds a cell, deduplicating against existing cells; returns its
    /// index (stable for the lifetime of the spec).
    pub fn push(&mut self, cell: CellSpec) -> usize {
        if let Some(i) = self.index_of(&cell) {
            return i;
        }
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// The cells in insertion order.
    pub fn cells(&self) -> &[CellSpec] {
        &self.cells
    }

    /// The index of an identical cell, if present.
    pub fn index_of(&self, cell: &CellSpec) -> Option<usize> {
        self.cells.iter().position(|c| c == cell)
    }

    /// An order-independent content hash of the whole spec: the sorted
    /// list of cell hashes, hashed. Two specs describing the same set of
    /// cells — regardless of insertion order — hash identically.
    pub fn content_hash(&self) -> u64 {
        let mut hashes: Vec<u64> = self.cells.iter().map(CellSpec::content_hash).collect();
        hashes.sort_unstable();
        let mut bytes = Vec::with_capacity(8 * hashes.len());
        for h in hashes {
            h.canon(&mut bytes);
        }
        fnv1a64(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco::PacoConfig;

    fn params() -> RunParams {
        RunParams {
            instrs: 10_000,
            seed: 42,
            warmup: 400_000,
        }
    }

    #[test]
    fn distinct_cells_hash_distinctly() {
        let p = params();
        let cells = [
            CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &p),
            CellSpec::accuracy(BenchmarkId::Twolf, EstimatorKind::None, &p),
            CellSpec::accuracy(
                BenchmarkId::Gzip,
                EstimatorKind::Paco(PacoConfig::paper()),
                &p,
            ),
            CellSpec::gating(
                BenchmarkId::Gzip,
                EstimatorKind::None,
                GatingPolicy::None,
                &p,
            ),
            CellSpec::smt_single(BenchmarkId::Gzip, &p),
            CellSpec::stress(EstimatorKind::None, &p),
        ];
        let mut hashes: Vec<u64> = cells.iter().map(CellSpec::content_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), cells.len(), "hash collision among {cells:?}");
    }

    #[test]
    fn accuracy_and_gating_baseline_differ() {
        // Same machine, same workload, same timing — but different kinds
        // (different machine seeds at execution), so they must not share a
        // cache slot.
        let p = params();
        let a = CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &p);
        let g = CellSpec::gating(
            BenchmarkId::Gzip,
            EstimatorKind::None,
            GatingPolicy::None,
            &p,
        );
        assert_ne!(a.content_hash(), g.content_hash());
    }

    #[test]
    fn hash_is_stable_across_processes() {
        // A pinned golden hash: canonical encodings are platform- and
        // process-independent, so this exact value must reproduce
        // everywhere. If this assertion fails, the canonical encoding or
        // the cell semantics changed — bump SPEC_FORMAT_VERSION (which
        // changes the value again, deliberately) and re-pin.
        let p = params();
        let cell = CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &p);
        assert_eq!(cell.content_hash(), 0x5aa8_7ed8_5218_96f0);
        let again = CellSpec {
            seed: 42,
            warmup: 400_000,
            instrs: 10_000,
            kind: CellKind::Accuracy {
                estimator: EstimatorKind::None,
                bench: BenchmarkId::Gzip,
            },
        };
        assert_eq!(cell.content_hash(), again.content_hash());
    }

    #[test]
    fn spec_dedupes_and_hashes_order_independently() {
        let p = params();
        let a = CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &p);
        let b = CellSpec::accuracy(BenchmarkId::Twolf, EstimatorKind::None, &p);

        let mut s1 = ExperimentSpec::new("x", p);
        assert_eq!(s1.push(a), 0);
        assert_eq!(s1.push(b), 1);
        assert_eq!(s1.push(a), 0, "duplicate must return the first index");
        assert_eq!(s1.cells().len(), 2);

        let mut s2 = ExperimentSpec::new("x", p);
        s2.push(b);
        s2.push(a);
        assert_eq!(s1.content_hash(), s2.content_hash());
    }

    #[test]
    fn labels_are_informative() {
        let p = params();
        let c = CellSpec::smt_pair(
            (BenchmarkId::Gzip, BenchmarkId::Mcf),
            EstimatorKind::None,
            FetchPolicy::ICount,
            &p,
        );
        let l = c.kind.label();
        assert!(l.contains("gzip") && l.contains("mcf"), "{l}");
    }
}
