//! The `serve_scale` experiment: the sharded reactor under a full
//! churn storm — thousands of sessions connected, parked at one
//! barrier, then resumed and (partly) migrated — with every session
//! digest-checked against offline replay.
//!
//! Where `serve_throughput` measures the hot path of a few long-lived
//! sessions, this measures the *control plane at scale*: session-table
//! pressure (peak concurrent parked sessions equals the whole storm),
//! resume routing to home shards, and live migration under load. Like
//! the other service experiments it is wall-clock, bypasses the engine
//! and the result cache, and refuses to report numbers on any parity
//! loss or a leaked session.
//!
//! Scale knobs: `PACO_INSTRS` sizes the shared event pool,
//! `PACO_SESSIONS` the storm (default 10 000 — the committed-baseline
//! scale), `PACO_SEED` the deterministic churn schedule.

use paco::PacoConfig;
use paco_serve::{corpus_control_events, run_churn, ChurnOptions, ChurnReport, RunningServer};
use paco_sim::{EstimatorKind, OnlineConfig};

use crate::runner::{default_instrs, default_seed};

/// Default instruction-stream length the shared event pool is
/// synthesized from (`PACO_INSTRS` overrides).
pub const DEFAULT_INSTRS: u64 = 150_000;

/// Default storm size (`PACO_SESSIONS` overrides): the committed
/// baseline sustains this many concurrently churned sessions on one
/// vCPU without parity loss.
pub const DEFAULT_SESSIONS: usize = 10_000;

/// Worker shards the loopback server runs (8 × the session table's
/// per-shard parked bound comfortably holds the default storm).
const SHARDS: usize = 8;

/// Concurrent driver threads.
const THREADS: usize = 16;

/// Events per EVENTS frame (cut points land on batch boundaries).
const BATCH: usize = 32;

/// Events each session streams across both churn phases.
const EVENTS_PER_SESSION: usize = 64;

/// Every 9th session issues an operator MIGRATE after resuming.
const MIGRATE_EVERY: usize = 9;

/// Runs the experiment at the env-configured scale; returns the report
/// or a human-readable error.
pub fn run_serve_scale() -> Result<ChurnReport, String> {
    let sessions = std::env::var("PACO_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SESSIONS);
    run_at(default_instrs(DEFAULT_INSTRS), default_seed(), sessions)
}

/// Runs the experiment at an explicit scale (tests use this directly so
/// they never mutate process environment).
pub fn run_at(instrs: u64, seed: u64, sessions: usize) -> Result<ChurnReport, String> {
    // The shared pool every session's slice is a rotation of: the
    // best-predictable corpus family, so the measurement is dominated
    // by churn mechanics rather than estimator behavior.
    let entry =
        paco_corpus::find_entry("biased_bimodal").ok_or("corpus family biased_bimodal missing")?;
    let pool = corpus_control_events(&entry.family, seed, instrs).map_err(|e| e.to_string())?;
    if pool.len() < EVENTS_PER_SESSION {
        return Err(format!(
            "pool too small: {} control events, need at least {EVENTS_PER_SESSION}",
            pool.len()
        ));
    }

    let server = RunningServer::bind("127.0.0.1:0", SHARDS)
        .map_err(|e| format!("cannot bind loopback server: {e}"))?;
    let options = ChurnOptions {
        // Small tables keep a 10k-session park resident; the paper PaCo
        // estimator stays on so migration moves real estimator state.
        config: OnlineConfig::tiny(EstimatorKind::Paco(PacoConfig::paper())),
        sessions,
        threads: THREADS,
        batch: BATCH,
        events_per_session: EVENTS_PER_SESSION,
        seed,
        migrate_every: MIGRATE_EVERY,
        resume_retries: 500,
    };
    let report = run_churn(server.addr(), &pool, &options).map_err(|e| e.to_string())?;
    let leaked = server.parked_sessions();
    server.stop();

    if !report.parity_ok() {
        return Err(format!(
            "parity failure: {} sessions diverged from offline replay: {:?}",
            report.parity_failures.len(),
            &report.parity_failures[..report.parity_failures.len().min(16)]
        ));
    }
    if report.peak_parked < sessions {
        return Err(format!(
            "storm never held the whole fleet parked: peak {} of {sessions} sessions",
            report.peak_parked
        ));
    }
    if leaked != 0 {
        return Err(format!(
            "session table leaked {leaked} sessions after the storm"
        ));
    }
    Ok(report)
}

/// Renders the experiment artifact (text mode).
pub fn render_text(report: &ChurnReport) -> String {
    let mut out = String::new();
    out.push_str("== serve_scale: churn storm on the sharded reactor ==\n");
    out.push_str(&format!(
        "   ({} sessions x {} events, batch {}, {} shards, operator MIGRATE every {}th session)\n\n",
        report.sessions, EVENTS_PER_SESSION, BATCH, SHARDS, MIGRATE_EVERY
    ));
    out.push_str(&report.render_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_scale_runs_and_holds_parity() {
        // Keep it small: this spins a real 8-shard server and churns
        // every session through park → resume → finish.
        let report = run_at(20_000, 7, 300).expect("experiment runs");
        assert_eq!(report.sessions, 300);
        assert_eq!(report.peak_parked, 300);
        assert!(report.parity_ok());
        assert!(report.migrated > 0, "some sessions must migrate");
        assert!(report.events > 0);
        let text = render_text(&report);
        assert!(text.contains("serve_scale"));
        assert!(text.contains("parity               ok"));
        let json = report.render_json();
        assert!(json.contains("\"parity\":true"));
        assert!(json.contains("\"peak_parked\":300"));
    }
}
