//! The named paper experiments: declarative specs plus presentation.
//!
//! Each artifact of the paper (`fig2` … `ablations`) is described twice:
//!
//! 1. a **spec builder** that declares its cell grid (what to simulate),
//! 2. a **render function** that maps the engine's cell results into the
//!    exact text the original hand-rolled binary printed.
//!
//! The render functions re-derive cell descriptions from the spec's
//! [`RunParams`] and look results up by structural equality, so the
//! mapping between a table row and its simulation is the `CellSpec` value
//! itself — there is no positional coupling to break. All numeric
//! assembly is delegated to `paco-analysis` aggregation functions.

use paco::{AdaptiveMrtConfig, LogMode, PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_analysis::{
    coverage_pct, gating_tradeoff, mean, mean_tradeoff, merge_bin_pairs, render_diagram_ascii,
    GatingTradeoff, ReliabilityDiagram, RunPoint, Table,
};
use paco_corpus::CORPUS;
use paco_sim::PROB_BINS;
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy};
use paco_types::canon::Canon;
use paco_types::Probability;
use paco_workloads::BenchmarkId::{self, *};
use paco_workloads::ALL_BENCHMARKS;

use crate::engine::CellResult;
use crate::runner::paco_estimator;
use crate::spec::{CellSpec, ExperimentSpec, RunParams};

/// Identifies a named experiment: the eight paper artifacts plus the
/// service-level `serve_throughput` measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ExperimentId {
    Fig2,
    Fig3,
    Tab7,
    Fig9,
    Fig10,
    Fig12,
    TabA1,
    Ablations,
    /// Corpus-wide robustness sweep: every estimator kind across every
    /// synthetic workload family of [`paco_corpus::CORPUS`] — the
    /// systematic answer to "where does the estimator break". Not a
    /// paper artifact (the paper evaluates on its tuning suite only).
    Robustness,
    /// End-to-end throughput/latency of the streaming prediction service
    /// (`crate::serve_bench`). Runs a real loopback server — not an
    /// engine cell grid, and never cached.
    ServeThroughput,
    /// Churn-storm scale test of the sharded reactor
    /// (`crate::serve_scale`): thousands of sessions parked, resumed
    /// and migrated, every one digest-checked against offline replay.
    /// Runs a real loopback server — not an engine cell grid, and
    /// never cached.
    ServeScale,
    /// Per-event vs batched confidence-lane microbenchmark
    /// (`crate::hotpath`). Wall-clock measurement with a built-in
    /// lane-parity gate — not an engine cell grid, and never cached.
    /// Its `--json` output seeds `BENCH_baseline.json`.
    Hotpath,
}

/// All experiments, in paper order (corpus and service measurements
/// last).
pub const ALL_EXPERIMENTS: [ExperimentId; 12] = [
    ExperimentId::Fig2,
    ExperimentId::Fig3,
    ExperimentId::Tab7,
    ExperimentId::Fig9,
    ExperimentId::Fig10,
    ExperimentId::Fig12,
    ExperimentId::TabA1,
    ExperimentId::Ablations,
    ExperimentId::Robustness,
    ExperimentId::ServeThroughput,
    ExperimentId::ServeScale,
    ExperimentId::Hotpath,
];

impl ExperimentId {
    /// The experiment's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Tab7 => "tab7",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::Fig12 => "fig12",
            ExperimentId::TabA1 => "tab_a1",
            ExperimentId::Ablations => "ablations",
            ExperimentId::Robustness => "robustness",
            ExperimentId::ServeThroughput => "serve_throughput",
            ExperimentId::ServeScale => "serve_scale",
            ExperimentId::Hotpath => "hotpath",
        }
    }

    /// One-line description for `paco-bench list`.
    pub fn describe(self) -> &'static str {
        match self {
            ExperimentId::Fig2 => "Fig. 2 — per-MDC-bucket mispredict rates",
            ExperimentId::Fig3 => "Fig. 3 — goodpath probability at counter = 5",
            ExperimentId::Tab7 => "Fig. 7 (table) — RMS error + mispredict rates",
            ExperimentId::Fig9 => "Figs. 8-9 — reliability diagrams",
            ExperimentId::Fig10 => "Fig. 10 — pipeline gating trade-off curves",
            ExperimentId::Fig12 => "Fig. 12 — SMT fetch prioritization (HMWIPC)",
            ExperimentId::TabA1 => "Appendix Table 1 — MRT variants ablation",
            ExperimentId::Ablations => "refresh-period / log-mode / throttling ablations",
            ExperimentId::Robustness => {
                "corpus robustness — every estimator kind × every synthetic workload family"
            }
            ExperimentId::ServeThroughput => {
                "streaming service throughput + latency percentiles (loopback, uncached)"
            }
            ExperimentId::ServeScale => {
                "churn-storm scale: 10k sessions parked/resumed/migrated, parity-gated (loopback, uncached)"
            }
            ExperimentId::Hotpath => {
                "per-event vs batched confidence-lane throughput (parity-gated, uncached)"
            }
        }
    }

    /// Parses an experiment name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_EXPERIMENTS
            .iter()
            .copied()
            .find(|e| e.name().eq_ignore_ascii_case(name))
    }

    /// The experiment's default per-run instruction budget (overridable
    /// with `PACO_INSTRS`).
    pub fn default_instrs(self) -> u64 {
        match self {
            ExperimentId::Fig2 => 500_000,
            ExperimentId::Fig3 => 600_000,
            ExperimentId::Tab7 => 1_000_000,
            ExperimentId::Fig9 => 800_000,
            ExperimentId::Fig10 => 400_000,
            ExperimentId::Fig12 => 200_000,
            ExperimentId::TabA1 => 600_000,
            ExperimentId::Ablations => 400_000,
            ExperimentId::Robustness => 400_000,
            ExperimentId::ServeThroughput => crate::serve_bench::DEFAULT_INSTRS,
            ExperimentId::ServeScale => crate::serve_scale::DEFAULT_INSTRS,
            ExperimentId::Hotpath => crate::hotpath::DEFAULT_INSTRS,
        }
    }

    /// Builds the experiment's cell grid.
    pub fn spec(self, params: RunParams) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.name(), params);
        let p = &params;
        match self {
            ExperimentId::Fig2 => {
                for bench in ALL_BENCHMARKS {
                    spec.push(CellSpec::accuracy(bench, EstimatorKind::None, p));
                }
            }
            ExperimentId::Fig3 => {
                for bench in FIG3_BENCHMARKS {
                    spec.push(CellSpec::accuracy(bench, fig3_estimator(), p));
                }
                spec.push(fig3_mcf_cell(p));
                spec.push(fig3_gcc_cell(p));
            }
            ExperimentId::Tab7 | ExperimentId::Fig9 => {
                for bench in ALL_BENCHMARKS {
                    spec.push(CellSpec::accuracy(bench, paco_estimator(), p));
                }
            }
            ExperimentId::Fig10 => {
                for bench in ALL_BENCHMARKS {
                    spec.push(CellSpec::gating(
                        bench,
                        EstimatorKind::None,
                        GatingPolicy::None,
                        p,
                    ));
                }
                for (est, gating) in fig10_configs() {
                    for bench in ALL_BENCHMARKS {
                        spec.push(CellSpec::gating(bench, est, gating, p));
                    }
                }
            }
            ExperimentId::Fig12 => {
                for &(a, b) in &FIG12_PAIRS {
                    spec.push(CellSpec::smt_single(a, p));
                    spec.push(CellSpec::smt_single(b, p));
                }
                for &pair in &FIG12_PAIRS {
                    for (_, est, pol) in fig12_policies() {
                        spec.push(CellSpec::smt_pair(pair, est, pol, p));
                    }
                }
            }
            ExperimentId::TabA1 => {
                for bench in ALL_BENCHMARKS {
                    for (_, est) in tab_a1_variants() {
                        spec.push(CellSpec::accuracy(bench, est, p));
                    }
                }
                for (_, est) in tab_a1_variants() {
                    spec.push(CellSpec::stress(est, p));
                }
            }
            ExperimentId::Robustness => {
                for entry in CORPUS {
                    for (_, est) in robustness_estimators() {
                        spec.push(CellSpec::corpus(entry.family, est, entry.seed, p));
                    }
                }
            }
            // Not engine experiments: the CLI routes these to
            // `serve_bench` / `serve_scale` / `hotpath` before building
            // a spec; the empty grids keep `spec()` total.
            ExperimentId::ServeThroughput | ExperimentId::ServeScale | ExperimentId::Hotpath => {}
            ExperimentId::Ablations => {
                for period in ABLATION_PERIODS {
                    let est = EstimatorKind::Paco(PacoConfig::paper().with_refresh_period(period));
                    for bench in ALL_BENCHMARKS {
                        spec.push(CellSpec::accuracy(bench, est, p));
                    }
                }
                for (_, mode) in ABLATION_LOG_MODES {
                    let est = EstimatorKind::Paco(PacoConfig::paper().with_log_mode(mode));
                    for bench in ALL_BENCHMARKS {
                        spec.push(CellSpec::accuracy(bench, est, p));
                    }
                }
                for (_, est, gating) in ablation_throttle_configs() {
                    spec.push(CellSpec::gating(Twolf, est, GatingPolicy::None, p));
                    spec.push(CellSpec::gating(Twolf, est, gating, p));
                }
            }
        }
        spec
    }

    /// Renders the experiment's output text from engine results.
    pub fn render(self, set: &ResultSet<'_>) -> String {
        match self {
            ExperimentId::Fig2 => render_fig2(set),
            ExperimentId::Fig3 => render_fig3(set),
            ExperimentId::Tab7 => render_tab7(set),
            ExperimentId::Fig9 => render_fig9(set),
            ExperimentId::Fig10 => render_fig10(set),
            ExperimentId::Fig12 => render_fig12(set),
            ExperimentId::TabA1 => render_tab_a1(set),
            ExperimentId::Ablations => render_ablations(set),
            ExperimentId::Robustness => render_robustness(set),
            ExperimentId::ServeThroughput => {
                "serve_throughput runs outside the engine; see `paco-bench run serve_throughput`\n"
                    .to_string()
            }
            ExperimentId::ServeScale => {
                "serve_scale runs outside the engine; see `paco-bench run serve_scale`\n"
                    .to_string()
            }
            ExperimentId::Hotpath => {
                "hotpath runs outside the engine; see `paco-bench run hotpath`\n".to_string()
            }
        }
    }
}

/// A spec paired with its engine results, for rendering.
#[derive(Debug)]
pub struct ResultSet<'a> {
    /// The spec the results were produced from.
    pub spec: &'a ExperimentSpec,
    /// Per-cell results, indexed like `spec.cells()`.
    pub results: &'a [CellResult],
}

impl ResultSet<'_> {
    /// The result of a cell, located by structural equality.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not part of the spec — a spec/render mismatch
    /// is a programming error, not a runtime condition.
    pub fn get(&self, cell: &CellSpec) -> &CellResult {
        let i = self.spec.index_of(cell).unwrap_or_else(|| {
            panic!("cell not in spec {}: {}", self.spec.name, cell.kind.label())
        });
        &self.results[i]
    }

    /// Occurrence-weighted RMS error of a cell's thread-0 run.
    fn rms(&self, cell: &CellSpec) -> f64 {
        ReliabilityDiagram::from_bins(&self.get(cell).stats.threads[0].prob_instances).rms_error()
    }

    /// The Figure-10 observables of a cell's run.
    fn run_point(&self, cell: &CellSpec) -> RunPoint {
        let stats = &self.get(cell).stats;
        RunPoint {
            ipc: stats.ipc(0),
            badpath_executed: stats.total_badpath_executed(),
            badpath_fetched: stats.total_badpath_fetched(),
        }
    }
}

// ------------------------------------------------------------------ //
//  Figure 2                                                           //
// ------------------------------------------------------------------ //

fn render_fig2(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Figure 2: per-MDC-bucket mispredict rates (%) ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark, seed {})\n\n",
        p.instrs, p.seed
    ));

    let mut header = vec!["bench".to_string()];
    header.extend((0..16).map(|i| format!("mdc{i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for bench in ALL_BENCHMARKS {
        let r = set.get(&CellSpec::accuracy(bench, EstimatorKind::None, &p));
        let t = &r.stats.threads[0];
        let mut row = vec![bench.name().to_string()];
        for b in 0..16 {
            row.push(match t.mdc_bucket_mispredict_pct(b) {
                Some(pct) => format!("{pct:.1}"),
                None => "-".to_string(),
            });
        }
        table.row_owned(row);
    }
    out.push_str(&format!("{}\n", table.render()));

    out.push_str(
        "Paper's qualitative claim to verify: rates fall steeply with MDC value;\n\
         MDC 0 branches mispredict tens of percent while MDC 15 branches are\n\
         nearly perfect, and the same MDC value maps to different rates across\n\
         benchmarks (e.g. gcc vs vortex at MDC 2).\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Figure 3                                                           //
// ------------------------------------------------------------------ //

const FIG3_COUNTER: usize = 5;

const FIG3_BENCHMARKS: [BenchmarkId; 4] = [Crafty, Gzip, Bzip2, VprRoute];

fn fig3_estimator() -> EstimatorKind {
    EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default())
}

/// mcf: two phases of 400k instructions each.
fn fig3_mcf_cell(p: &RunParams) -> CellSpec {
    CellSpec::phased(
        Mcf,
        fig3_estimator(),
        400_000,
        2,
        1_600_000.min(p.instrs.saturating_mul(3)),
        p,
    )
}

/// gcc: four short phases of 25k instructions.
fn fig3_gcc_cell(p: &RunParams) -> CellSpec {
    CellSpec::phased(Gcc, fig3_estimator(), 25_000, 4, p.instrs, p)
}

fn fig3_prob_cell(bins: &[(u64, u64)]) -> (String, String) {
    let (n, good) = bins[FIG3_COUNTER];
    let prob = if n > 0 {
        format!("{:.3}", good as f64 / n as f64)
    } else {
        "-".to_string()
    };
    (prob, n.to_string())
}

fn render_fig3(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str(&format!(
        "== Figure 3(a): observed goodpath probability at counter = {FIG3_COUNTER} ==\n"
    ));
    out.push_str(&format!(
        "   (JRS threshold 3, {} instructions/benchmark, seed {})\n\n",
        p.instrs, p.seed
    ));
    let mut t = Table::new(&["bench", "P(goodpath | count=5)", "instances"]);
    for bench in FIG3_BENCHMARKS {
        let r = set.get(&CellSpec::accuracy(bench, fig3_estimator(), &p));
        let (prob, n) = fig3_prob_cell(&r.stats.threads[0].score_instances);
        t.row_owned(vec![bench.name().to_string(), prob, n]);
    }
    out.push_str(&format!("{}\n", t.render()));

    out.push_str("== Figure 3(b): same, across phases of mcf and gcc ==\n\n");
    let mut t = Table::new(&["phase", "P(goodpath | count=5)", "instances"]);
    let mcf = &set.get(&fig3_mcf_cell(&p)).phases;
    for (i, bins) in mcf.iter().enumerate() {
        let (prob, n) = fig3_prob_cell(bins);
        t.row_owned(vec![format!("mcf_phase{}", i + 1), prob, n]);
    }
    let gcc = &set.get(&fig3_gcc_cell(&p)).phases;
    for (i, bins) in gcc.iter().take(2).enumerate() {
        let (prob, n) = fig3_prob_cell(bins);
        t.row_owned(vec![format!("gcc_phase{}", i + 1), prob, n]);
    }
    out.push_str(&format!("{}\n", t.render()));
    out.push_str(
        "Paper's qualitative claim: the observed probability at a fixed counter\n\
         value differs strongly across benchmarks (10%..40% in the paper) and\n\
         across phases of one benchmark — a fixed gate-count cannot be right\n\
         everywhere.\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Figure 7 (table)                                                   //
// ------------------------------------------------------------------ //

fn render_tab7(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Figure 7 (table): PaCo RMS error and mispredict rates ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark, seed {})\n\n",
        p.instrs, p.seed
    ));

    let mut table = Table::new(&[
        "bench",
        "PaCo RMS",
        "paper RMS",
        "overall MR%",
        "paper",
        "cond MR%",
        "paper",
    ]);
    let mut all_bins: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut rms_sum = 0.0;

    for bench in ALL_BENCHMARKS {
        let cell = CellSpec::accuracy(bench, paco_estimator(), &p);
        let r = set.get(&cell);
        let t = &r.stats.threads[0];
        let spec = bench.spec();
        let rms = set.rms(&cell);
        rms_sum += rms;
        all_bins.push(t.prob_instances.clone());
        table.row_owned(vec![
            bench.name().to_string(),
            format!("{rms:.4}"),
            format!("{:.4}", tab7_paper_rms(bench.name())),
            format!("{:.2}", t.overall_mispredict_pct().unwrap_or(0.0)),
            format!("{:.2}", spec.paper_overall_mispredict_pct),
            format!("{:.2}", t.cond_mispredict_pct().unwrap_or(0.0)),
            format!("{:.2}", spec.paper_cond_mispredict_pct),
        ]);
    }
    let cumulative = ReliabilityDiagram::from_many(&all_bins);
    table.row_owned(vec![
        "mean/cum".to_string(),
        format!("{:.4}", rms_sum / ALL_BENCHMARKS.len() as f64),
        "0.0377".to_string(),
        String::new(),
        "6.22".to_string(),
        String::new(),
        "6.32".to_string(),
    ]);
    out.push_str(&format!("{}\n", table.render()));
    out.push_str(&format!(
        "cumulative (all benchmarks pooled) RMS: {:.4}\n",
        cumulative.rms_error()
    ));
    out
}

/// The paper's per-benchmark PaCo RMS errors (Figure 7).
fn tab7_paper_rms(name: &str) -> f64 {
    match name {
        "bzip2" => 0.0545,
        "crafty" => 0.0528,
        "gcc" => 0.0874,
        "gap" => 0.0830,
        "gzip" => 0.0640,
        "mcf" => 0.0447,
        "parser" => 0.0415,
        "perlbmk" => 0.0613,
        "twolf" => 0.0175,
        "vortex" => 0.0332,
        "vprPlace" => 0.0244,
        "vprRoute" => 0.0322,
        _ => f64::NAN,
    }
}

// ------------------------------------------------------------------ //
//  Figures 8-9                                                        //
// ------------------------------------------------------------------ //

fn render_fig9(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Figures 8-9: reliability diagrams ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark, seed {})\n\n",
        p.instrs, p.seed
    ));

    let shown = [Twolf, VprRoute, Crafty, Gcc, Perlbmk, Parser];

    let mut all_bins = Vec::new();
    let mut rms_table = Table::new(&["bench", "RMS", "instances"]);

    for bench in ALL_BENCHMARKS {
        let cell = CellSpec::accuracy(bench, paco_estimator(), &p);
        let r = set.get(&cell);
        let diagram = ReliabilityDiagram::from_bins(&r.stats.threads[0].prob_instances);
        all_bins.push(r.stats.threads[0].prob_instances.clone());
        rms_table.row_owned(vec![
            bench.name().to_string(),
            format!("{:.4}", diagram.rms_error()),
            diagram.total_instances().to_string(),
        ]);
        if shown.contains(&bench) {
            out.push_str(&format!("---- {} ----\n", bench.name()));
            out.push_str(&format!("{}\n", render_diagram_ascii(&diagram, 60, 22)));
        }
    }

    let mut pooled = vec![(0u64, 0u64); PROB_BINS];
    for bins in &all_bins {
        merge_bin_pairs(&mut pooled, bins);
    }
    let cumulative = ReliabilityDiagram::from_bins(&pooled);
    out.push_str("---- cumulative (all benchmarks, Figure 9(f)) ----\n");
    out.push_str(&format!("{}\n", render_diagram_ascii(&cumulative, 60, 22)));
    out.push_str(&format!(
        "cumulative RMS: {:.4}\n\n",
        cumulative.rms_error()
    ));
    out.push_str(&format!("{}\n", rms_table.render()));
    out
}

// ------------------------------------------------------------------ //
//  Figure 10                                                          //
// ------------------------------------------------------------------ //

const FIG10_THRESHOLDS: [u8; 4] = [3, 7, 11, 15];
const FIG10_GATE_COUNTS: [u64; 7] = [10, 8, 6, 4, 3, 2, 1];
const FIG10_PACO_PCTS: [u32; 12] = [2, 6, 10, 14, 20, 26, 34, 42, 50, 62, 74, 90];

/// Every gated configuration Figure 10 sweeps, in table order.
fn fig10_configs() -> Vec<(EstimatorKind, GatingPolicy)> {
    let mut configs = Vec::new();
    for threshold in FIG10_THRESHOLDS {
        let est = EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(threshold));
        for gate_count in FIG10_GATE_COUNTS {
            configs.push((est, GatingPolicy::CountGate { gate_count }));
        }
    }
    for pct in FIG10_PACO_PCTS {
        configs.push((
            paco_estimator(),
            GatingPolicy::paco_gate(Probability::new(pct as f64 / 100.0).unwrap()),
        ));
    }
    configs
}

fn render_fig10(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Figure 10: pipeline gating trade-off ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark/config, seed {}; mean over {} benchmarks)\n\n",
        p.instrs,
        p.seed,
        ALL_BENCHMARKS.len()
    ));

    let mean_point = |estimator: EstimatorKind, gating: GatingPolicy| -> GatingTradeoff {
        let points: Vec<GatingTradeoff> = ALL_BENCHMARKS
            .iter()
            .map(|&bench| {
                let base = set.run_point(&CellSpec::gating(
                    bench,
                    EstimatorKind::None,
                    GatingPolicy::None,
                    &p,
                ));
                let gated = set.run_point(&CellSpec::gating(bench, estimator, gating, &p));
                gating_tradeoff(base, gated)
            })
            .collect();
        mean_tradeoff(&points)
    };

    let mut table = Table::new(&[
        "predictor",
        "config",
        "perf loss %",
        "badpath exec red. %",
        "badpath fetch red. %",
    ]);

    for threshold in FIG10_THRESHOLDS {
        let est = EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(threshold));
        for gate_count in FIG10_GATE_COUNTS {
            let m = mean_point(est, GatingPolicy::CountGate { gate_count });
            table.row_owned(vec![
                format!("JRS-t{threshold}"),
                format!("gate-count {gate_count}"),
                format!("{:.2}", m.perf_loss_pct),
                format!("{:.1}", m.badpath_exec_reduction_pct),
                format!("{:.1}", m.badpath_fetch_reduction_pct),
            ]);
        }
    }

    for pct in FIG10_PACO_PCTS {
        let gating = GatingPolicy::paco_gate(Probability::new(pct as f64 / 100.0).unwrap());
        let m = mean_point(paco_estimator(), gating);
        table.row_owned(vec![
            "PaCo".to_string(),
            format!("gate below {pct}%"),
            format!("{:.2}", m.perf_loss_pct),
            format!("{:.1}", m.badpath_exec_reduction_pct),
            format!("{:.1}", m.badpath_fetch_reduction_pct),
        ]);
    }

    out.push_str(&format!("{}\n", table.render()));
    out.push_str(
        "Paper's claims to verify: PaCo at a ~20% gating probability removes\n\
         ~32% of badpath instructions executed at ~0% performance loss (badpath\n\
         fetch reduction even higher, ~70%), while the best counter-based\n\
         predictor (JRS-t3) only reaches ~7% at comparable loss; conservative\n\
         PaCo gating can even *improve* performance via reduced cache/BTB\n\
         pollution.\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Figure 12                                                          //
// ------------------------------------------------------------------ //

/// The 16 SMT pairs: 11 benchmarks (no parser), each in 3 pairs except
/// gzip (2). 16 pairs × 2 slots = 32 = 10×3 + 2.
pub const FIG12_PAIRS: [(BenchmarkId, BenchmarkId); 16] = [
    (Bzip2, Crafty),
    (Gcc, Gap),
    (Gzip, Mcf),
    (Perlbmk, Twolf),
    (Vortex, VprPlace),
    (VprRoute, Bzip2),
    (Crafty, Gcc),
    (Gap, Mcf),
    (Twolf, Vortex),
    (VprPlace, VprRoute),
    (Bzip2, Gzip),
    (Crafty, Perlbmk),
    (Gcc, Twolf),
    (Gap, Vortex),
    (Mcf, VprPlace),
    (Perlbmk, VprRoute),
];

fn fig12_policies() -> [(&'static str, EstimatorKind, FetchPolicy); 6] {
    [
        ("ICount", EstimatorKind::None, FetchPolicy::ICount),
        (
            "JRS-t3",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(3)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t7",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(7)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t11",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(11)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t15",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(15)),
            FetchPolicy::Confidence,
        ),
        ("PaCo", paco_estimator(), FetchPolicy::Confidence),
    ]
}

fn render_fig12(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Figure 12: SMT fetch prioritization (HMWIPC) ==\n");
    out.push_str(&format!(
        "   ({} instructions/thread/config, seed {})\n\n",
        p.instrs, p.seed
    ));

    // Standalone IPCs on the 8-wide machine (the SingleIPC terms).
    let mut single = std::collections::BTreeMap::new();
    for &(a, b) in &FIG12_PAIRS {
        for bench in [a, b] {
            single
                .entry(bench.name())
                .or_insert_with(|| set.get(&CellSpec::smt_single(bench, &p)).stats.ipc(0));
        }
    }

    let policies = fig12_policies();
    let mut table = Table::new(&[
        "pair", "ICount", "JRS-t3", "JRS-t7", "JRS-t11", "JRS-t15", "PaCo",
    ]);
    let mut sums = [0.0f64; 6];
    let mut paco_vs_best_jrs = Vec::new();

    for &(a, b) in &FIG12_PAIRS {
        let sa = single[a.name()];
        let sb = single[b.name()];
        let mut row = vec![format!("{}-{}", a.name(), b.name())];
        let mut vals = [0.0f64; 6];
        for (i, (_, est, pol)) in policies.iter().enumerate() {
            let stats = &set.get(&CellSpec::smt_pair((a, b), *est, *pol, &p)).stats;
            let hmwipc = paco_analysis::hmwipc(&[(sa, stats.ipc(0)), (sb, stats.ipc(1))]);
            vals[i] = hmwipc;
            sums[i] += hmwipc;
            row.push(format!("{hmwipc:.3}"));
        }
        let best_jrs = vals[1..5].iter().cloned().fold(f64::MIN, f64::max);
        paco_vs_best_jrs.push(100.0 * (vals[5] - best_jrs) / best_jrs);
        table.row_owned(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in sums {
        mean_row.push(format!("{:.3}", s / FIG12_PAIRS.len() as f64));
    }
    table.row_owned(mean_row);
    out.push_str(&format!("{}\n", table.render()));

    let wins = paco_vs_best_jrs.iter().filter(|&&d| d > 0.0).count();
    let mean_gain = mean(&paco_vs_best_jrs);
    let max_gain = paco_vs_best_jrs.iter().cloned().fold(f64::MIN, f64::max);
    out.push_str(&format!(
        "PaCo vs best JRS per pair: wins {wins}/16, mean {mean_gain:+.1}%, max {max_gain:+.1}%\n"
    ));
    out.push_str(
        "Paper's claims to verify: PaCo beats the best threshold-and-count\n\
         predictor on 14 of 16 pairs, ~5.4-5.5% mean improvement, up to ~23%.\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Appendix Table 1                                                   //
// ------------------------------------------------------------------ //

fn tab_a1_variants() -> [(&'static str, EstimatorKind); 3] {
    [
        ("MRT", paco_estimator()),
        ("StaticMRT", EstimatorKind::StaticMrt),
        (
            "PerBranchMRT",
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        ),
    ]
}

fn render_tab_a1(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Appendix Table 1: MRT variants, RMS error ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark, seed {})\n\n",
        p.instrs, p.seed
    ));

    let variants = tab_a1_variants();
    let mut table = Table::new(&["bench", "MRT", "StaticMRT", "PerBranchMRT"]);
    let mut sums = [0.0f64; 3];
    for bench in ALL_BENCHMARKS {
        let mut row = vec![bench.name().to_string()];
        for (i, (_, est)) in variants.iter().enumerate() {
            let rms = set.rms(&CellSpec::accuracy(bench, *est, &p));
            sums[i] += rms;
            row.push(format!("{rms:.4}"));
        }
        table.row_owned(row);
    }
    let mut mean = vec!["mean".to_string()];
    for s in sums {
        mean.push(format!("{:.4}", s / ALL_BENCHMARKS.len() as f64));
    }
    table.row_owned(mean);
    out.push_str(&format!("{}\n", table.render()));
    out.push_str(
        "Paper's claims to verify (Appendix A): the dynamic MRT is the most\n\
         accurate (paper mean 0.0377); Static MRT roughly triples the RMS\n\
         error (0.1038); Per-branch MRT is worst overall because lifetime\n\
         rates ignore recency (0.8895 mean, dominated by vortex).\n\n",
    );

    out.push_str("-- nonstationary stress model (drifting branch behaviour) --\n");
    let mut stress = Table::new(&["estimator", "RMS"]);
    for (name, est) in variants {
        let rms = set.rms(&CellSpec::stress(est, &p));
        stress.row_owned(vec![name.to_string(), format!("{rms:.4}")]);
    }
    out.push_str(&format!("{}\n", stress.render()));
    out.push_str(
        "Expected ordering under drift (the paper's Appendix-A mechanism):\n\
         dynamic MRT < static MRT, per-branch MRT worst — lifetime rates\n\
         average over regimes the branch is no longer in.\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Robustness (corpus sweep)                                          //
// ------------------------------------------------------------------ //

/// Every estimator kind the robustness sweep exercises, in table order.
/// `none` runs too: its cells provide the estimator-independent family
/// profile (mispredict rates, MDC spread).
pub fn robustness_estimators() -> [(&'static str, EstimatorKind); 6] {
    [
        ("PaCo", paco_estimator()),
        (
            "JRS-t3",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        ),
        ("StaticMRT", EstimatorKind::StaticMrt),
        (
            "PerBranchMRT",
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        ),
        (
            "AdaptiveMRT",
            EstimatorKind::AdaptiveMrt(AdaptiveMrtConfig::paper()),
        ),
        ("none", EstimatorKind::None),
    ]
}

/// MDC buckets quoted in the per-family profile (the full 0..16 range is
/// in `fig2`; these are the knees of the curve).
const ROBUSTNESS_MDC_BUCKETS: [usize; 7] = [0, 1, 2, 3, 7, 11, 15];

fn render_robustness(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let estimators = robustness_estimators();
    let mut out = String::new();
    out.push_str("== Robustness: every estimator kind × every corpus family ==\n");
    out.push_str(&format!(
        "   ({} instructions/family/estimator, seed {}; families from paco-corpus,\n\
         \x20   see docs/WORKLOADS.md for the catalog)\n\n",
        p.instrs, p.seed
    ));

    // Summary matrix: probability-producing estimators only (JRS emits
    // counter scores, not probabilities; `none` emits nothing). Select
    // by capability, not display name — an empty-bin diagram would
    // render as a perfect 0.0000 RMS.
    out.push_str("-- accuracy: occurrence-weighted RMS error (lower is better) --\n");
    let prob_estimators: Vec<&(&str, EstimatorKind)> = estimators
        .iter()
        .filter(|(_, est)| {
            matches!(
                est,
                EstimatorKind::Paco(_)
                    | EstimatorKind::StaticMrt
                    | EstimatorKind::PerBranchMrt(_)
                    | EstimatorKind::AdaptiveMrt(_)
            )
        })
        .collect();
    let mut header = vec!["family"];
    header.extend(prob_estimators.iter().map(|(n, _)| *n));
    let mut matrix = Table::new(&header);
    for entry in CORPUS {
        let mut row = vec![entry.name.to_string()];
        for (_, est) in &prob_estimators {
            let cell = CellSpec::corpus(entry.family, *est, entry.seed, &p);
            row.push(format!("{:.4}", set.rms(&cell)));
        }
        matrix.row_owned(row);
    }
    out.push_str(&format!("{}\n", matrix.render()));

    for entry in CORPUS {
        let knobs: Vec<String> = entry
            .family
            .knobs()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!(
            "---- {} (seed {}, hash {:016x}) ----\n",
            entry.name,
            entry.seed,
            entry.family.canon_hash()
        ));
        out.push_str(&format!(
            "     {}\n     knobs: {}\n",
            entry.family.describe(),
            knobs.join(" ")
        ));

        // Estimator-independent family profile, from the `none` cell.
        let none_cell = CellSpec::corpus(entry.family, EstimatorKind::None, entry.seed, &p);
        let t = &set.get(&none_cell).stats.threads[0];
        out.push_str(&format!(
            "     cond mispredict {:.2}%   overall mispredict {:.2}%\n",
            t.cond_mispredict_pct().unwrap_or(0.0),
            t.overall_mispredict_pct().unwrap_or(0.0)
        ));
        let mut header = vec!["mdc bucket".to_string()];
        header.extend(ROBUSTNESS_MDC_BUCKETS.iter().map(|b| b.to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut mdc = Table::new(&header_refs);
        let mut row = vec!["mispredict %".to_string()];
        for b in ROBUSTNESS_MDC_BUCKETS {
            row.push(match t.mdc_bucket_mispredict_pct(b) {
                Some(pct) => format!("{pct:.1}"),
                None => "-".to_string(),
            });
        }
        mdc.row_owned(row);
        out.push_str(&format!("{}\n", mdc.render()));

        // Per-estimator accuracy and coverage. "prob coverage" is the
        // share of confidence events the estimator assigned a calibrated
        // probability to — JRS emits counter scores instead, so its
        // probability coverage is 0 while its score instances are full.
        let mut table = Table::new(&[
            "estimator",
            "RMS",
            "prob inst",
            "score inst",
            "prob coverage %",
        ]);
        for (name, est) in estimators {
            let cell = CellSpec::corpus(entry.family, est, entry.seed, &p);
            let th = &set.get(&cell).stats.threads[0];
            let diagram = ReliabilityDiagram::from_bins(&th.prob_instances);
            let prob_total = diagram.total_instances();
            let score_total: u64 = th.score_instances.iter().map(|b| b.0).sum();
            let events = th.fetched + th.executed;
            table.row_owned(vec![
                name.to_string(),
                if prob_total > 0 {
                    format!("{:.4}", diagram.rms_error())
                } else {
                    "-".to_string()
                },
                prob_total.to_string(),
                score_total.to_string(),
                format!("{:.1}", coverage_pct(prob_total, events)),
            ]);
        }
        out.push_str(&format!("{}\n", table.render()));
    }

    out.push_str(
        "Reading guide: biased_bimodal is the floor (everything should be\n\
         accurate there); mispredict_storm is the adversarial ceiling — no\n\
         estimator can predict it, so the winner is whoever stays *calibrated*\n\
         (low RMS at high mispredict rates). phased_flip separates recency-aware\n\
         designs (dynamic MRT) from lifetime averages (PerBranchMRT), and\n\
         loop_nest separates history-based prediction from per-site bias.\n",
    );
    out
}

// ------------------------------------------------------------------ //
//  Ablations                                                          //
// ------------------------------------------------------------------ //

const ABLATION_PERIODS: [u64; 6] = [25_000, 50_000, 100_000, 200_000, 400_000, 800_000];
const ABLATION_LOG_MODES: [(&str, LogMode); 2] =
    [("Mitchell", LogMode::Mitchell), ("Exact", LogMode::Exact)];

fn ablation_throttle_configs() -> [(&'static str, EstimatorKind, GatingPolicy); 4] {
    [
        (
            "JRS-t3 gate@2",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountGate { gate_count: 2 },
        ),
        (
            "JRS-t3 throttle@2",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountThrottle { start: 2 },
        ),
        (
            "PaCo gate@20%",
            paco_estimator(),
            GatingPolicy::paco_gate(Probability::new(0.20).unwrap()),
        ),
        (
            "PaCo throttle 60%..10%",
            paco_estimator(),
            GatingPolicy::paco_throttle(
                Probability::new(0.60).unwrap(),
                Probability::new(0.10).unwrap(),
            ),
        ),
    ]
}

fn render_ablations(set: &ResultSet<'_>) -> String {
    let p = set.spec.params;
    let mut out = String::new();
    out.push_str("== Ablations ==\n");
    out.push_str(&format!(
        "   ({} instructions/benchmark/config, seed {})\n\n",
        p.instrs, p.seed
    ));

    let mean_rms = |est: EstimatorKind| -> f64 {
        let per_bench: Vec<f64> = ALL_BENCHMARKS
            .iter()
            .map(|&b| set.rms(&CellSpec::accuracy(b, est, &p)))
            .collect();
        mean(&per_bench)
    };

    out.push_str("-- MRT refresh period (mean RMS across benchmarks) --\n");
    let mut t = Table::new(&["period (cycles)", "mean RMS"]);
    for period in ABLATION_PERIODS {
        let est = EstimatorKind::Paco(PacoConfig::paper().with_refresh_period(period));
        t.row_owned(vec![period.to_string(), format!("{:.4}", mean_rms(est))]);
    }
    out.push_str(&format!("{}\n", t.render()));
    out.push_str("Paper claim: accuracy is not very sensitive to this period.\n\n");

    out.push_str("-- Log circuit: Mitchell approximation vs exact --\n");
    let mut t = Table::new(&["log mode", "mean RMS"]);
    for (name, mode) in ABLATION_LOG_MODES {
        let est = EstimatorKind::Paco(PacoConfig::paper().with_log_mode(mode));
        t.row_owned(vec![name.to_string(), format!("{:.4}", mean_rms(est))]);
    }
    out.push_str(&format!("{}\n", t.render()));
    out.push_str("Expected: near-identical — the ratio subtraction cancels most error.\n\n");

    out.push_str("-- Selective throttling vs all-or-nothing gating (twolf) --\n");
    let mut t = Table::new(&["scheme", "perf loss %", "badpath exec red. %"]);
    for (name, est, gating) in ablation_throttle_configs() {
        let base = set.run_point(&CellSpec::gating(Twolf, est, GatingPolicy::None, &p));
        let gated = set.run_point(&CellSpec::gating(Twolf, est, gating, &p));
        let r = gating_tradeoff(base, gated);
        t.row_owned(vec![
            name.to_string(),
            format!("{:.2}", r.perf_loss_pct),
            format!("{:.1}", r.badpath_exec_reduction_pct),
        ]);
    }
    out.push_str(&format!("{}\n", t.render()));
    out.push_str(
        "Expected: throttling trades a bit of badpath reduction for less\nperformance loss; PaCo variants dominate the counter-based ones.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn tiny_params() -> RunParams {
        RunParams {
            instrs: 3_000,
            seed: 1,
            warmup: 1_000,
        }
    }

    #[test]
    fn experiment_names_round_trip() {
        for id in ALL_EXPERIMENTS {
            assert_eq!(ExperimentId::from_name(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::from_name("FIG9"), Some(ExperimentId::Fig9));
        assert_eq!(ExperimentId::from_name("fig99"), None);
    }

    #[test]
    fn every_spec_builds_and_dedupes() {
        let p = tiny_params();
        for id in ALL_EXPERIMENTS {
            let spec = id.spec(p);
            // The service experiments run outside the engine: their
            // grids are intentionally empty and the CLI never builds them.
            if matches!(
                id,
                ExperimentId::ServeThroughput | ExperimentId::ServeScale | ExperimentId::Hotpath
            ) {
                assert!(spec.cells().is_empty());
                continue;
            }
            assert!(!spec.cells().is_empty(), "{} spec is empty", id.name());
            // Dedup holds: no two cells equal.
            for (i, a) in spec.cells().iter().enumerate() {
                for b in &spec.cells()[i + 1..] {
                    assert_ne!(a, b, "{} has duplicate cells", id.name());
                }
            }
        }
    }

    #[test]
    fn fig10_shares_baselines() {
        let p = tiny_params();
        let spec = ExperimentId::Fig10.spec(p);
        // 12 baselines + one cell per benchmark per *distinct* gated
        // configuration. (Nearby PaCo gate percentages can quantize to
        // the same encoded threshold — those are genuinely the same run
        // and must share a cell.)
        let mut configs = fig10_configs();
        configs.dedup();
        assert_eq!(spec.cells().len(), 12 + configs.len() * 12);
        assert!(
            configs.len() >= 39,
            "expected ~40 configs, got {}",
            configs.len()
        );
    }

    #[test]
    fn fig12_shares_singles() {
        let p = tiny_params();
        let spec = ExperimentId::Fig12.spec(p);
        // 11 distinct singles + 16 pairs × 6 policies.
        assert_eq!(spec.cells().len(), 11 + 16 * 6);
    }

    #[test]
    fn fig2_renders_all_benchmarks() {
        let p = tiny_params();
        let spec = ExperimentId::Fig2.spec(p);
        let run = Engine::new().run(&spec);
        let set = ResultSet {
            spec: &spec,
            results: &run.results,
        };
        let text = ExperimentId::Fig2.render(&set);
        assert!(text.starts_with("== Figure 2"));
        for bench in ALL_BENCHMARKS {
            assert!(text.contains(bench.name()), "missing {}", bench.name());
        }
        assert!(text.ends_with('\n'));
    }
}
