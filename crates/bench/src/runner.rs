//! Shared machinery for the experiment binaries.

use paco::PacoConfig;
use paco_analysis::ReliabilityDiagram;
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy, MachineBuilder, MachineStats, SimConfig};
use paco_workloads::BenchmarkId;

/// Default per-run instruction budget; override with `PACO_INSTRS`.
pub fn default_instrs(fallback: u64) -> u64 {
    std::env::var("PACO_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(fallback)
}

/// Default warmup instruction count (fast-forward analogue); override
/// with `PACO_WARMUP`. The warmup must cover at least one MRT refresh
/// period (200k cycles) so PaCo's encodings are live when measurement
/// starts, mirroring the paper's fast-forward methodology.
pub fn default_warmup() -> u64 {
    std::env::var("PACO_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400_000)
}

/// Default experiment seed; override with `PACO_SEED`.
pub fn default_seed() -> u64 {
    std::env::var("PACO_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// Outcome of a single-thread accuracy run.
#[derive(Debug, Clone)]
pub struct AccuracyResult {
    /// Which benchmark ran.
    pub bench: BenchmarkId,
    /// Full machine statistics.
    pub stats: MachineStats,
    /// Reliability diagram built from the run's confidence instances.
    pub diagram: ReliabilityDiagram,
}

impl AccuracyResult {
    /// Occurrence-weighted RMS error of the run's goodpath prediction.
    pub fn rms(&self) -> f64 {
        self.diagram.rms_error()
    }
}

/// Runs `bench` on the paper's 4-wide machine with the given estimator and
/// produces accuracy statistics (paper §4 methodology: every fetch and
/// execute event is a confidence instance, judged by the goodpath oracle).
pub fn accuracy_run(
    bench: BenchmarkId,
    estimator: EstimatorKind,
    instrs: u64,
    seed: u64,
) -> AccuracyResult {
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(seed)), estimator)
        .seed(seed ^ 0xACC0)
        .build();
    machine.run(default_warmup());
    machine.reset_stats();
    let stats = machine.run(instrs);
    let diagram = ReliabilityDiagram::from_bins(&stats.threads[0].prob_instances);
    AccuracyResult {
        bench,
        stats,
        diagram,
    }
}

/// Outcome of one gating configuration relative to an ungated baseline.
#[derive(Debug, Clone, Copy)]
pub struct GatingResult {
    /// Performance loss in percent (negative = speedup).
    pub perf_loss_pct: f64,
    /// Reduction in wrong-path instructions executed, percent.
    pub badpath_exec_reduction_pct: f64,
    /// Reduction in wrong-path instructions fetched, percent.
    pub badpath_fetch_reduction_pct: f64,
}

/// Runs `bench` twice — ungated baseline and gated — and reports the
/// Figure-10 trade-off point.
pub fn gating_run(
    bench: BenchmarkId,
    estimator: EstimatorKind,
    gating: GatingPolicy,
    instrs: u64,
    seed: u64,
) -> GatingResult {
    let run = |policy: GatingPolicy| {
        let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(Box::new(bench.build(seed)), estimator)
            .gating(policy)
            .seed(seed ^ 0x6A7E)
            .build();
        machine.run(default_warmup());
        machine.reset_stats();
        machine.run(instrs)
    };
    let base = run(GatingPolicy::None);
    let gated = run(gating);
    GatingResult {
        perf_loss_pct: paco_analysis::perf_delta_pct(base.ipc(0), gated.ipc(0)),
        badpath_exec_reduction_pct: paco_analysis::badpath_reduction_pct(
            base.total_badpath_executed(),
            gated.total_badpath_executed(),
        ),
        badpath_fetch_reduction_pct: paco_analysis::badpath_reduction_pct(
            base.total_badpath_fetched(),
            gated.total_badpath_fetched(),
        ),
    }
}

/// Standalone IPC of a benchmark on the 8-wide SMT machine (the
/// `SingleIPC` term of HMWIPC).
pub fn single_thread_ipc_smt(bench: BenchmarkId, instrs: u64, seed: u64) -> f64 {
    let mut machine = MachineBuilder::new(SimConfig::paper_smt_8wide().with_threads(1))
        .thread(Box::new(bench.build(seed)), EstimatorKind::None)
        .seed(seed ^ 0x517)
        .build();
    machine.run(default_warmup() / 2);
    machine.reset_stats();
    machine.run(instrs).ipc(0)
}

/// Outcome of one SMT pair under one fetch policy.
#[derive(Debug, Clone, Copy)]
pub struct SmtResult {
    /// Per-thread SMT IPCs.
    pub ipc: [f64; 2],
    /// Harmonic mean of weighted IPCs.
    pub hmwipc: f64,
}

/// Runs a two-thread SMT experiment (paper §5.2). `estimator` configures
/// the per-thread confidence estimator used by the `Confidence` policy.
pub fn smt_run(
    pair: (BenchmarkId, BenchmarkId),
    estimator: EstimatorKind,
    policy: FetchPolicy,
    single_ipc: (f64, f64),
    instrs: u64,
    seed: u64,
) -> SmtResult {
    let mut machine = MachineBuilder::new(SimConfig::paper_smt_8wide())
        .thread(Box::new(pair.0.build(seed)), estimator)
        .thread(Box::new(pair.1.build(seed ^ 0xF00)), estimator)
        .fetch_policy(policy)
        .seed(seed ^ 0x53B)
        .build();
    machine.run(default_warmup() / 2);
    machine.reset_stats();
    let stats = machine.run(instrs);
    let ipc = [stats.ipc(0), stats.ipc(1)];
    SmtResult {
        ipc,
        hmwipc: paco_analysis::hmwipc(&[(single_ipc.0, ipc[0]), (single_ipc.1, ipc[1])]),
    }
}

/// The standard PaCo estimator used across experiments.
pub fn paco_estimator() -> EstimatorKind {
    EstimatorKind::Paco(PacoConfig::paper())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco::ThresholdCountConfig;

    #[test]
    fn accuracy_run_produces_instances() {
        let r = accuracy_run(BenchmarkId::Gzip, paco_estimator(), 20_000, 1);
        assert!(r.diagram.total_instances() > 20_000);
        assert!(r.rms() < 1.0);
        assert!(r.stats.threads[0].retired >= 20_000);
    }

    #[test]
    fn gating_run_reports_tradeoff() {
        let r = gating_run(
            BenchmarkId::Twolf,
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountGate { gate_count: 1 },
            30_000,
            1,
        );
        // Aggressive gating must remove a large share of badpath execution.
        assert!(r.badpath_exec_reduction_pct > 20.0);
    }

    #[test]
    fn smt_run_reports_hmwipc() {
        let s1 = single_thread_ipc_smt(BenchmarkId::Gzip, 20_000, 1);
        let s2 = single_thread_ipc_smt(BenchmarkId::Twolf, 20_000, 1);
        let r = smt_run(
            (BenchmarkId::Gzip, BenchmarkId::Twolf),
            EstimatorKind::None,
            FetchPolicy::ICount,
            (s1, s2),
            20_000,
            1,
        );
        assert!(r.hmwipc > 0.0 && r.hmwipc <= 1.2, "hmwipc {}", r.hmwipc);
    }

    #[test]
    fn env_overrides_parse() {
        assert_eq!(default_instrs(123), 123);
        assert!(default_seed() > 0);
    }
}
