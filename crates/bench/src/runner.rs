//! Shared machinery for the experiment harnesses.
//!
//! The run helpers (`accuracy_run`, `gating_run`, …) are the stable,
//! call-it-from-anywhere API used by the integration suites and benches.
//! Since the engine refactor they are thin adapters over
//! [`engine::execute_cell`](crate::engine::execute_cell) — one execution
//! recipe, shared with the parallel engine — so a helper result and the
//! corresponding engine cell result are always bit-identical.

use paco_analysis::{gating_tradeoff, hmwipc, ReliabilityDiagram};
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy, MachineStats, SimConfig};
use paco_workloads::BenchmarkId;

use crate::engine::execute_cell;
use crate::spec::{CellSpec, RunParams};

/// Reads an optional `u64` environment override, warning (once per call)
/// on values that are present but unparseable instead of silently falling
/// back.
///
/// Each variable warns at most once per process: the defaults helpers run
/// once per experiment, and `paco-bench run all` must not repeat the same
/// complaint eight times (with eight different per-experiment fallbacks).
fn env_u64(var: &'static str, fallback: u64) -> u64 {
    use std::sync::Mutex;
    static WARNED: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let warn_once = |msg: String| {
        let mut warned = WARNED.lock().expect("env warning registry poisoned");
        if !warned.contains(&var) {
            warned.push(var);
            eprintln!("{msg}");
        }
    };
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                warn_once(format!(
                    "paco-bench: warning: ignoring unparseable {var}={raw:?}; using the default"
                ));
                fallback
            }
        },
        Err(std::env::VarError::NotPresent) => fallback,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once(format!(
                "paco-bench: warning: ignoring non-UTF-8 {var}; using the default"
            ));
            fallback
        }
    }
}

/// Default per-run instruction budget; override with `PACO_INSTRS`.
pub fn default_instrs(fallback: u64) -> u64 {
    env_u64("PACO_INSTRS", fallback)
}

/// Default base warmup instruction count (fast-forward analogue);
/// override with `PACO_WARMUP`.
///
/// The default and its machine-width scaling live in
/// [`SimConfig::DEFAULT_WARMUP_INSTRS`] and [`SimConfig::warmup_for`] —
/// one definition shared by specs, helpers and binaries.
pub fn default_warmup() -> u64 {
    env_u64("PACO_WARMUP", SimConfig::DEFAULT_WARMUP_INSTRS)
}

/// Default experiment seed; override with `PACO_SEED`.
pub fn default_seed() -> u64 {
    env_u64("PACO_SEED", 42)
}

/// The env-derived [`RunParams`] for an experiment with the given default
/// instruction budget.
pub fn env_params(default_instrs_value: u64) -> RunParams {
    RunParams {
        instrs: default_instrs(default_instrs_value),
        seed: default_seed(),
        warmup: default_warmup(),
    }
}

fn params_for(instrs: u64, seed: u64) -> RunParams {
    RunParams {
        instrs,
        seed,
        warmup: default_warmup(),
    }
}

/// Outcome of a single-thread accuracy run.
#[derive(Debug, Clone)]
pub struct AccuracyResult {
    /// Which benchmark ran.
    pub bench: BenchmarkId,
    /// Full machine statistics.
    pub stats: MachineStats,
    /// Reliability diagram built from the run's confidence instances.
    pub diagram: ReliabilityDiagram,
}

impl AccuracyResult {
    /// Occurrence-weighted RMS error of the run's goodpath prediction.
    pub fn rms(&self) -> f64 {
        self.diagram.rms_error()
    }
}

/// Runs `bench` on the paper's 4-wide machine with the given estimator and
/// produces accuracy statistics (paper §4 methodology: every fetch and
/// execute event is a confidence instance, judged by the goodpath oracle).
pub fn accuracy_run(
    bench: BenchmarkId,
    estimator: EstimatorKind,
    instrs: u64,
    seed: u64,
) -> AccuracyResult {
    let cell = CellSpec::accuracy(bench, estimator, &params_for(instrs, seed));
    let result = execute_cell(&cell);
    let diagram = ReliabilityDiagram::from_bins(&result.stats.threads[0].prob_instances);
    AccuracyResult {
        bench,
        stats: result.stats,
        diagram,
    }
}

/// Outcome of one gating configuration relative to an ungated baseline.
#[derive(Debug, Clone, Copy)]
pub struct GatingResult {
    /// Performance loss in percent (negative = speedup).
    pub perf_loss_pct: f64,
    /// Reduction in wrong-path instructions executed, percent.
    pub badpath_exec_reduction_pct: f64,
    /// Reduction in wrong-path instructions fetched, percent.
    pub badpath_fetch_reduction_pct: f64,
}

/// Runs `bench` twice — ungated baseline and gated — and reports the
/// Figure-10 trade-off point.
pub fn gating_run(
    bench: BenchmarkId,
    estimator: EstimatorKind,
    gating: GatingPolicy,
    instrs: u64,
    seed: u64,
) -> GatingResult {
    let p = params_for(instrs, seed);
    let point = |policy: GatingPolicy| {
        let stats = execute_cell(&CellSpec::gating(bench, estimator, policy, &p)).stats;
        paco_analysis::RunPoint {
            ipc: stats.ipc(0),
            badpath_executed: stats.total_badpath_executed(),
            badpath_fetched: stats.total_badpath_fetched(),
        }
    };
    let t = gating_tradeoff(point(GatingPolicy::None), point(gating));
    GatingResult {
        perf_loss_pct: t.perf_loss_pct,
        badpath_exec_reduction_pct: t.badpath_exec_reduction_pct,
        badpath_fetch_reduction_pct: t.badpath_fetch_reduction_pct,
    }
}

/// Standalone IPC of a benchmark on the 8-wide SMT machine (the
/// `SingleIPC` term of HMWIPC).
pub fn single_thread_ipc_smt(bench: BenchmarkId, instrs: u64, seed: u64) -> f64 {
    let cell = CellSpec::smt_single(bench, &params_for(instrs, seed));
    execute_cell(&cell).stats.ipc(0)
}

/// Outcome of one SMT pair under one fetch policy.
#[derive(Debug, Clone, Copy)]
pub struct SmtResult {
    /// Per-thread SMT IPCs.
    pub ipc: [f64; 2],
    /// Harmonic mean of weighted IPCs.
    pub hmwipc: f64,
}

/// Runs a two-thread SMT experiment (paper §5.2). `estimator` configures
/// the per-thread confidence estimator used by the `Confidence` policy.
pub fn smt_run(
    pair: (BenchmarkId, BenchmarkId),
    estimator: EstimatorKind,
    policy: FetchPolicy,
    single_ipc: (f64, f64),
    instrs: u64,
    seed: u64,
) -> SmtResult {
    let cell = CellSpec::smt_pair(pair, estimator, policy, &params_for(instrs, seed));
    let stats = execute_cell(&cell).stats;
    let ipc = [stats.ipc(0), stats.ipc(1)];
    SmtResult {
        ipc,
        hmwipc: hmwipc(&[(single_ipc.0, ipc[0]), (single_ipc.1, ipc[1])]),
    }
}

/// The standard PaCo estimator used across experiments.
pub fn paco_estimator() -> EstimatorKind {
    EstimatorKind::Paco(paco::PacoConfig::paper())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco::ThresholdCountConfig;

    #[test]
    fn accuracy_run_produces_instances() {
        let r = accuracy_run(BenchmarkId::Gzip, paco_estimator(), 20_000, 1);
        assert!(r.diagram.total_instances() > 20_000);
        assert!(r.rms() < 1.0);
        assert!(r.stats.threads[0].retired >= 20_000);
    }

    #[test]
    fn gating_run_reports_tradeoff() {
        let r = gating_run(
            BenchmarkId::Twolf,
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountGate { gate_count: 1 },
            30_000,
            1,
        );
        // Aggressive gating must remove a large share of badpath execution.
        assert!(r.badpath_exec_reduction_pct > 20.0);
    }

    #[test]
    fn smt_run_reports_hmwipc() {
        let s1 = single_thread_ipc_smt(BenchmarkId::Gzip, 20_000, 1);
        let s2 = single_thread_ipc_smt(BenchmarkId::Twolf, 20_000, 1);
        let r = smt_run(
            (BenchmarkId::Gzip, BenchmarkId::Twolf),
            EstimatorKind::None,
            FetchPolicy::ICount,
            (s1, s2),
            20_000,
            1,
        );
        assert!(r.hmwipc > 0.0 && r.hmwipc <= 1.2, "hmwipc {}", r.hmwipc);
    }

    #[test]
    fn env_overrides_parse() {
        assert_eq!(default_instrs(123), 123);
        assert!(default_seed() > 0);
        assert_eq!(default_warmup(), SimConfig::DEFAULT_WARMUP_INSTRS);
    }
}
