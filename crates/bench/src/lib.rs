//! Experiment harnesses reproducing the PaCo paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artefact:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig2` | Fig. 2 — per-MDC-bucket mispredict rates |
//! | `fig3` | Fig. 3 — goodpath probability at counter = 5 |
//! | `tab7` | Fig. 7 (table) — RMS error + mispredict rates |
//! | `fig9` | Figs. 8–9 — reliability diagrams |
//! | `fig10` | Fig. 10 — pipeline gating trade-off curves |
//! | `fig12` | Fig. 12 — SMT fetch prioritization (HMWIPC) |
//! | `tab_a1` | Appendix Table 1 — MRT variants ablation |
//! | `ablations` | refresh-period / log-mode / throttling ablations |
//!
//! Run lengths default to values that complete in minutes; set
//! `PACO_INSTRS` (instructions per run) and `PACO_SEED` to override.

#![warn(missing_docs)]

pub mod runner;

pub use runner::{
    accuracy_run, default_instrs, default_seed, default_warmup, gating_run, single_thread_ipc_smt,
    smt_run, AccuracyResult, GatingResult, SmtResult,
};
