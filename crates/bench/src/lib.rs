//! The experiment engine and harnesses reproducing the PaCo paper's
//! tables and figures.
//!
//! # Architecture
//!
//! | layer | module | role |
//! |---|---|---|
//! | spec | [`spec`] | declarative cell grids with stable content hashes |
//! | execution | [`engine`] | sharded parallel runner, bit-identical to sequential |
//! | cache | [`cache`] | content-addressed on-disk result store |
//! | presentation | [`experiments`], [`cli`] | named experiments, rendering, `paco-bench` CLI |
//!
//! Every paper artifact is a *named experiment* — a declarative
//! [`ExperimentSpec`](spec::ExperimentSpec) plus a render function — run
//! through one engine:
//!
//! ```sh
//! paco-bench list
//! paco-bench run fig9 --jobs 8
//! paco-bench run all
//! ```
//!
//! | experiment | paper artifact |
//! |---|---|
//! | `fig2` | Fig. 2 — per-MDC-bucket mispredict rates |
//! | `fig3` | Fig. 3 — goodpath probability at counter = 5 |
//! | `tab7` | Fig. 7 (table) — RMS error + mispredict rates |
//! | `fig9` | Figs. 8–9 — reliability diagrams |
//! | `fig10` | Fig. 10 — pipeline gating trade-off curves |
//! | `fig12` | Fig. 12 — SMT fetch prioritization (HMWIPC) |
//! | `tab_a1` | Appendix Table 1 — MRT variants ablation |
//! | `ablations` | refresh-period / log-mode / throttling ablations |
//!
//! The per-figure binaries (`fig2` … `ablations`) are thin wrappers over
//! the same CLI and accept the same flags. Run lengths default to values
//! that complete in minutes; set `PACO_INSTRS` (instructions per run) and
//! `PACO_SEED` to override.

#![warn(missing_docs)]

pub mod cache;
pub mod cli;
pub mod engine;
pub mod experiments;
pub mod hotpath;
pub mod json;
pub mod runner;
pub mod serve_bench;
pub mod serve_scale;
pub mod spec;

pub use runner::{
    accuracy_run, default_instrs, default_seed, default_warmup, gating_run, single_thread_ipc_smt,
    smt_run, AccuracyResult, GatingResult, SmtResult,
};
