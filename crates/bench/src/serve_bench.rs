//! The `serve_throughput` experiment: measure the streaming confidence
//! service end to end on a loopback socket.
//!
//! Unlike the simulator experiments this measures *wall-clock service
//! behavior* — throughput and tail latency of `paco-served` under
//! `paco-load`-style traffic — so it bypasses the engine and the result
//! cache entirely (caching a timing measurement would be a lie) and runs
//! the server in-process on an ephemeral port. The parity check stays
//! on: the numbers only count if the predictions are byte-identical to
//! the offline pipeline.

use paco::PacoConfig;
use paco_serve::{run_load, LoadOptions, LoadReport, RunningServer};
use paco_sim::{EstimatorKind, OnlineConfig};
use paco_types::DynInstr;
use paco_workloads::{BenchmarkId, Workload};

use crate::runner::{default_instrs, default_seed};

/// Default instruction-stream length the event trace is extracted from
/// (`PACO_INSTRS` overrides).
pub const DEFAULT_INSTRS: u64 = 400_000;

/// Concurrent load sessions.
const THREADS: usize = 4;

/// Events per EVENTS frame.
const BATCH: usize = 512;

/// Runs the experiment at the env-configured scale (`PACO_INSTRS` /
/// `PACO_SEED`); returns the report or a human-readable error.
pub fn run_serve_throughput() -> Result<LoadReport, String> {
    run_at(default_instrs(DEFAULT_INSTRS), default_seed())
}

/// Runs the experiment at an explicit scale (tests use this directly so
/// they never mutate process environment).
pub fn run_at(instrs: u64, seed: u64) -> Result<LoadReport, String> {
    // The event stream a recorded gzip trace would replay (generated
    // in-memory: a trace file round-trip is bit-identical by the
    // paco-trace suite, and the bench must not depend on scratch files).
    let mut workload = BenchmarkId::Gzip.build(seed);
    let events: Vec<DynInstr> = (0..instrs)
        .map(|_| workload.next_instr())
        .filter(|i| i.class.is_control())
        .collect();
    if events.is_empty() {
        return Err("no control events generated".into());
    }

    let server = RunningServer::bind("127.0.0.1:0", 8)
        .map_err(|e| format!("cannot bind loopback server: {e}"))?;
    let options = LoadOptions {
        config: OnlineConfig::paper(EstimatorKind::Paco(PacoConfig::paper())),
        threads: THREADS,
        batch: BATCH,
        events_per_thread: None,
        target_rate: None,
        parity_check: true,
        watch: false,
        family: None,
        exact_latency_cap: 65_536,
    };
    let report = run_load(server.addr(), &events, &options).map_err(|e| e.to_string())?;
    server.stop();
    if report.parity_ok == Some(false) {
        return Err("parity failure: online predictions diverged from the offline pipeline".into());
    }
    Ok(report)
}

/// Renders the experiment artifact (text mode).
pub fn render_text(report: &LoadReport) -> String {
    let mut out = String::new();
    out.push_str("== serve_throughput: streaming confidence service on loopback ==\n");
    out.push_str(&format!(
        "   ({} sessions x {} events, batch {}, PaCo paper config)\n\n",
        report.sessions.len(),
        report.sessions.first().map(|s| s.events).unwrap_or(0),
        BATCH
    ));
    out.push_str(&report.render_text());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_throughput_runs_and_holds_parity() {
        // Keep it small: this spins a real server + 4 clients.
        let report = run_at(30_000, 42).expect("experiment runs");
        assert_eq!(report.parity_ok, Some(true));
        assert!(report.events > 0);
        assert!(report.events_per_sec > 0.0);
        let text = render_text(&report);
        assert!(text.contains("serve_throughput"));
        assert!(text.contains("parity               ok"));
        let json = report.render_json();
        assert!(json.contains("\"parity\":true"));
        assert!(json.contains("\"p99\":"));
    }
}
