//! Deterministic JSON rendering of engine results.
//!
//! Hand-rolled on purpose: the workspace has no serde, and the engine's
//! determinism guarantee ("`--jobs 8` output is byte-identical to
//! `--jobs 1`") is easiest to audit when the serializer is a page of
//! code with a fixed key order and integer-only values (every statistic
//! the simulator produces is a counter; derived floats are left to
//! consumers).

use crate::engine::{CellResult, EngineRun};
use crate::spec::{ExperimentSpec, SPEC_FORMAT_VERSION};

/// Renders an engine run as a compact JSON document.
///
/// Key order, array order and number formatting are all fully determined
/// by the spec and results, so equal results render to equal bytes.
pub fn run_json(spec: &ExperimentSpec, run: &EngineRun) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"experiment\":");
    push_str_lit(&mut out, &spec.name);
    out.push_str(&format!(
        ",\"spec_version\":{SPEC_FORMAT_VERSION},\"spec_hash\":\"{:016x}\"",
        spec.content_hash()
    ));
    out.push_str(&format!(
        ",\"params\":{{\"instrs\":{},\"seed\":{},\"warmup\":{}}}",
        spec.params.instrs, spec.params.seed, spec.params.warmup
    ));
    out.push_str(",\"cells\":[");
    for (i, (cell, result)) in spec.cells().iter().zip(&run.results).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"hash\":\"{:016x}\"", cell.content_hash()));
        out.push_str(",\"label\":");
        push_str_lit(&mut out, &cell.kind.label());
        out.push_str(&format!(
            ",\"instrs\":{},\"warmup\":{},\"seed\":{},\"result\":",
            cell.instrs, cell.warmup, cell.seed
        ));
        push_result(&mut out, result);
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn push_result(out: &mut String, result: &CellResult) {
    out.push_str(&format!(
        "{{\"cycles\":{},\"threads\":[",
        result.stats.cycles
    ));
    for (i, t) in result.stats.threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"retired\":{},\"fetched\":{},\"fetched_badpath\":{},\"executed\":{},\
             \"executed_badpath\":{},\"cond_retired\":{},\"cond_mispredicted\":{},\
             \"control_retired\":{},\"control_mispredicted\":{},\"gated_cycles\":{}",
            t.retired,
            t.fetched,
            t.fetched_badpath,
            t.executed,
            t.executed_badpath,
            t.cond_retired,
            t.cond_mispredicted,
            t.control_retired,
            t.control_mispredicted,
            t.gated_cycles
        ));
        out.push_str(",\"mdc_retired\":");
        push_u64s(out, &t.mdc_retired);
        out.push_str(",\"mdc_mispredicted\":");
        push_u64s(out, &t.mdc_mispredicted);
        out.push_str(",\"prob_instances\":");
        push_bins(out, &t.prob_instances);
        out.push_str(",\"score_instances\":");
        push_bins(out, &t.score_instances);
        out.push('}');
    }
    out.push_str("],\"phases\":[");
    for (i, phase) in result.phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_bins(out, phase);
    }
    out.push_str("]}");
}

fn push_u64s(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_bins(out: &mut String, bins: &[(u64, u64)]) {
    out.push('[');
    for (i, (n, good)) in bins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{n},{good}]"));
    }
    out.push(']');
}

fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::spec::{CellSpec, RunParams};
    use paco_sim::EstimatorKind;
    use paco_workloads::BenchmarkId;

    #[test]
    fn renders_valid_looking_deterministic_json() {
        let p = RunParams {
            instrs: 2_000,
            seed: 3,
            warmup: 500,
        };
        let mut spec = ExperimentSpec::new("unit", p);
        spec.push(CellSpec::accuracy(
            BenchmarkId::Gzip,
            EstimatorKind::None,
            &p,
        ));
        let run = Engine::new().jobs(1).run(&spec);
        let a = run_json(&spec, &run);
        let b = run_json(&spec, &Engine::new().jobs(1).run(&spec));
        assert_eq!(a, b);
        assert!(a.starts_with("{\"experiment\":\"unit\""));
        assert!(a.contains("\"cells\":[{"));
        assert!(a.ends_with("]}"));
        // Balanced braces/brackets (cheap well-formedness check; no
        // strings in this output contain structural characters).
        let opens = a.matches('{').count() + a.matches('[').count();
        let closes = a.matches('}').count() + a.matches(']').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
