//! Figure 10: pipeline gating — performance loss vs reduction in badpath
//! instructions executed, averaged across benchmarks.
//!
//! Sweeps (a) the conventional threshold-and-count predictor at JRS
//! thresholds {3, 7, 11, 15} with gate-counts 10 down to 1, and (b) PaCo
//! with gating probabilities from 2% to 90%. Each point is the mean over
//! all modeled benchmarks of (perf loss %, badpath-executed reduction %).
//!
//! Ungated baselines are computed once per benchmark (estimators are
//! observers: without gating they cannot perturb timing — an invariant the
//! integration suite checks).

use paco::{PacoConfig, ThresholdCountConfig};
use paco_analysis::{badpath_reduction_pct, perf_delta_pct, Table};
use paco_bench::{default_instrs, default_seed, default_warmup};
use paco_sim::{EstimatorKind, GatingPolicy, MachineBuilder, MachineStats, SimConfig};
use paco_types::Probability;
use paco_workloads::{BenchmarkId, ALL_BENCHMARKS};

fn run_one(
    bench: BenchmarkId,
    estimator: EstimatorKind,
    gating: GatingPolicy,
    instrs: u64,
    seed: u64,
) -> MachineStats {
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(seed)), estimator)
        .gating(gating)
        .seed(seed ^ 0x6A7E)
        .build();
    machine.run(default_warmup());
    machine.reset_stats();
    machine.run(instrs)
}

fn main() {
    let instrs = default_instrs(400_000);
    let seed = default_seed();
    println!("== Figure 10: pipeline gating trade-off ==");
    println!(
        "   ({} instructions/benchmark/config, seed {}; mean over {} benchmarks)\n",
        instrs,
        seed,
        ALL_BENCHMARKS.len()
    );

    // Ungated baselines, one per benchmark.
    let baselines: Vec<MachineStats> = ALL_BENCHMARKS
        .iter()
        .map(|&b| run_one(b, EstimatorKind::None, GatingPolicy::None, instrs, seed))
        .collect();

    let mean_point = |estimator: EstimatorKind, gating: GatingPolicy| {
        let mut loss = 0.0;
        let mut exec_red = 0.0;
        let mut fetch_red = 0.0;
        for (i, &bench) in ALL_BENCHMARKS.iter().enumerate() {
            let gated = run_one(bench, estimator, gating, instrs, seed);
            let base = &baselines[i];
            loss += perf_delta_pct(base.ipc(0), gated.ipc(0));
            exec_red += badpath_reduction_pct(
                base.total_badpath_executed(),
                gated.total_badpath_executed(),
            );
            fetch_red +=
                badpath_reduction_pct(base.total_badpath_fetched(), gated.total_badpath_fetched());
        }
        let n = ALL_BENCHMARKS.len() as f64;
        (loss / n, exec_red / n, fetch_red / n)
    };

    let mut table = Table::new(&[
        "predictor",
        "config",
        "perf loss %",
        "badpath exec red. %",
        "badpath fetch red. %",
    ]);

    for threshold in [3u8, 7, 11, 15] {
        let est = EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(threshold));
        for gate_count in [10u64, 8, 6, 4, 3, 2, 1] {
            let (loss, exec, fetch) = mean_point(est, GatingPolicy::CountGate { gate_count });
            table.row_owned(vec![
                format!("JRS-t{threshold}"),
                format!("gate-count {gate_count}"),
                format!("{loss:.2}"),
                format!("{exec:.1}"),
                format!("{fetch:.1}"),
            ]);
        }
    }

    let est = EstimatorKind::Paco(PacoConfig::paper());
    for pct in [2u32, 6, 10, 14, 20, 26, 34, 42, 50, 62, 74, 90] {
        let gating = GatingPolicy::paco_gate(Probability::new(pct as f64 / 100.0).unwrap());
        let (loss, exec, fetch) = mean_point(est, gating);
        table.row_owned(vec![
            "PaCo".to_string(),
            format!("gate below {pct}%"),
            format!("{loss:.2}"),
            format!("{exec:.1}"),
            format!("{fetch:.1}"),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Paper's claims to verify: PaCo at a ~20% gating probability removes\n\
         ~32% of badpath instructions executed at ~0% performance loss (badpath\n\
         fetch reduction even higher, ~70%), while the best counter-based\n\
         predictor (JRS-t3) only reaches ~7% at comparable loss; conservative\n\
         PaCo gating can even *improve* performance via reduced cache/BTB\n\
         pollution."
    );
}
