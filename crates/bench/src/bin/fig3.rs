//! Figure 3: goodpath probability when 5 low-confidence branches are
//! outstanding — (a) across benchmarks, (b) across phases of the same
//! benchmark.
//!
//! Demonstrates the paper's core motivation: the same low-confidence
//! branch count corresponds to very different goodpath likelihoods, so a
//! counter is not a probability.

use paco::ThresholdCountConfig;
use paco_analysis::Table;
use paco_bench::{accuracy_run, default_instrs, default_seed};
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig, SCORE_BINS};
use paco_workloads::BenchmarkId;

const COUNTER: usize = 5;

fn estimator() -> EstimatorKind {
    EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default())
}

fn main() {
    let instrs = default_instrs(600_000);
    let seed = default_seed();

    println!("== Figure 3(a): observed goodpath probability at counter = {COUNTER} ==");
    println!(
        "   (JRS threshold 3, {} instructions/benchmark, seed {})\n",
        instrs, seed
    );
    let mut t = Table::new(&["bench", "P(goodpath | count=5)", "instances"]);
    for bench in [
        BenchmarkId::Crafty,
        BenchmarkId::Gzip,
        BenchmarkId::Bzip2,
        BenchmarkId::VprRoute,
    ] {
        let r = accuracy_run(bench, estimator(), instrs, seed);
        let (n, good) = r.stats.threads[0].score_instances[COUNTER];
        t.row_owned(vec![
            bench.name().to_string(),
            if n > 0 {
                format!("{:.3}", good as f64 / n as f64)
            } else {
                "-".to_string()
            },
            n.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("== Figure 3(b): same, across phases of mcf and gcc ==\n");
    let mut t = Table::new(&["phase", "P(goodpath | count=5)", "instances"]);
    // mcf: two phases of 400k instructions each.
    let mcf = phase_bins(
        BenchmarkId::Mcf,
        400_000,
        2,
        1_600_000.min(instrs * 3),
        seed,
    );
    for (i, bins) in mcf.iter().enumerate() {
        let (n, good) = bins[COUNTER];
        t.row_owned(vec![
            format!("mcf_phase{}", i + 1),
            if n > 0 {
                format!("{:.3}", good as f64 / n as f64)
            } else {
                "-".to_string()
            },
            n.to_string(),
        ]);
    }
    // gcc: four short phases of 25k instructions; report the first two.
    let gcc = phase_bins(BenchmarkId::Gcc, 25_000, 4, instrs, seed);
    for (i, bins) in gcc.iter().take(2).enumerate() {
        let (n, good) = bins[COUNTER];
        t.row_owned(vec![
            format!("gcc_phase{}", i + 1),
            if n > 0 {
                format!("{:.3}", good as f64 / n as f64)
            } else {
                "-".to_string()
            },
            n.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper's qualitative claim: the observed probability at a fixed counter\n\
         value differs strongly across benchmarks (10%..40% in the paper) and\n\
         across phases of one benchmark — a fixed gate-count cannot be right\n\
         everywhere."
    );
}

/// Accumulates score-instance bins separately per phase window. Windows of
/// `window` retired instructions cycle through `nphases` phases.
fn phase_bins(
    bench: BenchmarkId,
    window: u64,
    nphases: usize,
    total: u64,
    seed: u64,
) -> Vec<Vec<(u64, u64)>> {
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(seed)), estimator())
        .seed(seed ^ 0xF1640)
        .build();
    let mut per_phase = vec![vec![(0u64, 0u64); SCORE_BINS]; nphases];
    let mut prev = vec![(0u64, 0u64); SCORE_BINS];
    let mut boundary = window;
    let mut phase = 0usize;
    while boundary <= total {
        let stats = machine.run(boundary);
        let cur = &stats.threads[0].score_instances;
        for (i, acc) in per_phase[phase].iter_mut().enumerate() {
            acc.0 += cur[i].0 - prev[i].0;
            acc.1 += cur[i].1 - prev[i].1;
        }
        prev = cur.clone();
        boundary += window;
        phase = (phase + 1) % nphases;
    }
    per_phase
}
