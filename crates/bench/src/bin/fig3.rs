//! Figure 3: goodpath probability at counter = 5 — thin wrapper over the `paco-bench` experiment engine
//! (`paco-bench run fig3`). Accepts `--jobs N`, `--no-cache` and
//! `--json`.

use paco_bench::experiments::ExperimentId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(paco_bench::cli::main_single(ExperimentId::Fig3, &args));
}
