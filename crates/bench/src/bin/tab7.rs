//! Figure 7 (table): RMS error between predicted and actual goodpath
//! probabilities, plus overall and conditional mispredict rates, for all
//! twelve modeled SPEC2000int benchmarks.

use paco::PacoConfig;
use paco_analysis::{ReliabilityDiagram, Table};
use paco_bench::{accuracy_run, default_instrs, default_seed};
use paco_sim::EstimatorKind;
use paco_workloads::ALL_BENCHMARKS;

fn main() {
    let instrs = default_instrs(1_000_000);
    let seed = default_seed();
    println!("== Figure 7 (table): PaCo RMS error and mispredict rates ==");
    println!("   ({} instructions/benchmark, seed {})\n", instrs, seed);

    let mut table = Table::new(&[
        "bench",
        "PaCo RMS",
        "paper RMS",
        "overall MR%",
        "paper",
        "cond MR%",
        "paper",
    ]);
    let mut all_bins: Vec<Vec<(u64, u64)>> = Vec::new();
    let mut rms_sum = 0.0;

    for bench in ALL_BENCHMARKS {
        let r = accuracy_run(
            bench,
            EstimatorKind::Paco(PacoConfig::paper()),
            instrs,
            seed,
        );
        let t = &r.stats.threads[0];
        let spec = bench.spec();
        let rms = r.rms();
        rms_sum += rms;
        all_bins.push(t.prob_instances.clone());
        table.row_owned(vec![
            bench.name().to_string(),
            format!("{rms:.4}"),
            format!("{:.4}", paper_rms(bench.name())),
            format!("{:.2}", t.overall_mispredict_pct().unwrap_or(0.0)),
            format!("{:.2}", spec.paper_overall_mispredict_pct),
            format!("{:.2}", t.cond_mispredict_pct().unwrap_or(0.0)),
            format!("{:.2}", spec.paper_cond_mispredict_pct),
        ]);
    }
    let cumulative = ReliabilityDiagram::from_many(&all_bins);
    table.row_owned(vec![
        "mean/cum".to_string(),
        format!("{:.4}", rms_sum / ALL_BENCHMARKS.len() as f64),
        "0.0377".to_string(),
        String::new(),
        "6.22".to_string(),
        String::new(),
        "6.32".to_string(),
    ]);
    println!("{}", table.render());
    println!(
        "cumulative (all benchmarks pooled) RMS: {:.4}",
        cumulative.rms_error()
    );
}

/// The paper's per-benchmark PaCo RMS errors (Figure 7).
fn paper_rms(name: &str) -> f64 {
    match name {
        "bzip2" => 0.0545,
        "crafty" => 0.0528,
        "gcc" => 0.0874,
        "gap" => 0.0830,
        "gzip" => 0.0640,
        "mcf" => 0.0447,
        "parser" => 0.0415,
        "perlbmk" => 0.0613,
        "twolf" => 0.0175,
        "vortex" => 0.0332,
        "vprPlace" => 0.0244,
        "vprRoute" => 0.0322,
        _ => f64::NAN,
    }
}
