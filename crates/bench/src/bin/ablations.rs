//! Ablation experiments for design choices called out in DESIGN.md:
//!
//! 1. **MRT refresh period** — the paper (§3.2, footnote 5) claims PaCo's
//!    accuracy is not very sensitive to the 200k-cycle refresh period.
//! 2. **Mitchell vs exact log** — cost of the hardware log approximation.
//! 3. **Selective throttling vs all-or-nothing gating** (Aragón et al.,
//!    discussed in §6 Related Work).

use paco::{LogMode, PacoConfig, ThresholdCountConfig};
use paco_analysis::Table;
use paco_bench::{accuracy_run, default_instrs, default_seed, gating_run};
use paco_sim::{EstimatorKind, GatingPolicy};
use paco_types::Probability;
use paco_workloads::{BenchmarkId, ALL_BENCHMARKS};

fn mean_rms(est: EstimatorKind, instrs: u64, seed: u64) -> f64 {
    ALL_BENCHMARKS
        .iter()
        .map(|&b| accuracy_run(b, est, instrs, seed).rms())
        .sum::<f64>()
        / ALL_BENCHMARKS.len() as f64
}

fn main() {
    let instrs = default_instrs(400_000);
    let seed = default_seed();
    println!("== Ablations ==");
    println!(
        "   ({} instructions/benchmark/config, seed {})\n",
        instrs, seed
    );

    // 1. Refresh period sweep.
    println!("-- MRT refresh period (mean RMS across benchmarks) --");
    let mut t = Table::new(&["period (cycles)", "mean RMS"]);
    for period in [25_000u64, 50_000, 100_000, 200_000, 400_000, 800_000] {
        let est = EstimatorKind::Paco(PacoConfig::paper().with_refresh_period(period));
        t.row_owned(vec![
            period.to_string(),
            format!("{:.4}", mean_rms(est, instrs, seed)),
        ]);
    }
    println!("{}", t.render());
    println!("Paper claim: accuracy is not very sensitive to this period.\n");

    // 2. Mitchell vs exact log.
    println!("-- Log circuit: Mitchell approximation vs exact --");
    let mut t = Table::new(&["log mode", "mean RMS"]);
    for (name, mode) in [("Mitchell", LogMode::Mitchell), ("Exact", LogMode::Exact)] {
        let est = EstimatorKind::Paco(PacoConfig::paper().with_log_mode(mode));
        t.row_owned(vec![
            name.to_string(),
            format!("{:.4}", mean_rms(est, instrs, seed)),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: near-identical — the ratio subtraction cancels most error.\n");

    // 3. Throttling vs gating, on a mispredict-heavy benchmark.
    println!("-- Selective throttling vs all-or-nothing gating (twolf) --");
    let mut t = Table::new(&["scheme", "perf loss %", "badpath exec red. %"]);
    let bench = BenchmarkId::Twolf;
    let configs: [(&str, EstimatorKind, GatingPolicy); 4] = [
        (
            "JRS-t3 gate@2",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountGate { gate_count: 2 },
        ),
        (
            "JRS-t3 throttle@2",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            GatingPolicy::CountThrottle { start: 2 },
        ),
        (
            "PaCo gate@20%",
            EstimatorKind::Paco(PacoConfig::paper()),
            GatingPolicy::paco_gate(Probability::new(0.20).unwrap()),
        ),
        (
            "PaCo throttle 60%..10%",
            EstimatorKind::Paco(PacoConfig::paper()),
            GatingPolicy::paco_throttle(
                Probability::new(0.60).unwrap(),
                Probability::new(0.10).unwrap(),
            ),
        ),
    ];
    for (name, est, gating) in configs {
        let r = gating_run(bench, est, gating, instrs, seed);
        t.row_owned(vec![
            name.to_string(),
            format!("{:.2}", r.perf_loss_pct),
            format!("{:.1}", r.badpath_exec_reduction_pct),
        ]);
    }
    println!("{}", t.render());
    println!("Expected: throttling trades a bit of badpath reduction for less\nperformance loss; PaCo variants dominate the counter-based ones.");
}
