//! Figure 2: misprediction rates of branches with different MDC values.
//!
//! The paper's figure shows, for several benchmarks, the mispredict rate
//! of dynamic conditional branches bucketed by the MDC value they carried
//! at fetch — demonstrating that "low-confidence" branches below any fixed
//! threshold have wildly different real mispredict rates (the coarseness
//! argument of §2.3).

use paco_analysis::Table;
use paco_bench::{accuracy_run, default_instrs, default_seed};
use paco_sim::EstimatorKind;
use paco_workloads::ALL_BENCHMARKS;

fn main() {
    let instrs = default_instrs(500_000);
    let seed = default_seed();
    println!("== Figure 2: per-MDC-bucket mispredict rates (%) ==");
    println!("   ({} instructions/benchmark, seed {})\n", instrs, seed);

    let mut header = vec!["bench".to_string()];
    header.extend((0..16).map(|i| format!("mdc{i}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    for bench in ALL_BENCHMARKS {
        let r = accuracy_run(bench, EstimatorKind::None, instrs, seed);
        let t = &r.stats.threads[0];
        let mut row = vec![bench.name().to_string()];
        for b in 0..16 {
            row.push(match t.mdc_bucket_mispredict_pct(b) {
                Some(pct) => format!("{pct:.1}"),
                None => "-".to_string(),
            });
        }
        table.row_owned(row);
    }
    println!("{}", table.render());

    println!(
        "Paper's qualitative claim to verify: rates fall steeply with MDC value;\n\
         MDC 0 branches mispredict tens of percent while MDC 15 branches are\n\
         nearly perfect, and the same MDC value maps to different rates across\n\
         benchmarks (e.g. gcc vs vortex at MDC 2)."
    );
}
