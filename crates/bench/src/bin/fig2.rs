//! Figure 2: per-MDC-bucket mispredict rates — thin wrapper over the `paco-bench` experiment engine
//! (`paco-bench run fig2`). Accepts `--jobs N`, `--no-cache` and
//! `--json`.

use paco_bench::experiments::ExperimentId;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(paco_bench::cli::main_single(ExperimentId::Fig2, &args));
}
