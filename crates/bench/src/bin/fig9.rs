//! Figures 8–9: reliability diagrams for representative benchmarks plus
//! the cumulative all-benchmarks diagram.
//!
//! Each diagram plots predicted goodpath probability (x) against observed
//! goodpath frequency (y); a perfectly calibrated predictor follows the
//! diagonal.

use paco::PacoConfig;
use paco_analysis::{render_diagram_ascii, ReliabilityDiagram, Table};
use paco_bench::{accuracy_run, default_instrs, default_seed};
use paco_sim::EstimatorKind;
use paco_workloads::{BenchmarkId, ALL_BENCHMARKS};

fn main() {
    let instrs = default_instrs(800_000);
    let seed = default_seed();
    println!("== Figures 8-9: reliability diagrams ==");
    println!("   ({} instructions/benchmark, seed {})\n", instrs, seed);

    let shown = [
        BenchmarkId::Twolf,
        BenchmarkId::VprRoute,
        BenchmarkId::Crafty,
        BenchmarkId::Gcc,
        BenchmarkId::Perlbmk,
        BenchmarkId::Parser,
    ];

    let mut all_bins = Vec::new();
    let mut rms_table = Table::new(&["bench", "RMS", "instances"]);

    for bench in ALL_BENCHMARKS {
        let r = accuracy_run(
            bench,
            EstimatorKind::Paco(PacoConfig::paper()),
            instrs,
            seed,
        );
        all_bins.push(r.stats.threads[0].prob_instances.clone());
        rms_table.row_owned(vec![
            bench.name().to_string(),
            format!("{:.4}", r.rms()),
            r.diagram.total_instances().to_string(),
        ]);
        if shown.contains(&bench) {
            println!("---- {} ----", bench.name());
            println!("{}", render_diagram_ascii(&r.diagram, 60, 22));
        }
    }

    let cumulative = ReliabilityDiagram::from_bins(&all_bins.iter().fold(
        vec![(0u64, 0u64); 101],
        |mut acc, bins| {
            for (a, b) in acc.iter_mut().zip(bins) {
                a.0 += b.0;
                a.1 += b.1;
            }
            acc
        },
    ));
    println!("---- cumulative (all benchmarks, Figure 9(f)) ----");
    println!("{}", render_diagram_ascii(&cumulative, 60, 22));
    println!("cumulative RMS: {:.4}\n", cumulative.rms_error());
    println!("{}", rms_table.render());
}
