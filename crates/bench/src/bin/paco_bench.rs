//! The unified experiment CLI: `paco-bench list` / `paco-bench run ...`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(paco_bench::cli::main_multi(&args));
}
