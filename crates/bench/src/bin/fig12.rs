//! Figure 12: SMT fetch prioritization — HMWIPC of 16 benchmark pairs
//! under ICOUNT, four threshold-and-count predictors, and PaCo.
//!
//! The paper runs 16 pairs (without parser, which its SMT simulator could
//! not execute; we keep the same exclusion for fidelity), with every
//! benchmark appearing in 3 pairs except gzip (2).

use paco::{PacoConfig, ThresholdCountConfig};
use paco_analysis::Table;
use paco_bench::{default_instrs, default_seed, single_thread_ipc_smt, smt_run};
use paco_sim::{EstimatorKind, FetchPolicy};
use paco_workloads::BenchmarkId::{self, *};

/// The 16 SMT pairs: 11 benchmarks (no parser), each in 3 pairs except
/// gzip (2). 16 pairs × 2 slots = 32 = 10×3 + 2.
const PAIRS: [(BenchmarkId, BenchmarkId); 16] = [
    (Bzip2, Crafty),
    (Gcc, Gap),
    (Gzip, Mcf),
    (Perlbmk, Twolf),
    (Vortex, VprPlace),
    (VprRoute, Bzip2),
    (Crafty, Gcc),
    (Gap, Mcf),
    (Twolf, Vortex),
    (VprPlace, VprRoute),
    (Bzip2, Gzip),
    (Crafty, Perlbmk),
    (Gcc, Twolf),
    (Gap, Vortex),
    (Mcf, VprPlace),
    (Perlbmk, VprRoute),
];

fn main() {
    let instrs = default_instrs(200_000);
    let seed = default_seed();
    println!("== Figure 12: SMT fetch prioritization (HMWIPC) ==");
    println!(
        "   ({} instructions/thread/config, seed {})\n",
        instrs, seed
    );

    // Standalone IPCs on the 8-wide machine (the SingleIPC terms).
    let mut single = std::collections::BTreeMap::new();
    for &(a, b) in &PAIRS {
        for bench in [a, b] {
            single
                .entry(bench.name())
                .or_insert_with(|| single_thread_ipc_smt(bench, instrs, seed));
        }
    }

    let policies: [(&str, EstimatorKind, FetchPolicy); 6] = [
        ("ICount", EstimatorKind::None, FetchPolicy::ICount),
        (
            "JRS-t3",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(3)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t7",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(7)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t11",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(11)),
            FetchPolicy::Confidence,
        ),
        (
            "JRS-t15",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(15)),
            FetchPolicy::Confidence,
        ),
        (
            "PaCo",
            EstimatorKind::Paco(PacoConfig::paper()),
            FetchPolicy::Confidence,
        ),
    ];

    let mut table = Table::new(&[
        "pair", "ICount", "JRS-t3", "JRS-t7", "JRS-t11", "JRS-t15", "PaCo",
    ]);
    let mut sums = [0.0f64; 6];
    let mut paco_vs_best_jrs = Vec::new();

    for &(a, b) in &PAIRS {
        let sa = single[a.name()];
        let sb = single[b.name()];
        let mut row = vec![format!("{}-{}", a.name(), b.name())];
        let mut vals = [0.0f64; 6];
        for (i, (_, est, pol)) in policies.iter().enumerate() {
            let r = smt_run((a, b), *est, *pol, (sa, sb), instrs, seed);
            vals[i] = r.hmwipc;
            sums[i] += r.hmwipc;
            row.push(format!("{:.3}", r.hmwipc));
        }
        let best_jrs = vals[1..5].iter().cloned().fold(f64::MIN, f64::max);
        paco_vs_best_jrs.push(100.0 * (vals[5] - best_jrs) / best_jrs);
        table.row_owned(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for s in sums {
        mean_row.push(format!("{:.3}", s / PAIRS.len() as f64));
    }
    table.row_owned(mean_row);
    println!("{}", table.render());

    let wins = paco_vs_best_jrs.iter().filter(|&&d| d > 0.0).count();
    let mean_gain = paco_vs_best_jrs.iter().sum::<f64>() / paco_vs_best_jrs.len() as f64;
    let max_gain = paco_vs_best_jrs.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "PaCo vs best JRS per pair: wins {wins}/16, mean {mean_gain:+.1}%, max {max_gain:+.1}%"
    );
    println!(
        "Paper's claims to verify: PaCo beats the best threshold-and-count\n\
         predictor on 14 of 16 pairs, ~5.4-5.5% mean improvement, up to ~23%."
    );
}
