//! Appendix Table 1: RMS error of the dynamic MRT (PaCo) vs the Static
//! MRT and Per-branch MRT ablation variants.

use paco::{PacoConfig, PerBranchMrtConfig};
use paco_analysis::{ReliabilityDiagram, Table};
use paco_bench::{accuracy_run, default_instrs, default_seed, default_warmup};
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_workloads::{drifting_stress_spec, ALL_BENCHMARKS};

fn main() {
    let instrs = default_instrs(600_000);
    let seed = default_seed();
    println!("== Appendix Table 1: MRT variants, RMS error ==");
    println!("   ({} instructions/benchmark, seed {})\n", instrs, seed);

    let variants: [(&str, EstimatorKind); 3] = [
        ("MRT", EstimatorKind::Paco(PacoConfig::paper())),
        ("StaticMRT", EstimatorKind::StaticMrt),
        (
            "PerBranchMRT",
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        ),
    ];

    let mut table = Table::new(&["bench", "MRT", "StaticMRT", "PerBranchMRT"]);
    let mut sums = [0.0f64; 3];
    for bench in ALL_BENCHMARKS {
        let mut row = vec![bench.name().to_string()];
        for (i, (_, est)) in variants.iter().enumerate() {
            let r = accuracy_run(bench, *est, instrs, seed);
            let rms = r.rms();
            sums[i] += rms;
            row.push(format!("{rms:.4}"));
        }
        table.row_owned(row);
    }
    let mut mean = vec!["mean".to_string()];
    for s in sums {
        mean.push(format!("{:.4}", s / ALL_BENCHMARKS.len() as f64));
    }
    table.row_owned(mean);
    println!("{}", table.render());
    println!(
        "Paper's claims to verify (Appendix A): the dynamic MRT is the most\n\
         accurate (paper mean 0.0377); Static MRT roughly triples the RMS\n\
         error (0.1038); Per-branch MRT is worst overall because lifetime\n\
         rates ignore recency (0.8895 mean, dominated by vortex).\n"
    );

    // ---------------------------------------------------------------- //
    // Nonstationary stress: the regime Appendix A's argument is about.  //
    // Most of the twelve synthetic models are *stationary* (a branch's   //
    // lifetime rate equals its instantaneous rate), which hides the      //
    // per-branch MRT's defect; real branches drift. This section runs a  //
    // model whose sites drift between easy and hard regimes.             //
    // ---------------------------------------------------------------- //
    println!("-- nonstationary stress model (drifting branch behaviour) --");
    let mut stress = Table::new(&["estimator", "RMS"]);
    for (name, est) in variants {
        let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(Box::new(drifting_stress_spec().build(seed)), est)
            .seed(seed ^ 0xD81F7)
            .build();
        machine.run(default_warmup());
        machine.reset_stats();
        let stats = machine.run(instrs);
        let rms = ReliabilityDiagram::from_bins(&stats.threads[0].prob_instances).rms_error();
        stress.row_owned(vec![name.to_string(), format!("{rms:.4}")]);
    }
    println!("{}", stress.render());
    println!(
        "Expected ordering under drift (the paper's Appendix-A mechanism):\n\
         dynamic MRT < static MRT, per-branch MRT worst — lifetime rates\n\
         average over regimes the branch is no longer in."
    );
}
