//! Content-addressed on-disk result cache.
//!
//! Each cell result is stored in its own file named by the cell's
//! [`content hash`](crate::spec::CellSpec::content_hash), so re-running an
//! experiment only simulates cells whose description changed — everything
//! else is served from disk. The file format reuses `paco-trace`'s codec
//! primitives: LEB128 varints for the payload and a CRC-32 trailer
//! guarding against torn or corrupted files. Any validation failure
//! (magic, version, hash, length, CRC, decode) is treated as a cache miss,
//! never an error: the cache is an accelerator, not a source of truth.
//!
//! A cell hash names a *description* of a run, not the simulator that
//! executes it — so every file also records a fingerprint of the running
//! executable. After a rebuild (any code change), the fingerprint
//! changes, old entries miss, and figures are recomputed instead of
//! silently replaying results of the previous simulator.
//!
//! Layout of a cell file:
//!
//! ```text
//! "PACOCELL" | version: u32 LE | code fingerprint: u64 LE | cell hash: u64 LE
//! payload len: u32 LE | payload (varint-encoded CellResult) | crc32(payload): u32 LE
//! ```
//!
//! Writes go through a uniquely named temporary file renamed into place,
//! so concurrent engine runs (or a killed run) can never leave a
//! partially written file under a final name.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use paco_branch::Mdc;
use paco_sim::{MachineStats, ThreadStats};
use paco_types::wire::{crc32, read_uvarint, write_uvarint};

use crate::engine::CellResult;

/// Cell-file magic.
pub const CELL_MAGIC: [u8; 8] = *b"PACOCELL";

/// Version of the cached result encoding. Bump whenever [`ThreadStats`]
/// or the payload layout changes; old entries then miss (and are
/// overwritten) instead of decoding garbage.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Environment variable overriding the default cache directory.
pub const CACHE_DIR_ENV: &str = "PACO_BENCH_CACHE_DIR";

/// A fingerprint of the code that produces results.
///
/// A cell's content hash covers its *description*; this covers the
/// *simulator*. Any rebuild — bug fix, timing change, new statistic —
/// yields a different binary and therefore invalidates every prior cache
/// entry, which is exactly the freshness the pre-cache binaries had by
/// always recomputing. The hash itself is the workspace-wide
/// [`paco_types::fingerprint::code_fingerprint`] (also surfaced by the
/// `paco-bench version` subcommand for cache-invalidation debugging).
pub fn code_fingerprint() -> u64 {
    paco_types::fingerprint::code_fingerprint()
}

/// A directory of content-addressed cell results.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The default cache directory: `$PACO_BENCH_CACHE_DIR` if set, else
    /// `target/paco-bench-cache` under the current directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var_os(CACHE_DIR_ENV) {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => PathBuf::from("target").join("paco-bench-cache"),
        }
    }

    /// Opens the default cache location.
    pub fn open_default() -> io::Result<Self> {
        ResultCache::new(Self::default_dir())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path for a cell hash.
    fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.cell"))
    }

    /// Loads the result for `hash`, or `None` on miss or any validation
    /// failure.
    pub fn load(&self, hash: u64) -> Option<CellResult> {
        let bytes = fs::read(self.path_for(hash)).ok()?;
        decode_cell_file(&bytes, hash)
    }

    /// Stores a result under `hash` (atomic rename into place).
    pub fn store(&self, hash: u64, result: &CellResult) -> io::Result<()> {
        // pid + per-process counter: two engines in one process (or two
        // processes) storing the same cell can never share a temp file.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let bytes = encode_cell_file(hash, result);
        let tmp = self.dir.join(format!(
            ".{hash:016x}.cell.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, bytes)?;
        let renamed = fs::rename(&tmp, self.path_for(hash));
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        renamed
    }
}

fn encode_cell_file(hash: u64, result: &CellResult) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_result(&mut payload, result);
    let mut out = Vec::with_capacity(payload.len() + 36);
    out.extend_from_slice(&CELL_MAGIC);
    out.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&code_fingerprint().to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

fn decode_cell_file(bytes: &[u8], expect_hash: u64) -> Option<CellResult> {
    let fixed = 8 + 4 + 8 + 8 + 4;
    if bytes.len() < fixed + 4 || bytes[..8] != CELL_MAGIC {
        return None;
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    if u32_at(8) != CACHE_FORMAT_VERSION {
        return None;
    }
    if u64_at(12) != code_fingerprint() {
        return None; // produced by a different build of the simulator
    }
    if u64_at(20) != expect_hash {
        return None;
    }
    let len = u32_at(28) as usize;
    if bytes.len() != fixed + len + 4 {
        return None;
    }
    let payload = &bytes[fixed..fixed + len];
    if crc32(payload) != u32_at(fixed + len) {
        return None;
    }
    let mut input = payload;
    let result = decode_result(&mut input)?;
    input.is_empty().then_some(result)
}

fn encode_result(out: &mut Vec<u8>, result: &CellResult) {
    write_uvarint(out, result.stats.cycles);
    write_uvarint(out, result.stats.threads.len() as u64);
    for t in &result.stats.threads {
        encode_thread(out, t);
    }
    write_uvarint(out, result.phases.len() as u64);
    for phase in &result.phases {
        encode_bins(out, phase);
    }
}

fn decode_result(input: &mut &[u8]) -> Option<CellResult> {
    let cycles = read_uvarint(input)?;
    let nthreads = read_uvarint(input)?;
    let mut threads = Vec::with_capacity(nthreads.min(64) as usize);
    for _ in 0..nthreads {
        threads.push(decode_thread(input)?);
    }
    let nphases = read_uvarint(input)?;
    let mut phases = Vec::with_capacity(nphases.min(64) as usize);
    for _ in 0..nphases {
        phases.push(decode_bins(input)?);
    }
    Some(CellResult {
        stats: MachineStats { cycles, threads },
        phases,
    })
}

fn encode_thread(out: &mut Vec<u8>, t: &ThreadStats) {
    for v in [
        t.retired,
        t.fetched,
        t.fetched_badpath,
        t.executed,
        t.executed_badpath,
        t.cond_retired,
        t.cond_mispredicted,
        t.control_retired,
        t.control_mispredicted,
        t.gated_cycles,
    ] {
        write_uvarint(out, v);
    }
    encode_u64s(out, &t.mdc_retired);
    encode_u64s(out, &t.mdc_mispredicted);
    encode_bins(out, &t.prob_instances);
    encode_bins(out, &t.score_instances);
}

fn decode_thread(input: &mut &[u8]) -> Option<ThreadStats> {
    let mut t = ThreadStats::new();
    for field in [
        &mut t.retired,
        &mut t.fetched,
        &mut t.fetched_badpath,
        &mut t.executed,
        &mut t.executed_badpath,
        &mut t.cond_retired,
        &mut t.cond_mispredicted,
        &mut t.control_retired,
        &mut t.control_mispredicted,
        &mut t.gated_cycles,
    ] {
        *field = read_uvarint(input)?;
    }
    t.mdc_retired = decode_u64s(input)?;
    t.mdc_mispredicted = decode_u64s(input)?;
    t.prob_instances = decode_bins(input)?;
    t.score_instances = decode_bins(input)?;
    Some(t)
}

fn encode_u64s(out: &mut Vec<u8>, values: &[u64]) {
    write_uvarint(out, values.len() as u64);
    for &v in values {
        write_uvarint(out, v);
    }
}

fn decode_u64s(input: &mut &[u8]) -> Option<[u64; Mdc::BUCKETS]> {
    if read_uvarint(input)? != Mdc::BUCKETS as u64 {
        return None;
    }
    let mut out = [0u64; Mdc::BUCKETS];
    for v in &mut out {
        *v = read_uvarint(input)?;
    }
    Some(out)
}

fn encode_bins(out: &mut Vec<u8>, bins: &[(u64, u64)]) {
    write_uvarint(out, bins.len() as u64);
    for &(n, good) in bins {
        write_uvarint(out, n);
        write_uvarint(out, good);
    }
}

fn decode_bins(input: &mut &[u8]) -> Option<Vec<(u64, u64)>> {
    let len = read_uvarint(input)?;
    // Bin vectors are bounded (PROB_BINS / SCORE_BINS sized); reject
    // absurd lengths before allocating.
    if len > 4096 {
        return None;
    }
    let mut bins = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let n = read_uvarint(input)?;
        let good = read_uvarint(input)?;
        bins.push((n, good));
    }
    Some(bins)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_cell;
    use crate::spec::{CellSpec, RunParams};
    use paco_sim::EstimatorKind;
    use paco_workloads::BenchmarkId;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!(
            "paco-bench-cache-test-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::new(dir).expect("create temp cache")
    }

    fn sample_result() -> (u64, CellResult) {
        let p = RunParams {
            instrs: 3_000,
            seed: 9,
            warmup: 1_000,
        };
        let cell = CellSpec::accuracy(BenchmarkId::Gzip, EstimatorKind::None, &p);
        (cell.content_hash(), execute_cell(&cell))
    }

    #[test]
    fn round_trips_results_exactly() {
        let cache = temp_cache("roundtrip");
        let (hash, result) = sample_result();
        assert!(cache.load(hash).is_none(), "cold cache must miss");
        cache.store(hash, &result).expect("store");
        let back = cache.load(hash).expect("hit after store");
        assert_eq!(back, result);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn corruption_is_a_miss_not_an_error() {
        let cache = temp_cache("corrupt");
        let (hash, result) = sample_result();
        cache.store(hash, &result).expect("store");
        let path = cache.path_for(hash);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte: CRC must catch it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(hash).is_none());
        // Truncation too.
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(cache.load(hash).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn wrong_hash_and_version_miss() {
        let cache = temp_cache("keying");
        let (hash, result) = sample_result();
        cache.store(hash, &result).expect("store");
        assert!(
            cache.load(hash ^ 1).is_none(),
            "a different hash must not alias"
        );
        // Rewrite with a bumped version field.
        let path = cache.path_for(hash);
        let mut bytes = fs::read(&path).unwrap();
        bytes[8] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(hash).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn foreign_code_fingerprint_misses() {
        // An entry written by a different build of the simulator must not
        // be served as a hit.
        let cache = temp_cache("fingerprint");
        let (hash, result) = sample_result();
        cache.store(hash, &result).expect("store");
        let path = cache.path_for(hash);
        let mut bytes = fs::read(&path).unwrap();
        bytes[13] ^= 0x01; // inside the code-fingerprint field
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(hash).is_none());
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn phased_results_round_trip() {
        let p = RunParams {
            instrs: 4_000,
            seed: 2,
            warmup: 0,
        };
        let cell = CellSpec::phased(BenchmarkId::Gzip, EstimatorKind::None, 1_000, 2, 4_000, &p);
        let result = execute_cell(&cell);
        assert!(!result.phases.is_empty());
        let cache = temp_cache("phased");
        let hash = cell.content_hash();
        cache.store(hash, &result).expect("store");
        assert_eq!(cache.load(hash).expect("hit"), result);
        let _ = fs::remove_dir_all(cache.dir());
    }
}
