//! Benchmarks of the timing simulator itself: cycles/second and
//! instructions/second across workload characters.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use paco::PacoConfig;
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_workloads::BenchmarkId;

fn machine(bench: BenchmarkId, estimator: EstimatorKind) -> paco_sim::Machine {
    MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(1)), estimator)
        .seed(1)
        .build()
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20k_instructions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_000));
    for bench in [BenchmarkId::Gzip, BenchmarkId::Mcf, BenchmarkId::Twolf] {
        group.bench_function(bench.name(), |b| {
            b.iter_batched(
                || machine(bench, EstimatorKind::None),
                |mut m| m.run(20_000),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_estimator_overhead(c: &mut Criterion) {
    // How much the confidence hooks cost the simulator (the paper's
    // hardware adds <60B of state; our model should add little time).
    let mut group = c.benchmark_group("estimator_overhead_20k");
    group.sample_size(10);
    for (name, est) in [
        ("none", EstimatorKind::None),
        ("paco", EstimatorKind::Paco(PacoConfig::paper())),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || machine(BenchmarkId::Gzip, est),
                |mut m| m.run(20_000),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    use paco_workloads::Workload;
    let mut group = c.benchmark_group("workload_stream");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("gcc_next_instr_x10k", |b| {
        let mut w = BenchmarkId::Gcc.build(3);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(w.next_instr().pc.addr());
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_throughput,
    bench_estimator_overhead,
    bench_workload_generation
);
criterion_main!(benches);
