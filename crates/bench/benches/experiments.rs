//! End-to-end experiment benchmarks: one reduced-scale instance of each
//! paper artefact, so `cargo bench` exercises every experimental pipeline
//! and reports its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use paco::{PacoConfig, ThresholdCountConfig};
use paco_bench::{accuracy_run, gating_run, single_thread_ipc_smt, smt_run};
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy};
use paco_types::Probability;
use paco_workloads::BenchmarkId;

fn bench_accuracy_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("tab7_single_benchmark_50k", |b| {
        b.iter(|| {
            accuracy_run(
                BenchmarkId::Gzip,
                EstimatorKind::Paco(PacoConfig::paper()),
                50_000,
                1,
            )
            .rms()
        })
    });
    group.bench_function("fig10_single_point_50k", |b| {
        b.iter(|| {
            gating_run(
                BenchmarkId::Twolf,
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
                GatingPolicy::paco_gate(Probability::new(0.2).unwrap()),
                50_000,
                1,
            )
        })
    });
    group.bench_function("fig12_single_pair_30k", |b| {
        let s1 = single_thread_ipc_smt(BenchmarkId::Gzip, 30_000, 1);
        let s2 = single_thread_ipc_smt(BenchmarkId::Twolf, 30_000, 1);
        b.iter(|| {
            smt_run(
                (BenchmarkId::Gzip, BenchmarkId::Twolf),
                EstimatorKind::Paco(PacoConfig::paper()),
                FetchPolicy::Confidence,
                (s1, s2),
                30_000,
                1,
            )
            .hmwipc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_accuracy_pipeline);
criterion_main!(benches);
