//! Trace-subsystem benchmarks: raw encode/decode throughput of the
//! binary format, and end-to-end simulator throughput with live
//! generation vs. trace replay (streaming and preloaded).

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use paco_sim::{EstimatorKind, MachineBuilder, SimConfig};
use paco_trace::{workload_from_bytes, TraceMeta, TraceReader, TraceWriter};
use paco_types::DynInstr;
use paco_workloads::{BenchmarkId, BufferSource, TraceWorkload, Workload};

const RECORDS: u64 = 200_000;
const SIM_INSTRS: u64 = 20_000;
const BENCH: BenchmarkId = BenchmarkId::Gzip;
const SEED: u64 = 11;

fn recorded_stream() -> (TraceMeta, Vec<DynInstr>) {
    let mut w = BENCH.build(SEED);
    let meta = TraceMeta::for_workload(&w);
    let records = (0..RECORDS).map(|_| w.next_instr()).collect();
    (meta, records)
}

fn encoded_trace() -> Vec<u8> {
    let (meta, records) = recorded_stream();
    let mut writer = TraceWriter::new(Cursor::new(Vec::new()), &meta).unwrap();
    for r in &records {
        writer.push_instr(r).unwrap();
    }
    writer.finish().unwrap().1.into_inner()
}

fn bench_codec_throughput(c: &mut Criterion) {
    let (meta, records) = recorded_stream();
    let bytes = encoded_trace();

    let mut group = c.benchmark_group("trace_codec_200k");
    group.throughput(Throughput::Elements(RECORDS));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Cursor::new(Vec::new()), &meta).unwrap();
            for r in &records {
                writer.push_instr(r).unwrap();
            }
            writer.finish().unwrap().0.records
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(Cursor::new(bytes.as_slice())).unwrap();
            let mut n = 0u64;
            while reader.next_record().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

fn run_machine(workload: Box<dyn Workload>) -> u64 {
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(workload, EstimatorKind::None)
        .seed(SEED)
        .build();
    machine.run(SIM_INSTRS).threads[0].retired
}

fn bench_simulator_live_vs_replay(c: &mut Criterion) {
    let bytes = encoded_trace();
    let (meta, records) = recorded_stream();

    let mut group = c.benchmark_group("simulate_20k_instructions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SIM_INSTRS));
    group.bench_function("live_generation", |b| {
        b.iter_batched(
            || Box::new(BENCH.build(SEED)),
            |w| run_machine(w),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("replay_streaming", |b| {
        b.iter_batched(
            || Box::new(workload_from_bytes(bytes.clone()).unwrap()),
            |w| run_machine(w),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("replay_preloaded", |b| {
        b.iter_batched(
            || {
                Box::new(TraceWorkload::new(
                    meta.name.clone(),
                    meta.params,
                    Box::new(BufferSource::new(records.clone())),
                ))
            },
            |w| run_machine(w),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec_throughput,
    bench_simulator_live_vs_replay
);
criterion_main!(benches);
