//! Microbenchmarks of the predictor hot paths: the operations a hardware
//! PaCo performs every fetch/resolve, plus the periodic log circuit.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use paco::{
    BranchFetchInfo, LogCircuit, LogMode, PacoConfig, PacoPredictor, PathConfidenceEstimator,
    ThresholdCountConfig, ThresholdCountPredictor,
};
use paco_branch::{ConfidenceConfig, DirectionPredictor, Mdc, MdcTable, TournamentPredictor};
use paco_types::Pc;

fn bench_paco_fetch_resolve(c: &mut Criterion) {
    c.bench_function("paco_fetch_resolve_pair", |b| {
        let mut paco = PacoPredictor::new(PacoConfig::paper());
        let mut i = 0u8;
        b.iter(|| {
            let t = paco.on_fetch(BranchFetchInfo::conditional(Mdc::new(i % 16)));
            paco.on_resolve(black_box(t), i % 7 == 0);
            i = i.wrapping_add(1);
        })
    });
}

fn bench_counter_fetch_resolve(c: &mut Criterion) {
    c.bench_function("threshold_count_fetch_resolve_pair", |b| {
        let mut est = ThresholdCountPredictor::new(ThresholdCountConfig::paper_default());
        let mut i = 0u8;
        b.iter(|| {
            let t = est.on_fetch(BranchFetchInfo::conditional(Mdc::new(i % 16)));
            est.on_resolve(black_box(t), false);
            i = i.wrapping_add(1);
        })
    });
}

fn bench_log_circuit(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_circuit");
    group.bench_function("mitchell_refresh_16_buckets", |b| {
        let circuit = LogCircuit::new(LogMode::Mitchell);
        b.iter(|| {
            let mut acc = 0u32;
            for k in 1u32..=16 {
                acc = acc.wrapping_add(circuit.encode_ratio(black_box(k * 60), k).raw());
            }
            acc
        })
    });
    group.bench_function("exact_refresh_16_buckets", |b| {
        let circuit = LogCircuit::new(LogMode::Exact);
        b.iter(|| {
            let mut acc = 0u32;
            for k in 1u32..=16 {
                acc = acc.wrapping_add(circuit.encode_ratio(black_box(k * 60), k).raw());
            }
            acc
        })
    });
    group.finish();
}

fn bench_tournament_predict(c: &mut Criterion) {
    c.bench_function("tournament_predict_update", |b| {
        let mut pred = TournamentPredictor::paper_default();
        let mut pc = 0x40_0000u64;
        b.iter(|| {
            let p = Pc::new(pc);
            let d = pred.predict(p, pc & 0xff);
            pred.update(p, pc & 0xff, d, d);
            pc = pc.wrapping_add(4) | 0x40_0000;
            d
        })
    });
}

fn bench_mdc_table(c: &mut Criterion) {
    c.bench_function("mdc_index_read_update", |b| {
        let mut mdc = MdcTable::new(ConfidenceConfig::paper());
        let mut pc = 0x40_0000u64;
        b.iter(|| {
            let idx = mdc.index(Pc::new(pc), pc & 0xff, pc & 1 == 0);
            let v = mdc.read(idx);
            mdc.update(idx, v.value() < 12);
            pc = pc.wrapping_add(4) | 0x40_0000;
            v
        })
    });
}

criterion_group!(
    benches,
    bench_paco_fetch_resolve,
    bench_counter_fetch_resolve,
    bench_log_circuit,
    bench_tournament_predict,
    bench_mdc_table
);
criterion_main!(benches);
