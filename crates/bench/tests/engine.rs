//! Engine integration: parallel determinism, cache behaviour, and golden
//! equivalence between engine cells and hand-built machine runs.

use std::path::PathBuf;

use paco::{PacoConfig, ThresholdCountConfig};
use paco_bench::cache::ResultCache;
use paco_bench::engine::{execute_cell, Engine};
use paco_bench::experiments::{ExperimentId, ALL_EXPERIMENTS};
use paco_bench::json::run_json;
use paco_bench::spec::{CellSpec, ExperimentSpec, RunParams};
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy, MachineBuilder, SimConfig};
use paco_workloads::BenchmarkId;

fn params() -> RunParams {
    RunParams {
        instrs: 8_000,
        seed: 11,
        warmup: 4_000,
    }
}

/// A fig9-shaped grid at test scale: one accuracy cell per benchmark.
fn fig9_like_spec() -> ExperimentSpec {
    let p = params();
    let mut spec = ExperimentSpec::new("fig9-test", p);
    for bench in paco_workloads::ALL_BENCHMARKS {
        spec.push(CellSpec::accuracy(
            bench,
            EstimatorKind::Paco(PacoConfig::paper()),
            &p,
        ));
    }
    spec
}

/// The satellite guarantee behind the `Send`/seeding refactor: the same
/// spec run with `--jobs 1` and `--jobs 8` produces byte-identical JSON.
#[test]
fn jobs_1_and_jobs_8_produce_byte_identical_json() {
    let spec = fig9_like_spec();
    let seq = Engine::new().jobs(1).run(&spec);
    let par = Engine::new().jobs(8).run(&spec);
    assert_eq!(seq.jobs, 1);
    assert_eq!(par.jobs, 8);
    let seq_json = run_json(&spec, &seq);
    let par_json = run_json(&spec, &par);
    assert_eq!(
        seq_json.as_bytes(),
        par_json.as_bytes(),
        "parallel execution must be bit-identical to sequential"
    );
}

struct TempCacheDir(PathBuf);

impl TempCacheDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "paco-bench-engine-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempCacheDir(dir)
    }
}

impl Drop for TempCacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Second run of the same spec is served entirely from cache and returns
/// the same results (and therefore the same JSON bytes).
#[test]
fn second_run_is_fully_cached_and_identical() {
    let dir = TempCacheDir::new("rerun");
    let spec = fig9_like_spec();

    let cold = Engine::new()
        .jobs(2)
        .cache(ResultCache::new(&dir.0).unwrap())
        .run(&spec);
    assert_eq!(cold.cached, 0);
    assert_eq!(cold.executed, spec.cells().len());

    let warm = Engine::new()
        .jobs(2)
        .cache(ResultCache::new(&dir.0).unwrap())
        .run(&spec);
    assert_eq!(warm.cached, spec.cells().len(), "warm run must be all hits");
    assert_eq!(warm.executed, 0);
    assert_eq!(run_json(&spec, &cold), run_json(&spec, &warm));

    // A changed spec (different instruction count) misses: the hash keys
    // cover run lengths.
    let mut p2 = params();
    p2.instrs += 1;
    let mut changed = ExperimentSpec::new("fig9-test", p2);
    changed.push(CellSpec::accuracy(
        BenchmarkId::Gzip,
        EstimatorKind::Paco(PacoConfig::paper()),
        &p2,
    ));
    let run = Engine::new()
        .jobs(1)
        .cache(ResultCache::new(&dir.0).unwrap())
        .run(&changed);
    assert_eq!(run.cached, 0, "changed cells must not hit stale entries");
}

// ------------------------------------------------------------------ //
//  Golden equivalence: engine cells vs the pre-engine hand-built     //
//  machine recipes (locks the per-kind seed/warmup derivations).      //
// ------------------------------------------------------------------ //

#[test]
fn accuracy_cell_matches_hand_built_machine() {
    let p = params();
    let (bench, est, seed) = (
        BenchmarkId::Gzip,
        EstimatorKind::Paco(PacoConfig::paper()),
        p.seed,
    );
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(seed)), est)
        .seed(seed ^ 0xACC0)
        .build();
    machine.run(p.warmup);
    machine.reset_stats();
    let want = machine.run(p.instrs);

    let got = execute_cell(&CellSpec::accuracy(bench, est, &p));
    assert_eq!(got.stats, want);
    assert!(got.phases.is_empty());
}

#[test]
fn gating_cell_matches_hand_built_machine() {
    let p = params();
    let (bench, est) = (
        BenchmarkId::Twolf,
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
    );
    let gating = GatingPolicy::CountGate { gate_count: 2 };
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(p.seed)), est)
        .gating(gating)
        .seed(p.seed ^ 0x6A7E)
        .build();
    machine.run(p.warmup);
    machine.reset_stats();
    let want = machine.run(p.instrs);

    let got = execute_cell(&CellSpec::gating(bench, est, gating, &p));
    assert_eq!(got.stats, want);
}

#[test]
fn smt_cells_match_hand_built_machines() {
    let p = params();
    let pair = (BenchmarkId::Gzip, BenchmarkId::Twolf);

    // Standalone IPC run: 8-wide machine, one thread, halved warmup.
    let mut single = MachineBuilder::new(SimConfig::paper_smt_8wide().with_threads(1))
        .thread(Box::new(pair.0.build(p.seed)), EstimatorKind::None)
        .seed(p.seed ^ 0x517)
        .build();
    single.run(p.warmup / 2);
    single.reset_stats();
    let want_single = single.run(p.instrs);
    let got_single = execute_cell(&CellSpec::smt_single(pair.0, &p));
    assert_eq!(got_single.stats, want_single);

    // Two-thread SMT run.
    let est = EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default());
    let mut smt = MachineBuilder::new(SimConfig::paper_smt_8wide())
        .thread(Box::new(pair.0.build(p.seed)), est)
        .thread(Box::new(pair.1.build(p.seed ^ 0xF00)), est)
        .fetch_policy(FetchPolicy::Confidence)
        .seed(p.seed ^ 0x53B)
        .build();
    smt.run(p.warmup / 2);
    smt.reset_stats();
    let want_pair = smt.run(p.instrs);
    let got_pair = execute_cell(&CellSpec::smt_pair(pair, est, FetchPolicy::Confidence, &p));
    assert_eq!(got_pair.stats, want_pair);
}

#[test]
fn stress_cell_matches_hand_built_machine() {
    let p = params();
    let est = EstimatorKind::StaticMrt;
    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(
            Box::new(paco_workloads::drifting_stress_spec().build(p.seed)),
            est,
        )
        .seed(p.seed ^ 0xD81F7)
        .build();
    machine.run(p.warmup);
    machine.reset_stats();
    let want = machine.run(p.instrs);

    let got = execute_cell(&CellSpec::stress(est, &p));
    assert_eq!(got.stats, want);
}

#[test]
fn phased_cell_matches_hand_rolled_phase_loop() {
    // Replicates fig3's original phase_bins() accumulation.
    let p = params();
    let est = EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default());
    let (bench, window, nphases, total) = (BenchmarkId::Gzip, 2_000u64, 2usize, 8_000u64);

    let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
        .thread(Box::new(bench.build(p.seed)), est)
        .seed(p.seed ^ 0xF1640)
        .build();
    let mut want = vec![vec![(0u64, 0u64); paco_sim::SCORE_BINS]; nphases];
    let mut prev = vec![(0u64, 0u64); paco_sim::SCORE_BINS];
    let mut boundary = window;
    let mut phase = 0usize;
    while boundary <= total {
        let stats = machine.run(boundary);
        let cur = &stats.threads[0].score_instances;
        for (i, acc) in want[phase].iter_mut().enumerate() {
            acc.0 += cur[i].0 - prev[i].0;
            acc.1 += cur[i].1 - prev[i].1;
        }
        prev = cur.clone();
        boundary += window;
        phase = (phase + 1) % nphases;
    }

    let got = execute_cell(&CellSpec::phased(
        bench,
        est,
        window,
        nphases as u32,
        total,
        &p,
    ));
    assert_eq!(got.phases, want);
}

/// Every named experiment runs end-to-end through the engine and renders
/// non-empty output at test scale.
#[test]
fn all_experiments_render_through_the_engine() {
    let p = RunParams {
        instrs: 1_500,
        seed: 3,
        warmup: 500,
    };
    for id in ALL_EXPERIMENTS {
        // The two heaviest grids get the smallest budget.
        if matches!(id, ExperimentId::Fig10 | ExperimentId::Fig12) && cfg!(debug_assertions) {
            continue; // debug builds: covered by the release CI run
        }
        if matches!(
            id,
            ExperimentId::ServeThroughput | ExperimentId::ServeScale | ExperimentId::Hotpath
        ) {
            continue; // not engine experiments; each has its own tests
        }
        let spec = id.spec(p);
        let run = Engine::new().run(&spec);
        let set = paco_bench::experiments::ResultSet {
            spec: &spec,
            results: &run.results,
        };
        let text = id.render(&set);
        assert!(
            text.len() > 100 && text.ends_with('\n'),
            "{}: suspicious render ({} bytes)",
            id.name(),
            text.len()
        );
    }
}

/// The robustness sweep's corpus cells are as deterministic and
/// jobs-invariant as every other cell kind: `--jobs 1` and `--jobs 8`
/// produce byte-equal JSON, and distinct corpus entries never collide on
/// a content hash (the family recipe is part of the cell identity).
#[test]
fn robustness_cells_are_jobs_invariant_and_hash_distinct() {
    let p = RunParams {
        instrs: 3_000,
        seed: 42,
        warmup: 1_000,
    };
    let spec = ExperimentId::Robustness.spec(p);
    assert_eq!(
        spec.cells().len(),
        paco_corpus::CORPUS.len() * paco_bench::experiments::robustness_estimators().len(),
        "one cell per family x estimator kind"
    );
    let mut hashes: Vec<u64> = spec.cells().iter().map(CellSpec::content_hash).collect();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(
        hashes.len(),
        spec.cells().len(),
        "corpus cell hash collision"
    );

    let seq = Engine::new().jobs(1).run(&spec);
    let par = Engine::new().jobs(8).run(&spec);
    assert_eq!(run_json(&spec, &seq), run_json(&spec, &par));
}
