//! Property tests for experiment-cell content hashing: equal cells hash
//! equally regardless of how they were assembled, and distinct cells
//! never collide (within generated samples).

use paco::{PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_bench::spec::{CellKind, CellSpec, ExperimentSpec, RunParams};
use paco_sim::{EstimatorKind, FetchPolicy, GatingPolicy};
use paco_workloads::{BenchmarkId, ALL_BENCHMARKS};
use proptest::prelude::*;

fn bench_strategy() -> impl Strategy<Value = BenchmarkId> {
    (0usize..ALL_BENCHMARKS.len()).prop_map(|i| ALL_BENCHMARKS[i])
}

fn estimator_strategy() -> impl Strategy<Value = EstimatorKind> {
    prop_oneof![
        Just(EstimatorKind::None),
        Just(EstimatorKind::StaticMrt),
        (1_000u64..1_000_000, any::<bool>()).prop_map(|(period, exact)| {
            let cfg = PacoConfig::paper().with_refresh_period(period);
            EstimatorKind::Paco(if exact {
                cfg.with_log_mode(paco::LogMode::Exact)
            } else {
                cfg
            })
        }),
        (0u64..16).prop_map(|t| {
            EstimatorKind::ThresholdCount(ThresholdCountConfig::with_threshold(t as u8))
        }),
        Just(EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper())),
    ]
}

fn gating_strategy() -> impl Strategy<Value = GatingPolicy> {
    prop_oneof![
        Just(GatingPolicy::None),
        (1u64..12).prop_map(|gate_count| GatingPolicy::CountGate { gate_count }),
        (1u64..5000).prop_map(|encoded_threshold| GatingPolicy::PacoGate { encoded_threshold }),
        (1u64..8).prop_map(|start| GatingPolicy::CountThrottle { start }),
        (1u64..2000, 2000u64..5000)
            .prop_map(|(full, zero)| GatingPolicy::PacoThrottle { full, zero }),
    ]
}

fn kind_strategy() -> impl Strategy<Value = CellKind> {
    prop_oneof![
        (bench_strategy(), estimator_strategy())
            .prop_map(|(bench, estimator)| CellKind::Accuracy { bench, estimator }),
        (bench_strategy(), estimator_strategy(), gating_strategy()).prop_map(
            |(bench, estimator, gating)| CellKind::Gating {
                bench,
                estimator,
                gating,
            }
        ),
        bench_strategy().prop_map(|bench| CellKind::SmtSingle { bench }),
        (
            bench_strategy(),
            bench_strategy(),
            estimator_strategy(),
            0u64..3
        )
            .prop_map(|(a, b, estimator, pol)| CellKind::SmtPair {
                pair: (a, b),
                estimator,
                policy: match pol {
                    0 => FetchPolicy::RoundRobin,
                    1 => FetchPolicy::ICount,
                    _ => FetchPolicy::Confidence,
                },
            }),
        (
            bench_strategy(),
            estimator_strategy(),
            1u64..500_000,
            1u64..8
        )
            .prop_map(|(bench, estimator, window, phases)| CellKind::Phased {
                bench,
                estimator,
                window,
                phases: phases as u32,
            }),
        estimator_strategy().prop_map(|estimator| CellKind::Stress { estimator }),
    ]
}

fn cell_strategy() -> impl Strategy<Value = CellSpec> {
    (
        kind_strategy(),
        1u64..10_000_000,
        0u64..1_000_000,
        any::<u64>(),
    )
        .prop_map(|(kind, instrs, warmup, seed)| CellSpec {
            kind,
            instrs,
            warmup,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structurally distinct cells never collide on content hash;
    /// structurally equal cells always agree.
    #[test]
    fn distinct_cells_never_collide(a in cell_strategy(), b in cell_strategy()) {
        if a == b {
            prop_assert_eq!(a.content_hash(), b.content_hash());
        } else {
            prop_assert_ne!(a.content_hash(), b.content_hash());
        }
    }

    /// The hash is a pure function of the cell value: recomputing agrees,
    /// and a field-by-field reconstruction (fields "reordered" at the
    /// construction site) agrees too.
    #[test]
    fn hash_is_stable_across_reconstruction(cell in cell_strategy()) {
        prop_assert_eq!(cell.content_hash(), cell.content_hash());
        let rebuilt = CellSpec {
            seed: cell.seed,
            warmup: cell.warmup,
            instrs: cell.instrs,
            kind: cell.kind,
        };
        prop_assert_eq!(rebuilt.content_hash(), cell.content_hash());
    }

    /// Spec-level hashing is insensitive to cell insertion order.
    #[test]
    fn spec_hash_is_order_independent(
        cells in proptest::collection::vec(cell_strategy(), 1..8),
        rotate in 0usize..8,
    ) {
        let p = RunParams { instrs: 1, seed: 1, warmup: 0 };
        let mut fwd = ExperimentSpec::new("p", p);
        for c in &cells {
            fwd.push(*c);
        }
        let mut rot = ExperimentSpec::new("p", p);
        let n = cells.len();
        for i in 0..n {
            rot.push(cells[(i + rotate) % n]);
        }
        prop_assert_eq!(fwd.content_hash(), rot.content_hash());
    }
}
