//! Aggregation of per-run statistics into figure/table-level numbers.
//!
//! The experiment presentation layer (in `paco-bench`) is deliberately
//! thin: it maps engine cell results into these pure functions and prints
//! the output. Everything that *computes* — pooling reliability bins
//! across benchmarks, averaging gating trade-off points, comparing a
//! gated run against its baseline — lives here where it is unit-testable
//! without running a simulator.

/// Accumulates `more` into `acc`, element-wise over `(instances, good)`
/// pairs — the pooling step behind cumulative reliability diagrams
/// (paper Figure 9(f)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn merge_bin_pairs(acc: &mut [(u64, u64)], more: &[(u64, u64)]) {
    assert_eq!(acc.len(), more.len(), "bin layouts must match");
    for (a, b) in acc.iter_mut().zip(more) {
        a.0 += b.0;
        a.1 += b.1;
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The `p`-th percentile of `values` (`0.0 ..= 100.0`), with linear
/// interpolation between adjacent order statistics (the "linear" method
/// shared by numpy and R type 7).
///
/// This is the exact-sort *small-run oracle*: it clones and sorts the
/// whole sample on every call, so it is the reference answer for tests
/// (the streaming-histogram quantile bound is pinned against it) and
/// for one-off percentiles of modest samples. Callers that need several
/// percentiles of the same sample must sort once themselves and use
/// [`percentile_sorted`] for each — [`LatencySummary::from_samples`]
/// does exactly that — and big-run telemetry should stream into a
/// fixed-size histogram instead of accumulating samples at all.
///
/// # Examples
///
/// ```
/// use paco_analysis::percentile;
/// let v = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&v, 0.0), 1.0);
/// assert_eq!(percentile(&v, 50.0), 2.5);
/// assert_eq!(percentile(&v, 100.0), 4.0);
/// ```
///
/// # Panics
///
/// Panics if `values` is empty, `p` is outside `[0, 100]`, or any value
/// is NaN.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile sample"));
    percentile_sorted(&sorted, p)
}

/// [`percentile`] over an already ascending-sorted sample: no clone, no
/// re-sort. Callers that need several percentiles sort once and call
/// this per quantile.
///
/// # Examples
///
/// ```
/// use paco_analysis::percentile_sorted;
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile_sorted(&sorted, 50.0), 2.5);
/// assert_eq!(percentile_sorted(&sorted, 90.0), 3.7);
/// ```
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`. The sample
/// must already be ascending; this is debug-asserted, not checked in
/// release builds.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile_sorted requires an ascending sample"
    );
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Summary statistics of a latency sample: count, mean and the
/// p50/p90/p99 percentiles the serving harness reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a sample (sorting once for all four percentiles).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn from_samples(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "latency summary of an empty sample");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in latency sample"));
        LatencySummary {
            count: sorted.len(),
            mean: mean(&sorted),
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: percentile_sorted(&sorted, 100.0),
        }
    }
}

/// The observables of one run a gating comparison needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPoint {
    /// Retired IPC.
    pub ipc: f64,
    /// Wrong-path instructions executed.
    pub badpath_executed: u64,
    /// Wrong-path instructions fetched.
    pub badpath_fetched: u64,
}

/// One point of the paper's Figure-10 trade-off space: performance loss
/// vs wrong-path reduction, gated run against ungated baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingTradeoff {
    /// Performance loss in percent (negative = speedup).
    pub perf_loss_pct: f64,
    /// Reduction in wrong-path instructions executed, percent.
    pub badpath_exec_reduction_pct: f64,
    /// Reduction in wrong-path instructions fetched, percent.
    pub badpath_fetch_reduction_pct: f64,
}

/// Compares a gated run against its ungated baseline.
pub fn gating_tradeoff(base: RunPoint, gated: RunPoint) -> GatingTradeoff {
    GatingTradeoff {
        perf_loss_pct: crate::perf_delta_pct(base.ipc, gated.ipc),
        badpath_exec_reduction_pct: crate::badpath_reduction_pct(
            base.badpath_executed,
            gated.badpath_executed,
        ),
        badpath_fetch_reduction_pct: crate::badpath_reduction_pct(
            base.badpath_fetched,
            gated.badpath_fetched,
        ),
    }
}

/// Component-wise mean of trade-off points — Figure 10 averages each
/// configuration over all modeled benchmarks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean_tradeoff(points: &[GatingTradeoff]) -> GatingTradeoff {
    assert!(!points.is_empty(), "need at least one trade-off point");
    let n = points.len() as f64;
    GatingTradeoff {
        perf_loss_pct: points.iter().map(|p| p.perf_loss_pct).sum::<f64>() / n,
        badpath_exec_reduction_pct: points
            .iter()
            .map(|p| p.badpath_exec_reduction_pct)
            .sum::<f64>()
            / n,
        badpath_fetch_reduction_pct: points
            .iter()
            .map(|p| p.badpath_fetch_reduction_pct)
            .sum::<f64>()
            / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_elementwise() {
        let mut acc = vec![(1, 1), (0, 0)];
        merge_bin_pairs(&mut acc, &[(2, 1), (5, 4)]);
        assert_eq!(acc, vec![(3, 2), (5, 4)]);
    }

    #[test]
    #[should_panic(expected = "layouts")]
    fn merge_rejects_mismatched_layouts() {
        merge_bin_pairs(&mut [(0, 0)], &[(1, 1), (2, 2)]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 25.0), 20.0);
        assert_eq!(percentile(&v, 50.0), 30.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
        // Between order statistics: 90% of the way from index 3 to 4.
        assert!((percentile(&v, 90.0) - 46.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_independent() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(percentile(&sorted, p), percentile(&shuffled, p));
        }
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[7.5], p), 7.5);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn latency_summary_reports_tails() {
        // 1..=100: p50 = 50.5, p90 = 90.1, p99 = 99.01 under linear
        // interpolation over 100 samples.
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&v);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.p50 - 50.5).abs() < 1e-12);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.p99 - 99.01).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn tradeoff_matches_metric_definitions() {
        let base = RunPoint {
            ipc: 2.0,
            badpath_executed: 1000,
            badpath_fetched: 4000,
        };
        let gated = RunPoint {
            ipc: 1.9,
            badpath_executed: 680,
            badpath_fetched: 1200,
        };
        let t = gating_tradeoff(base, gated);
        assert!((t.perf_loss_pct - 5.0).abs() < 1e-12);
        assert!((t.badpath_exec_reduction_pct - 32.0).abs() < 1e-12);
        assert!((t.badpath_fetch_reduction_pct - 70.0).abs() < 1e-12);
    }

    #[test]
    fn mean_tradeoff_averages_components() {
        let a = GatingTradeoff {
            perf_loss_pct: 2.0,
            badpath_exec_reduction_pct: 30.0,
            badpath_fetch_reduction_pct: 60.0,
        };
        let b = GatingTradeoff {
            perf_loss_pct: 4.0,
            badpath_exec_reduction_pct: 50.0,
            badpath_fetch_reduction_pct: 80.0,
        };
        let m = mean_tradeoff(&[a, b]);
        assert!((m.perf_loss_pct - 3.0).abs() < 1e-12);
        assert!((m.badpath_exec_reduction_pct - 40.0).abs() < 1e-12);
        assert!((m.badpath_fetch_reduction_pct - 70.0).abs() < 1e-12);
    }
}
