//! Aggregation of per-run statistics into figure/table-level numbers.
//!
//! The experiment presentation layer (in `paco-bench`) is deliberately
//! thin: it maps engine cell results into these pure functions and prints
//! the output. Everything that *computes* — pooling reliability bins
//! across benchmarks, averaging gating trade-off points, comparing a
//! gated run against its baseline — lives here where it is unit-testable
//! without running a simulator.

/// Accumulates `more` into `acc`, element-wise over `(instances, good)`
/// pairs — the pooling step behind cumulative reliability diagrams
/// (paper Figure 9(f)).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn merge_bin_pairs(acc: &mut [(u64, u64)], more: &[(u64, u64)]) {
    assert_eq!(acc.len(), more.len(), "bin layouts must match");
    for (a, b) in acc.iter_mut().zip(more) {
        a.0 += b.0;
        a.1 += b.1;
    }
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The observables of one run a gating comparison needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPoint {
    /// Retired IPC.
    pub ipc: f64,
    /// Wrong-path instructions executed.
    pub badpath_executed: u64,
    /// Wrong-path instructions fetched.
    pub badpath_fetched: u64,
}

/// One point of the paper's Figure-10 trade-off space: performance loss
/// vs wrong-path reduction, gated run against ungated baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatingTradeoff {
    /// Performance loss in percent (negative = speedup).
    pub perf_loss_pct: f64,
    /// Reduction in wrong-path instructions executed, percent.
    pub badpath_exec_reduction_pct: f64,
    /// Reduction in wrong-path instructions fetched, percent.
    pub badpath_fetch_reduction_pct: f64,
}

/// Compares a gated run against its ungated baseline.
pub fn gating_tradeoff(base: RunPoint, gated: RunPoint) -> GatingTradeoff {
    GatingTradeoff {
        perf_loss_pct: crate::perf_delta_pct(base.ipc, gated.ipc),
        badpath_exec_reduction_pct: crate::badpath_reduction_pct(
            base.badpath_executed,
            gated.badpath_executed,
        ),
        badpath_fetch_reduction_pct: crate::badpath_reduction_pct(
            base.badpath_fetched,
            gated.badpath_fetched,
        ),
    }
}

/// Component-wise mean of trade-off points — Figure 10 averages each
/// configuration over all modeled benchmarks.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean_tradeoff(points: &[GatingTradeoff]) -> GatingTradeoff {
    assert!(!points.is_empty(), "need at least one trade-off point");
    let n = points.len() as f64;
    GatingTradeoff {
        perf_loss_pct: points.iter().map(|p| p.perf_loss_pct).sum::<f64>() / n,
        badpath_exec_reduction_pct: points
            .iter()
            .map(|p| p.badpath_exec_reduction_pct)
            .sum::<f64>()
            / n,
        badpath_fetch_reduction_pct: points
            .iter()
            .map(|p| p.badpath_fetch_reduction_pct)
            .sum::<f64>()
            / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_elementwise() {
        let mut acc = vec![(1, 1), (0, 0)];
        merge_bin_pairs(&mut acc, &[(2, 1), (5, 4)]);
        assert_eq!(acc, vec![(3, 2), (5, 4)]);
    }

    #[test]
    #[should_panic(expected = "layouts")]
    fn merge_rejects_mismatched_layouts() {
        merge_bin_pairs(&mut [(0, 0)], &[(1, 1), (2, 2)]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tradeoff_matches_metric_definitions() {
        let base = RunPoint {
            ipc: 2.0,
            badpath_executed: 1000,
            badpath_fetched: 4000,
        };
        let gated = RunPoint {
            ipc: 1.9,
            badpath_executed: 680,
            badpath_fetched: 1200,
        };
        let t = gating_tradeoff(base, gated);
        assert!((t.perf_loss_pct - 5.0).abs() < 1e-12);
        assert!((t.badpath_exec_reduction_pct - 32.0).abs() < 1e-12);
        assert!((t.badpath_fetch_reduction_pct - 70.0).abs() < 1e-12);
    }

    #[test]
    fn mean_tradeoff_averages_components() {
        let a = GatingTradeoff {
            perf_loss_pct: 2.0,
            badpath_exec_reduction_pct: 30.0,
            badpath_fetch_reduction_pct: 60.0,
        };
        let b = GatingTradeoff {
            perf_loss_pct: 4.0,
            badpath_exec_reduction_pct: 50.0,
            badpath_fetch_reduction_pct: 80.0,
        };
        let m = mean_tradeoff(&[a, b]);
        assert!((m.perf_loss_pct - 3.0).abs() < 1e-12);
        assert!((m.badpath_exec_reduction_pct - 40.0).abs() < 1e-12);
        assert!((m.badpath_fetch_reduction_pct - 70.0).abs() < 1e-12);
    }
}
