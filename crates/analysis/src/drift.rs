//! Windowed-divergence drift detection over calibration profiles.
//!
//! The serving layer summarizes each session's recent behaviour as a
//! calibration profile — occupancy-binned predicted confidence plus a
//! mispredict rate — and asks, window after window, "does this still
//! look like the workload family the session declared?". The two pure
//! pieces of that question live here, unit-testable without a server:
//!
//! * [`occupancy_distance`] — how differently two profiles *distribute*
//!   their confidence mass (total-variation distance over bins);
//! * [`CusumDetector`] — a one-sided CUSUM accumulator that turns a
//!   stream of per-window divergence scores into a drift flag, tolerant
//!   of isolated noisy windows but sensitive to a sustained shift.

/// Total-variation distance between the bin-occupancy distributions of
/// two profiles, in `[0, 1]`: `0` for identically-shaped profiles, `1`
/// for disjoint support. Each profile is a slice of
/// `(instances, successes)` pairs (only the instance counts matter
/// here); a profile with no instances at all is treated as distance `0`
/// from anything — there is no evidence of divergence in an empty
/// window.
///
/// # Panics
///
/// Panics if the slices have different lengths (bin layouts must match,
/// as in [`merge_bin_pairs`](crate::merge_bin_pairs)).
pub fn occupancy_distance(a: &[(u64, u64)], b: &[(u64, u64)]) -> f64 {
    assert_eq!(a.len(), b.len(), "bin layouts must match");
    let total_a: u64 = a.iter().map(|&(n, _)| n).sum();
    let total_b: u64 = b.iter().map(|&(n, _)| n).sum();
    if total_a == 0 || total_b == 0 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (&(na, _), &(nb, _)) in a.iter().zip(b) {
        let fa = na as f64 / total_a as f64;
        let fb = nb as f64 / total_b as f64;
        acc += (fa - fb).abs();
    }
    acc / 2.0
}

/// One-sided CUSUM drift detector over per-window divergence scores.
///
/// Each completed window contributes its divergence `d`; the detector
/// accumulates `cusum = max(0, cusum + d - threshold)` and raises a
/// latched flag once the accumulator exceeds `limit`. Windows whose
/// divergence stays at or below `threshold` bleed the accumulator back
/// toward zero, so isolated noisy windows are forgiven while a
/// sustained regime shift crosses the limit within a few windows.
///
/// An optional warmup ([`with_warmup`](Self::with_warmup)) suppresses
/// accumulation for the first N windows after construction or
/// [`reset`](Self::reset) — useful when the divergence source itself
/// needs a few windows to establish a baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumDetector {
    threshold: f64,
    limit: f64,
    warmup: u64,
    warmup_left: u64,
    cusum: f64,
    last: f64,
    windows: u64,
    flagged_at: Option<u64>,
}

impl CusumDetector {
    /// Creates a detector: per-window divergence above `threshold`
    /// accumulates; the flag latches when the accumulator passes
    /// `limit`.
    pub fn new(threshold: f64, limit: f64) -> Self {
        CusumDetector {
            threshold,
            limit,
            warmup: 0,
            warmup_left: 0,
            cusum: 0.0,
            last: 0.0,
            windows: 0,
            flagged_at: None,
        }
    }

    /// Suppresses accumulation (and thus latching) for the first
    /// `windows` observed windows; [`reset`](Self::reset) re-arms the
    /// same warmup. Warmup windows still count toward
    /// [`windows`](Self::windows) and update
    /// [`last_divergence`](Self::last_divergence).
    pub fn with_warmup(mut self, windows: u64) -> Self {
        self.warmup = windows;
        self.warmup_left = windows;
        self
    }

    /// Feeds one completed window's divergence score; returns the
    /// (latched) flag state.
    pub fn observe(&mut self, divergence: f64) -> bool {
        self.windows += 1;
        self.last = divergence;
        if self.warmup_left > 0 {
            self.warmup_left -= 1;
            return self.flagged_at.is_some();
        }
        self.cusum = (self.cusum + divergence - self.threshold).max(0.0);
        if self.flagged_at.is_none() && self.cusum > self.limit {
            self.flagged_at = Some(self.windows);
        }
        self.flagged_at.is_some()
    }

    /// Returns the detector to its post-construction state: clears the
    /// accumulator, the latch, and the window count, and re-arms the
    /// configured warmup. The `threshold`/`limit`/warmup configuration
    /// is untouched.
    pub fn reset(&mut self) {
        self.warmup_left = self.warmup;
        self.cusum = 0.0;
        self.last = 0.0;
        self.windows = 0;
        self.flagged_at = None;
    }

    /// The current accumulator value.
    pub fn cusum(&self) -> f64 {
        self.cusum
    }

    /// Warmup windows still to be consumed before accumulation starts.
    pub fn warmup_remaining(&self) -> u64 {
        self.warmup_left
    }

    /// Overwrites the detector's dynamic state — accumulator, last
    /// divergence, window count, remaining warmup, and latch — from a
    /// snapshot taken via the read accessors. Configuration
    /// (`threshold`/`limit`/warmup length) is not part of the dynamic
    /// state and must match the snapshot's by construction; callers
    /// (e.g. session restore in `paco-core`) rebuild the detector from
    /// config first, then splice the dynamics back in.
    pub fn restore(
        &mut self,
        cusum: f64,
        last: f64,
        windows: u64,
        warmup_left: u64,
        flagged_at: Option<u64>,
    ) {
        self.cusum = cusum;
        self.last = last;
        self.windows = windows;
        self.warmup_left = warmup_left;
        self.flagged_at = flagged_at;
    }

    /// The most recent window's divergence score (0 before any window).
    pub fn last_divergence(&self) -> f64 {
        self.last
    }

    /// Windows observed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Whether the drift flag has latched.
    pub fn is_flagged(&self) -> bool {
        self.flagged_at.is_some()
    }

    /// The 1-based observed-window index at which the flag latched, if
    /// it has.
    pub fn flagged_at(&self) -> Option<u64> {
        self.flagged_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_profiles_have_zero_distance() {
        let a = [(10, 5), (0, 0), (90, 80)];
        assert_eq!(occupancy_distance(&a, &a), 0.0);
        // Scale invariance: occupancy is a distribution, not a count.
        let b = [(100, 1), (0, 0), (900, 2)];
        assert!(occupancy_distance(&a, &b) < 1e-12);
    }

    #[test]
    fn disjoint_profiles_have_unit_distance() {
        let a = [(100, 0), (0, 0)];
        let b = [(0, 0), (100, 0)];
        assert!((occupancy_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero_distance() {
        let a = [(0, 0), (0, 0)];
        let b = [(5, 1), (5, 5)];
        assert_eq!(occupancy_distance(&a, &b), 0.0);
        assert_eq!(occupancy_distance(&b, &a), 0.0);
    }

    #[test]
    #[should_panic(expected = "bin layouts")]
    fn mismatched_layouts_panic() {
        occupancy_distance(&[(1, 0)], &[(1, 0), (2, 0)]);
    }

    #[test]
    fn quiet_stream_never_flags() {
        let mut d = CusumDetector::new(0.1, 0.5);
        for _ in 0..10_000 {
            assert!(!d.observe(0.05));
        }
        assert_eq!(d.cusum(), 0.0);
        assert_eq!(d.flagged_at(), None);
    }

    #[test]
    fn sustained_shift_flags_and_latches() {
        let mut d = CusumDetector::new(0.1, 0.5);
        for _ in 0..20 {
            d.observe(0.02); // steady state
        }
        assert!(!d.is_flagged());
        let mut flagged_window = None;
        for _ in 0..10 {
            if d.observe(0.4) && flagged_window.is_none() {
                flagged_window = d.flagged_at();
            }
        }
        // 0.3 net gain per window crosses 0.5 on the second shifted
        // window: window 20 + 2.
        assert_eq!(flagged_window, Some(22));
        // The flag latches: quiet windows afterwards don't clear it.
        for _ in 0..100 {
            assert!(d.observe(0.0));
        }
        assert_eq!(d.flagged_at(), Some(22));
    }

    #[test]
    fn isolated_spike_is_forgiven() {
        let mut d = CusumDetector::new(0.1, 0.5);
        d.observe(0.55); // one bad window: cusum 0.45, under the limit
        assert!(!d.is_flagged());
        for _ in 0..5 {
            d.observe(0.0); // bleeds back to zero
        }
        assert_eq!(d.cusum(), 0.0);
        assert!(!d.is_flagged());
        assert_eq!(d.windows(), 6);
        assert_eq!(d.last_divergence(), 0.0);
    }
}
