//! Reliability diagrams and RMS error for probabilistic forecasts.

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityPoint {
    /// Predicted goodpath probability for this bin, in percent (0–100).
    pub predicted_pct: f64,
    /// Observed goodpath frequency among the bin's instances, in percent.
    pub observed_pct: f64,
    /// Number of instances that fell into the bin.
    pub instances: u64,
}

/// A reliability diagram: predicted probability vs observed frequency,
/// with per-bin occupancy (the paper's Figures 8–9).
#[derive(Debug, Clone)]
pub struct ReliabilityDiagram {
    points: Vec<ReliabilityPoint>,
    total_instances: u64,
}

impl ReliabilityDiagram {
    /// Builds a diagram from percent bins of `(instances, on-goodpath)`
    /// pairs; bin `i` holds instances whose predicted probability rounded
    /// to `i` percent.
    pub fn from_bins(bins: &[(u64, u64)]) -> Self {
        let mut points = Vec::new();
        let mut total = 0;
        for (i, &(n, good)) in bins.iter().enumerate() {
            if n == 0 {
                continue;
            }
            total += n;
            points.push(ReliabilityPoint {
                predicted_pct: i as f64 * 100.0 / (bins.len().max(2) - 1) as f64,
                observed_pct: 100.0 * good as f64 / n as f64,
                instances: n,
            });
        }
        ReliabilityDiagram {
            points,
            total_instances: total,
        }
    }

    /// Merges several runs' bins (e.g. the cumulative all-benchmarks
    /// diagram of Figure 9(f)).
    ///
    /// # Panics
    ///
    /// Panics if the bin vectors have different lengths.
    pub fn from_many(bins: &[Vec<(u64, u64)>]) -> Self {
        let mut merged = vec![(0u64, 0u64); bins.first().map(|b| b.len()).unwrap_or(0)];
        for b in bins {
            assert_eq!(b.len(), merged.len(), "bin vectors must align");
            for (m, x) in merged.iter_mut().zip(b) {
                m.0 += x.0;
                m.1 += x.1;
            }
        }
        Self::from_bins(&merged)
    }

    /// The non-empty bins.
    pub fn points(&self) -> &[ReliabilityPoint] {
        &self.points
    }

    /// Total instances across all bins.
    pub fn total_instances(&self) -> u64 {
        self.total_instances
    }

    /// Occurrence-weighted RMS error between predicted and observed
    /// goodpath probability, as a fraction (paper Table 7; 0.0377 mean).
    pub fn rms_error(&self) -> f64 {
        if self.total_instances == 0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for p in &self.points {
            let err = (p.predicted_pct - p.observed_pct) / 100.0;
            acc += p.instances as f64 * err * err;
        }
        (acc / self.total_instances as f64).sqrt()
    }

    /// Observed probability (percent) at a given predicted percent, if any
    /// instances landed there.
    pub fn observed_at(&self, predicted_pct: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.predicted_pct - predicted_pct as f64).abs() < 0.5)
            .map(|p| p.observed_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bins_with(entries: &[(usize, u64, u64)]) -> Vec<(u64, u64)> {
        let mut bins = vec![(0, 0); 101];
        for &(i, n, good) in entries {
            bins[i] = (n, good);
        }
        bins
    }

    #[test]
    fn perfect_calibration_zero_rms() {
        let d = ReliabilityDiagram::from_bins(&bins_with(&[
            (50, 1000, 500),
            (90, 1000, 900),
            (100, 1000, 1000),
        ]));
        assert!(d.rms_error() < 1e-9);
        assert_eq!(d.total_instances(), 3000);
        assert_eq!(d.points().len(), 3);
    }

    #[test]
    fn systematic_error_measured() {
        // Predicts 50%, observes 40%: RMS = 0.10.
        let d = ReliabilityDiagram::from_bins(&bins_with(&[(50, 1000, 400)]));
        assert!((d.rms_error() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn weighting_by_occupancy() {
        // A rarely-hit bad bin barely moves the weighted RMS.
        let d = ReliabilityDiagram::from_bins(&bins_with(&[
            (100, 99_000, 99_000),
            (0, 1_000, 1_000), // predicted 0%, observed 100%: error 1.0
        ]));
        let expected = (0.01f64).sqrt() * 1.0; // sqrt(1000/100000 * 1)
        assert!((d.rms_error() - expected).abs() < 1e-6, "{}", d.rms_error());
    }

    #[test]
    fn observed_at_lookup() {
        let d = ReliabilityDiagram::from_bins(&bins_with(&[(42, 10, 5)]));
        assert_eq!(d.observed_at(42), Some(50.0));
        assert_eq!(d.observed_at(43), None);
    }

    #[test]
    fn merge_accumulates() {
        let a = bins_with(&[(50, 100, 50)]);
        let b = bins_with(&[(50, 100, 100)]);
        let d = ReliabilityDiagram::from_many(&[a, b]);
        assert_eq!(d.observed_at(50), Some(75.0));
        assert_eq!(d.total_instances(), 200);
    }

    #[test]
    fn empty_diagram() {
        let d = ReliabilityDiagram::from_bins(&[]);
        assert_eq!(d.rms_error(), 0.0);
        assert!(d.points().is_empty());
    }
}
