//! Analysis of probabilistic forecast quality: reliability diagrams, RMS
//! error, SMT metrics and text rendering for the experiment harnesses.
//!
//! The paper evaluates PaCo as a *probabilistic forecast system* (§4.3):
//! predicted goodpath probabilities are binned and compared with the
//! observed frequency of actually being on the goodpath, visualized as
//! reliability diagrams (Murphy & Winkler) and summarized as an
//! occurrence-weighted RMS error.
//!
//! # Examples
//!
//! ```
//! use paco_analysis::ReliabilityDiagram;
//!
//! // A perfectly calibrated predictor: observed == predicted in each bin.
//! let mut bins = vec![(0u64, 0u64); 101];
//! bins[25] = (1000, 250);
//! bins[99] = (4000, 3960);
//! let d = ReliabilityDiagram::from_bins(&bins);
//! assert!(d.rms_error() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aggregate;
mod drift;
mod metrics;
mod reliability;
mod render;

pub use aggregate::{
    gating_tradeoff, mean, mean_tradeoff, merge_bin_pairs, percentile, percentile_sorted,
    GatingTradeoff, LatencySummary, RunPoint,
};
pub use drift::{occupancy_distance, CusumDetector};
pub use metrics::{badpath_reduction_pct, coverage_pct, hmwipc, perf_delta_pct};
pub use reliability::{ReliabilityDiagram, ReliabilityPoint};
pub use render::{render_diagram_ascii, Table};
