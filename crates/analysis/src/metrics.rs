//! Application-level metrics: SMT throughput/fairness and gating
//! effectiveness.

/// Harmonic mean of weighted IPCs (paper Eq. 6):
/// `HMWIPC = N / Σᵢ (SingleIPCᵢ / IPCᵢ)`.
///
/// The metric of choice for SMT fetch prioritization because it balances
/// throughput and fairness (Luo et al.).
///
/// # Examples
///
/// ```
/// use paco_analysis::hmwipc;
/// // Both threads achieve exactly half their standalone IPC:
/// let h = hmwipc(&[(2.0, 1.0), (1.0, 0.5)]);
/// assert!((h - 0.5).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `pairs` is empty or any IPC is non-positive.
pub fn hmwipc(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "need at least one thread");
    let mut denom = 0.0;
    for &(single, smt) in pairs {
        assert!(single > 0.0 && smt > 0.0, "IPCs must be positive");
        denom += single / smt;
    }
    pairs.len() as f64 / denom
}

/// Percentage reduction in wrong-path instructions executed, gated run vs
/// ungated baseline (paper Figure 10 y-axis).
///
/// Returns 0 when the baseline executed no wrong-path instructions.
pub fn badpath_reduction_pct(baseline_badpath: u64, gated_badpath: u64) -> f64 {
    if baseline_badpath == 0 {
        return 0.0;
    }
    100.0 * (baseline_badpath as f64 - gated_badpath as f64) / baseline_badpath as f64
}

/// Performance delta in percent (positive = loss), gated vs baseline
/// (paper Figure 10 x-axis).
///
/// # Panics
///
/// Panics if `baseline_ipc` is non-positive.
pub fn perf_delta_pct(baseline_ipc: f64, gated_ipc: f64) -> f64 {
    assert!(baseline_ipc > 0.0, "baseline IPC must be positive");
    100.0 * (baseline_ipc - gated_ipc) / baseline_ipc
}

/// Percentage of confidence-bearing events an estimator covered.
///
/// The accuracy methodology (paper §4) counts every fetch and execute
/// event as a potential confidence instance; an estimator that only
/// scores a subset (e.g. JRS covers conditional branches only) has
/// coverage below 100%. Returns 0 when there were no events.
///
/// # Examples
///
/// ```
/// use paco_analysis::coverage_pct;
/// assert_eq!(coverage_pct(50, 200), 25.0);
/// assert_eq!(coverage_pct(0, 0), 0.0);
/// ```
pub fn coverage_pct(instances: u64, events: u64) -> f64 {
    if events == 0 {
        return 0.0;
    }
    100.0 * instances as f64 / events as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmwipc_single_thread() {
        assert!((hmwipc(&[(2.0, 2.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hmwipc_penalizes_starvation() {
        // Fair split beats starving one thread even with equal throughput.
        let fair = hmwipc(&[(2.0, 1.0), (2.0, 1.0)]);
        let starved = hmwipc(&[(2.0, 1.9), (2.0, 0.1)]);
        assert!(fair > starved);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn hmwipc_rejects_zero_ipc() {
        hmwipc(&[(2.0, 0.0)]);
    }

    #[test]
    fn reduction_pct() {
        assert!((badpath_reduction_pct(1000, 680) - 32.0).abs() < 1e-12);
        assert_eq!(badpath_reduction_pct(0, 0), 0.0);
        // Gating can in principle increase badpath (negative reduction).
        assert!(badpath_reduction_pct(100, 110) < 0.0);
    }

    #[test]
    fn perf_delta() {
        assert!((perf_delta_pct(2.0, 1.9) - 5.0).abs() < 1e-12);
        // Slight speedups (the paper's cache-pollution effect) go negative.
        assert!(perf_delta_pct(2.0, 2.02) < 0.0);
    }
}
