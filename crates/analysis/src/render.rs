//! Text rendering for experiment output: aligned tables and ASCII
//! reliability diagrams.

use crate::ReliabilityDiagram;

/// A simple aligned text table builder for harness output.
///
/// # Examples
///
/// ```
/// use paco_analysis::Table;
/// let mut t = Table::new(&["bench", "rms"]);
/// t.row(&["gzip", "0.042"]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("gzip"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of already-owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let c = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{:<width$}  ", c, width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a reliability diagram as an ASCII scatter: predicted percent on
/// the x-axis, observed percent on the y-axis, `*` marks data points, `.`
/// the perfect-calibration diagonal.
pub fn render_diagram_ascii(diagram: &ReliabilityDiagram, width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(10);
    let mut grid = vec![vec![' '; width]; height];
    // Diagonal reference.
    // Index math on both axes: a range loop reads clearer than iterators.
    #[allow(clippy::needless_range_loop)]
    for x in 0..width {
        let y = height - 1 - (x * (height - 1)) / (width - 1);
        grid[y][x] = '.';
    }
    for p in diagram.points() {
        let x = ((p.predicted_pct / 100.0) * (width - 1) as f64).round() as usize;
        let y = height - 1 - ((p.observed_pct / 100.0) * (height - 1) as f64).round() as usize;
        grid[y.min(height - 1)][x.min(width - 1)] = '*';
    }
    let mut out = String::new();
    out.push_str("observed %\n");
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            "100 |"
        } else if i == height - 1 {
            "  0 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("     {}\n", "-".repeat(width)));
    out.push_str(&format!(
        "     0{}predicted %{}100\n",
        " ".repeat(width.saturating_sub(24) / 2),
        " ".repeat(width.saturating_sub(24) / 2)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "22"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "1" and "22" start at the same offset.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["x", "extra"]);
        t.row(&[]);
        let r = t.render();
        assert!(r.contains("extra"));
    }

    #[test]
    fn ascii_diagram_marks_points() {
        let mut bins = vec![(0u64, 0u64); 101];
        bins[50] = (100, 50);
        let d = ReliabilityDiagram::from_bins(&bins);
        let art = render_diagram_ascii(&d, 40, 20);
        assert!(art.contains('*'));
        assert!(art.contains('.'));
        assert!(art.contains("predicted %"));
    }
}
