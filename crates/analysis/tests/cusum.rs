//! Direct unit + property tests for [`paco_analysis::CusumDetector`].
//!
//! Until now the detector was only exercised indirectly through the
//! watch plane's splice tests; with `AdaptiveMrt` reusing it inside the
//! estimator hot path, its contract — warmup suppression, latch
//! monotonicity, reset semantics, and the exact threshold boundary —
//! deserves first-class coverage.

use paco_analysis::CusumDetector;
use proptest::prelude::*;

#[test]
fn warmup_suppresses_accumulation() {
    let mut d = CusumDetector::new(0.1, 0.5).with_warmup(4);
    assert_eq!(d.warmup_remaining(), 4);
    // Four wildly divergent windows inside warmup: no accumulation, no
    // latch — but the windows still count and `last` still updates.
    for i in 0..4 {
        assert!(!d.observe(10.0), "latched during warmup window {i}");
        assert_eq!(d.cusum(), 0.0);
    }
    assert_eq!(d.warmup_remaining(), 0);
    assert_eq!(d.windows(), 4);
    assert_eq!(d.last_divergence(), 10.0);
    // The first post-warmup window accumulates normally.
    d.observe(0.3);
    assert!((d.cusum() - 0.2).abs() < 1e-12);
}

#[test]
fn zero_warmup_matches_plain_constructor() {
    let mut plain = CusumDetector::new(0.05, 0.3);
    let mut warm = CusumDetector::new(0.05, 0.3).with_warmup(0);
    for i in 0..50 {
        let div = (i as f64 * 0.7).sin().abs() * 0.2;
        assert_eq!(plain.observe(div), warm.observe(div));
    }
    assert_eq!(plain, warm);
}

#[test]
fn reset_rearms_warmup_and_clears_latch() {
    let mut d = CusumDetector::new(0.1, 0.5).with_warmup(2);
    d.observe(0.0);
    d.observe(0.0);
    for _ in 0..10 {
        d.observe(0.4);
    }
    assert!(d.is_flagged());
    d.reset();
    assert!(!d.is_flagged());
    assert_eq!(d.flagged_at(), None);
    assert_eq!(d.cusum(), 0.0);
    assert_eq!(d.last_divergence(), 0.0);
    assert_eq!(d.windows(), 0);
    assert_eq!(d.warmup_remaining(), 2);
    // Post-reset behaviour is identical to a fresh detector's.
    let mut fresh = CusumDetector::new(0.1, 0.5).with_warmup(2);
    for i in 0..20 {
        let div = if i < 5 { 0.02 } else { 0.4 };
        assert_eq!(d.observe(div), fresh.observe(div));
    }
    assert_eq!(d, fresh);
}

#[test]
fn threshold_boundary_is_exclusive() {
    // Divergence exactly at the threshold contributes zero net gain:
    // the accumulator must stay at 0 forever.
    let mut at = CusumDetector::new(0.25, 0.5);
    for _ in 0..1000 {
        assert!(!at.observe(0.25));
        assert_eq!(at.cusum(), 0.0);
    }
    // The limit is likewise exclusive: an accumulator that lands
    // exactly on the limit has not latched yet.
    let mut d = CusumDetector::new(0.0, 0.5);
    assert!(!d.observe(0.5), "cusum == limit must not latch");
    assert_eq!(d.cusum(), 0.5);
    assert!(
        d.observe(1e-9),
        "any representable excess over limit latches"
    );
    assert_eq!(d.flagged_at(), Some(2));
}

#[test]
fn restore_round_trips_dynamic_state() {
    let mut d = CusumDetector::new(0.1, 0.5).with_warmup(3);
    d.observe(0.2);
    for _ in 0..8 {
        d.observe(0.37);
    }
    let (cusum, last, windows, warmup_left, flagged_at) = (
        d.cusum(),
        d.last_divergence(),
        d.windows(),
        d.warmup_remaining(),
        d.flagged_at(),
    );
    let mut rebuilt = CusumDetector::new(0.1, 0.5).with_warmup(3);
    rebuilt.restore(cusum, last, windows, warmup_left, flagged_at);
    assert_eq!(rebuilt, d);
    // And the restored detector continues exactly like the original.
    for i in 0..30 {
        let div = (i as f64 * 0.31).cos().abs() * 0.3;
        assert_eq!(d.observe(div), rebuilt.observe(div));
    }
    assert_eq!(rebuilt, d);
}

proptest! {
    // Latch monotonicity: once observe() returns true it never returns
    // false again, and flagged_at never changes after latching.
    #[test]
    fn latch_is_monotone(
        threshold in 0.0f64..0.3,
        limit in 0.05f64..1.0,
        warmup in 0u64..6,
        divs in proptest::collection::vec(0.0f64..1.0, 1..200),
    ) {
        let mut d = CusumDetector::new(threshold, limit).with_warmup(warmup);
        let mut latched = false;
        let mut latched_at = None;
        for &div in &divs {
            let now = d.observe(div);
            prop_assert!(now || !latched, "flag un-latched");
            if now && !latched {
                latched = true;
                latched_at = d.flagged_at();
                prop_assert_eq!(latched_at, Some(d.windows()));
            }
            if latched {
                prop_assert_eq!(d.flagged_at(), latched_at);
            }
        }
    }

    // The accumulator is always the max(0, ...) recurrence applied to
    // the post-warmup suffix — warmup windows contribute nothing.
    #[test]
    fn cusum_matches_reference_recurrence(
        threshold in 0.0f64..0.3,
        warmup in 0u64..5,
        divs in proptest::collection::vec(0.0f64..0.6, 0..100),
    ) {
        let mut d = CusumDetector::new(threshold, 1e9).with_warmup(warmup);
        let mut reference = 0.0f64;
        for (i, &div) in divs.iter().enumerate() {
            d.observe(div);
            if (i as u64) >= warmup {
                reference = (reference + div - threshold).max(0.0);
            }
            prop_assert!((d.cusum() - reference).abs() < 1e-9);
        }
        prop_assert_eq!(d.windows(), divs.len() as u64);
    }

    // reset() always returns the detector to a state indistinguishable
    // from freshly constructed, regardless of history.
    #[test]
    fn reset_equals_fresh(
        threshold in 0.0f64..0.3,
        limit in 0.05f64..1.0,
        warmup in 0u64..6,
        divs in proptest::collection::vec(0.0f64..1.0, 0..100),
    ) {
        let mut d = CusumDetector::new(threshold, limit).with_warmup(warmup);
        for &div in &divs {
            d.observe(div);
        }
        d.reset();
        prop_assert_eq!(d, CusumDetector::new(threshold, limit).with_warmup(warmup));
    }
}
