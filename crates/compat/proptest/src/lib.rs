//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so this local crate implements the (small) subset of the
//! proptest API that the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * strategies: unsigned-integer and `f64` ranges (half-open and
//!   inclusive), [`arbitrary::any`], [`strategy::Just`],
//!   [`collection::vec`], [`Strategy::prop_map`] and unions.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. A failing case panics with the generated inputs so it can be
//! reproduced; generation is fully deterministic per test (seeded from the
//! test's module path and name), so failures are stable across runs.
//!
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map

/// Deterministic pseudo-random generation for test cases.
pub mod test_runner {
    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the suite fast while
            // still sweeping a meaningful slice of the input space.
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` generated cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition rejected the inputs; the case is
        /// skipped.
        Reject,
    }

    impl TestCaseError {
        /// Constructs a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Constructs an input rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// The deterministic RNG driving strategy generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from a test's name (FNV-1a hash).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy (helper for [`prop_oneof!`](crate::prop_oneof)).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident / $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    macro_rules! uint_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as u128, self.end as u128);
                    assert!(hi > lo, "empty range strategy");
                    (lo + rng.next_u64() as u128 % (hi - lo)) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(hi >= lo, "empty range strategy");
                    (lo + rng.next_u64() as u128 % (hi - lo + 1)) as $t
                }
            }
        )*};
    }

    uint_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            // next_f64() is in [0, 1); nudge so the inclusive end is
            // reachable (the tests only need coverage, not exact bounds).
            let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + u * (hi - lo)
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generation strategy.
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.next_f64()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(PhantomData<T>);

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (move || {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), __case, __cfg.cases, __msg, __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), __l, __r,
                )),
            );
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l != __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), __l,
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($left, $right);
        if !(__l != __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{}\n  both: {:?}",
                    format!($($fmt)+), __l,
                )),
            );
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among several strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn maps_and_unions_generate(
            v in crate::collection::vec(prop_oneof![Just(1u8), 2u8..4], 0..8),
        ) {
            for x in v {
                prop_assert!(x == 1 || x == 2 || x == 3, "x = {x}");
            }
        }

        #[test]
        fn assume_rejects(n in 0u32..4) {
            prop_assume!(n != 2);
            prop_assert!(n != 2);
        }
    }
}
