//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so this local crate implements the subset of the criterion
//! API the workspace's benches use — and actually measures: each bench
//! runs a warmup iteration, then iterates until both a minimum iteration
//! count and a wall-clock target are met, and reports mean time per
//! iteration (plus element throughput when configured).
//!
//! Not implemented: statistical analysis, outlier detection, HTML reports,
//! baselines, and CLI filtering. `cargo bench` output is plain text.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in times each routine invocation individually, which is closest
/// to `PerIteration`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (records, instructions, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    iters: u64,
    elapsed: Duration,
}

impl Measurement {
    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

/// Per-invocation timing driver handed to bench closures.
#[derive(Debug)]
pub struct Bencher {
    min_iters: u64,
    target: Duration,
    measurement: Option<Measurement>,
}

impl Bencher {
    fn new(min_iters: u64, target: Duration) -> Self {
        Bencher {
            min_iters,
            target,
            measurement: None,
        }
    }

    /// Times repeated invocations of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warmup
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if iters >= self.min_iters && elapsed >= self.target {
                break;
            }
            if elapsed >= self.target * 20 {
                break; // safety valve for very slow bodies
            }
        }
        self.measurement = Some(Measurement {
            iters,
            elapsed: start.elapsed(),
        });
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warmup
        let mut elapsed = Duration::ZERO;
        let mut iters = 0u64;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
            if (iters >= self.min_iters && elapsed >= self.target) || elapsed >= self.target * 20 {
                break;
            }
        }
        self.measurement = Some(Measurement { iters, elapsed });
    }
}

/// The benchmark driver (one per `criterion_group!`).
#[derive(Debug)]
pub struct Criterion {
    min_iters: u64,
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            min_iters: 10,
            target: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, None, self.min_iters, self.target, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            min_iters: 10,
            target: Duration::from_millis(60),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample/throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    min_iters: u64,
    target: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.min_iters = n.max(1) as u64;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.min_iters, self.target, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    min_iters: u64,
    target: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::new(min_iters, target);
    f(&mut bencher);
    match bencher.measurement {
        None => println!("{id:<44} (no measurement: bench body never called iter)"),
        Some(m) => {
            let ns = m.ns_per_iter();
            let time = if ns < 1_000.0 {
                format!("{ns:.1} ns")
            } else if ns < 1_000_000.0 {
                format!("{:.2} µs", ns / 1_000.0)
            } else {
                format!("{:.3} ms", ns / 1_000_000.0)
            };
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.2} Melem/s", n as f64 * 1_000.0 / ns)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(
                        "  thrpt: {:.2} MiB/s",
                        n as f64 * 1e9 / ns / (1 << 20) as f64
                    )
                }
                None => String::new(),
            };
            println!("{id:<44} time: {time}/iter ({} iters){rate}", m.iters);
        }
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups (`harness = false` benches).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        b.iter(|| std::hint::black_box(2u64 + 2));
        let m = b.measurement.expect("measurement recorded");
        assert!(m.iters >= 3);
    }

    #[test]
    fn iter_batched_measures_routine_only() {
        let mut b = Bencher::new(2, Duration::from_millis(1));
        b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        assert!(b.measurement.is_some());
    }
}
