//! Property-based tests for the shared vocabulary types.

use paco_types::{GlobalHistory, Pc, Probability, SplitMix64};
use proptest::prelude::*;

proptest! {
    /// History bits always fit the configured width, under any outcome
    /// sequence.
    #[test]
    fn history_stays_in_width(
        len in 1u32..=64,
        outcomes in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let mut h = GlobalHistory::new(len);
        let mask = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
        for t in outcomes {
            h.push(t);
            prop_assert_eq!(h.bits() & !mask, 0);
        }
    }

    /// Restoring checkpointed bits reproduces the exact state.
    #[test]
    fn history_checkpoint_round_trip(
        len in 1u32..=64,
        prefix in proptest::collection::vec(any::<bool>(), 0..100),
        suffix in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let mut h = GlobalHistory::new(len);
        for t in prefix {
            h.push(t);
        }
        let cp = h.bits();
        for t in suffix {
            h.push(t);
        }
        h.restore(cp);
        prop_assert_eq!(h.bits(), cp);
    }

    /// The history window is exactly the last `len` outcomes.
    #[test]
    fn history_window_semantics(
        len in 1u32..=16,
        outcomes in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut h = GlobalHistory::new(len);
        for &t in &outcomes {
            h.push(t);
        }
        let mut expected = 0u64;
        for &t in outcomes.iter().rev().take(len as usize).rev() {
            expected = (expected << 1) | t as u64;
        }
        prop_assert_eq!(h.bits(), expected);
    }

    /// `below` is always within the bound, `next_f64` within [0, 1).
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
            let f = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&f));
        }
    }

    /// Forked streams are deterministic functions of the parent state.
    #[test]
    fn rng_fork_deterministic(seed in any::<u64>()) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..10 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
        // And the parents stay in lockstep too.
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Probability construction accepts exactly [0, 1].
    #[test]
    fn probability_validation(v in -1.0f64..=2.0) {
        let r = Probability::new(v);
        prop_assert_eq!(r.is_ok(), (0.0..=1.0).contains(&v));
        if let Ok(p) = r {
            prop_assert!((p.complement().value() - (1.0 - v)).abs() < 1e-12);
        }
    }

    /// from_ratio yields hits/total for any non-degenerate pair.
    #[test]
    fn probability_from_ratio(hits in 0u64..1000, extra in 0u64..1000) {
        let total = hits + extra;
        if total == 0 {
            prop_assert_eq!(Probability::from_ratio(hits, total), None);
        } else {
            let p = Probability::from_ratio(hits, total).unwrap();
            prop_assert!((p.value() - hits as f64 / total as f64).abs() < 1e-12);
        }
    }

    /// PC block addresses are monotone in the address and collapse within
    /// a block.
    #[test]
    fn pc_block_semantics(addr in 0u64..u64::MAX / 2, log2 in 4u32..12) {
        let pc = Pc::new(addr);
        let same_block = Pc::new(addr ^ (addr & ((1 << log2) - 1)));
        prop_assert_eq!(pc.block(log2), same_block.block(log2));
        let next_block = Pc::new((addr | ((1 << log2) - 1)) + 1);
        prop_assert_eq!(pc.block(log2) + 1, next_block.block(log2));
    }
}
