//! Global branch-history shift register.

/// A global branch-history register of configurable length (≤ 64 bits).
///
/// Branch predictors (gshare, selector) and the JRS confidence table all
/// hash with some number of global history bits; the paper uses 8 bits for
/// the tournament predictor.
///
/// # Examples
///
/// ```
/// use paco_types::GlobalHistory;
/// let mut h = GlobalHistory::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.bits(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u64,
    len: u32,
    mask: u64,
}

impl GlobalHistory {
    /// Creates an all-zeros history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or greater than 64.
    pub fn new(len: u32) -> Self {
        assert!((1..=64).contains(&len), "history length must be 1..=64");
        let mask = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        GlobalHistory { bits: 0, len, mask }
    }

    /// Shifts in a branch outcome (`true` = taken) as the youngest bit.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.bits = ((self.bits << 1) | taken as u64) & self.mask;
    }

    /// Returns the current history bits (youngest outcome in bit 0).
    #[inline]
    pub const fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of history bits tracked.
    #[inline]
    pub const fn len(&self) -> u32 {
        self.len
    }

    /// Whether no outcome has been recorded yet (history is all zeros).
    ///
    /// Note this cannot distinguish "empty" from "all not-taken"; it exists
    /// for the conventional `len`/`is_empty` pairing.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Replaces the raw history bits (used when restoring a checkpoint after
    /// a branch misprediction).
    #[inline]
    pub fn restore(&mut self, bits: u64) {
        self.bits = bits & self.mask;
    }
}

impl Default for GlobalHistory {
    /// An 8-bit history, matching the paper's tournament predictor.
    fn default() -> Self {
        GlobalHistory::new(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_in_lsb_first() {
        let mut h = GlobalHistory::new(3);
        h.push(true);
        assert_eq!(h.bits(), 0b1);
        h.push(true);
        assert_eq!(h.bits(), 0b11);
        h.push(false);
        assert_eq!(h.bits(), 0b110);
        h.push(true);
        // Oldest bit falls off the 3-bit window.
        assert_eq!(h.bits(), 0b101);
    }

    #[test]
    fn restore_masks_to_width() {
        let mut h = GlobalHistory::new(4);
        h.restore(0xff);
        assert_eq!(h.bits(), 0xf);
    }

    #[test]
    fn full_width_history() {
        let mut h = GlobalHistory::new(64);
        for _ in 0..80 {
            h.push(true);
        }
        assert_eq!(h.bits(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn zero_length_panics() {
        let _ = GlobalHistory::new(0);
    }

    #[test]
    fn default_is_eight_bits() {
        assert_eq!(GlobalHistory::default().len(), 8);
    }
}
