//! Shared vocabulary types for the PaCo reproduction.
//!
//! This crate holds the small, dependency-free types that every other crate
//! in the workspace speaks: program counters, dynamic instruction
//! descriptors, branch outcomes, global-history registers, probabilities,
//! and a deterministic pseudo-random number generator.
//!
//! # Examples
//!
//! ```
//! use paco_types::{Pc, SplitMix64, Probability};
//!
//! let pc = Pc::new(0x4000_1000);
//! assert_eq!(pc.block(6), 0x4000_1000 >> 6);
//!
//! let mut rng = SplitMix64::new(42);
//! let p = Probability::new(0.25).unwrap();
//! let hits = (0..10_000).filter(|_| rng.chance(p)).count();
//! assert!((hits as f64 - 2_500.0).abs() < 250.0);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
pub mod canon;
pub mod fingerprint;
mod history;
mod instr;
mod pc;
mod prob;
mod rng;
pub mod wire;

pub use batch::EventBatch;
pub use history::GlobalHistory;
pub use instr::{ControlKind, DynInstr, InstrClass, MemAccess};
pub use pc::Pc;
pub use prob::{Probability, ProbabilityError};
pub use rng::SplitMix64;

/// A simulation cycle count.
pub type Cycle = u64;

/// A hardware thread identifier in SMT configurations.
///
/// The paper's SMT experiments use two threads; we allow up to
/// [`ThreadId::MAX_THREADS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// Maximum number of hardware threads supported by the simulator.
    pub const MAX_THREADS: usize = 8;

    /// Returns the thread id as an index usable for per-thread arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_id_index_round_trips() {
        for i in 0..ThreadId::MAX_THREADS as u8 {
            assert_eq!(ThreadId(i).index(), i as usize);
        }
    }

    #[test]
    fn thread_id_displays_compactly() {
        assert_eq!(ThreadId(1).to_string(), "T1");
    }
}
