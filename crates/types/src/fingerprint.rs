//! Identity of the running executable.
//!
//! A content hash names a *description* of a computation; this fingerprint
//! names the *code* performing it. The `paco-bench` result cache stores it
//! so a rebuild invalidates prior entries, and the `paco-serve` protocol
//! exchanges it so a client/server build mismatch is visible instead of a
//! silent source of confusion (`paco-bench version`, `paco-served
//! version` and `paco-load version` all print it).

use std::sync::OnceLock;

/// A fingerprint of the code that produces results: the FNV-1a hash of
/// the current executable's bytes, computed once per process.
///
/// Any rebuild — bug fix, timing change, new statistic — yields a
/// different binary and therefore a different fingerprint. Falls back to
/// a hash of the crate version if the executable cannot be read (identity
/// is then only per release, which degrades cache freshness and mismatch
/// detection but never correctness).
pub fn code_fingerprint() -> u64 {
    static FINGERPRINT: OnceLock<u64> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| {
        std::env::current_exe()
            .ok()
            .and_then(|exe| std::fs::read(exe).ok())
            .map(|bytes| crate::canon::fnv1a64(&bytes))
            .unwrap_or_else(|| {
                crate::canon::fnv1a64(concat!("paco-types/", env!("CARGO_PKG_VERSION")).as_bytes())
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(code_fingerprint(), code_fingerprint());
        assert_ne!(code_fingerprint(), 0);
    }
}
