//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace flows from an explicitly seeded
//! [`SplitMix64`] so experiments are reproducible bit-for-bit.

use crate::Probability;

/// A SplitMix64 pseudo-random number generator.
///
/// Small, fast, and statistically solid for simulation workloads; also used
/// to derive independent child streams (`fork`) so that, e.g., the
/// wrong-path generator does not perturb the goodpath stream.
///
/// # Examples
///
/// ```
/// use paco_types::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for simulation bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: Probability) -> bool {
        self.next_f64() < p.value()
    }

    /// Bernoulli trial from a raw `f64` probability (clamped into `[0,1]`).
    #[inline]
    pub fn chance_f64(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator.
    ///
    /// The child stream is decorrelated from the parent by mixing in a
    /// fresh draw; advancing the parent by one step.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xa5a5_5a5a_dead_beef)
    }

    /// Chooses an index according to a slice of non-negative weights.
    ///
    /// Returns `None` when the weights sum to zero or the slice is empty.
    pub fn weighted_choice(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 || weights.is_empty() {
            return None;
        }
        let mut draw = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if draw < w {
                return Some(i);
            }
            draw -= w;
        }
        Some(weights.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(77);
        for _ in 0..10_000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut rng = SplitMix64::new(5);
        let p = Probability::new(0.3).unwrap();
        let hits = (0..100_000).filter(|_| rng.chance(p)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fork_produces_decorrelated_stream() {
        let mut parent = SplitMix64::new(42);
        let mut child = parent.fork();
        // Child and parent should not produce identical sequences.
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = SplitMix64::new(11);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_choice(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_choice_empty_or_zero_is_none() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(rng.weighted_choice(&[]), None);
        assert_eq!(rng.weighted_choice(&[0.0, 0.0]), None);
    }
}
