//! Struct-of-arrays batches of dynamic branch events.
//!
//! The streaming confidence hot path (`paco-served`, the offline
//! pipeline replay, the `hotpath` bench lanes) processes events in
//! frames of a few hundred. Handling them as a `Vec<DynInstr>` pays for
//! a 56-byte array-of-structs element — most of it (`deps`, `mem`)
//! never read by the confidence pipeline — plus an allocation per
//! frame. An [`EventBatch`] keeps the per-event fields the pipeline
//! actually touches in parallel arrays (PC, class code, outcome,
//! target), is reusable across frames ([`clear`](EventBatch::clear)
//! keeps capacity), and scans cache-line-densely.
//!
//! The dropped fields are deliberate: dependency distances and memory
//! addresses drive the *timing* simulator, not the event-stream
//! confidence semantics — an [`EventBatch`] is a batch of *branch
//! events*, not of full dynamic instructions. Round-tripping a
//! `DynInstr` through a batch therefore zeroes `deps` and `mem`.

use crate::{ControlKind, DynInstr, InstrClass, Pc};

/// The class code of a conditional branch (`InstrClass::code`).
const CODE_CONDITIONAL: u8 = InstrClass::Control(ControlKind::Conditional).code();
/// The largest control-flow class code; control codes are contiguous
/// (`Conditional..=Return`, asserted by the `paco-types` unit tests).
const CODE_CONTROL_MAX: u8 = InstrClass::Control(ControlKind::Return).code();

/// Control classification of a class code: `Some(true)` conditional,
/// `Some(false)` other control flow, `None` non-control.
#[inline]
const fn classify(code: u8) -> Option<bool> {
    if code == CODE_CONDITIONAL {
        Some(true)
    } else if code > CODE_CONDITIONAL && code <= CODE_CONTROL_MAX {
        Some(false)
    } else {
        None
    }
}

/// A struct-of-arrays batch of dynamic branch events.
///
/// # Examples
///
/// ```
/// use paco_types::{DynInstr, EventBatch, Pc};
///
/// let mut batch = EventBatch::new();
/// batch.push(&DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)));
/// batch.push(&DynInstr::alu(Pc::new(0x1004)));
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.control_at(0), Some(true)); // conditional
/// assert_eq!(batch.control_at(1), None); // not control flow
/// batch.clear(); // reusable: capacity is retained
/// assert!(batch.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBatch {
    pcs: Vec<u64>,
    classes: Vec<u8>,
    taken: Vec<bool>,
    targets: Vec<u64>,
}

impl EventBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        EventBatch::default()
    }

    /// Creates an empty batch with room for `n` events.
    pub fn with_capacity(n: usize) -> Self {
        EventBatch {
            pcs: Vec::with_capacity(n),
            classes: Vec::with_capacity(n),
            taken: Vec::with_capacity(n),
            targets: Vec::with_capacity(n),
        }
    }

    /// Number of events in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Whether the batch holds no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Empties the batch, retaining capacity for reuse.
    pub fn clear(&mut self) {
        self.pcs.clear();
        self.classes.clear();
        self.taken.clear();
        self.targets.clear();
    }

    /// Reserves room for `n` additional events.
    pub fn reserve(&mut self, n: usize) {
        self.pcs.reserve(n);
        self.classes.reserve(n);
        self.taken.reserve(n);
        self.targets.reserve(n);
    }

    /// Appends one event from its raw fields.
    #[inline]
    pub fn push_raw(&mut self, pc: u64, class: InstrClass, taken: bool, target: u64) {
        self.pcs.push(pc);
        self.classes.push(class.code());
        self.taken.push(taken);
        self.targets.push(target);
    }

    /// Appends one event from a [`DynInstr`] (dropping `deps`/`mem`, see
    /// the module docs).
    #[inline]
    pub fn push(&mut self, instr: &DynInstr) {
        self.push_raw(
            instr.pc.addr(),
            instr.class,
            instr.taken,
            instr.target.addr(),
        );
    }

    /// Appends every instruction of a slice.
    pub fn extend_from_instrs(&mut self, instrs: &[DynInstr]) {
        self.reserve(instrs.len());
        for i in instrs {
            self.push(i);
        }
    }

    /// The event's program counter.
    #[inline]
    pub fn pc(&self, i: usize) -> Pc {
        Pc::new(self.pcs[i])
    }

    /// The event's architectural branch outcome (`false` for non-control
    /// events).
    #[inline]
    pub fn taken(&self, i: usize) -> bool {
        self.taken[i]
    }

    /// The event's taken-target address.
    #[inline]
    pub fn target(&self, i: usize) -> Pc {
        Pc::new(self.targets[i])
    }

    /// The event's functional class.
    #[inline]
    pub fn class(&self, i: usize) -> InstrClass {
        InstrClass::from_code(self.classes[i]).expect("batch holds only valid class codes")
    }

    /// Control-flow classification of event `i`, the hot-lane dispatch
    /// test: `Some(true)` for a conditional branch, `Some(false)` for
    /// other control flow (jump/call/indirect/return), `None` for
    /// non-control instructions.
    #[inline]
    pub fn control_at(&self, i: usize) -> Option<bool> {
        classify(self.classes[i])
    }

    /// Iterates `(pc, control classification, taken)` triples — the
    /// fields the confidence hot loop consumes — over zipped column
    /// slices, so the per-event bounds checks of the indexed accessors
    /// disappear. The classification is [`control_at`](Self::control_at).
    pub fn lanes(&self) -> impl Iterator<Item = (Pc, Option<bool>, bool)> + '_ {
        self.pcs
            .iter()
            .zip(&self.classes)
            .zip(&self.taken)
            .map(|((&pc, &code), &taken)| (Pc::new(pc), classify(code), taken))
    }

    /// Reconstructs event `i` as a [`DynInstr`] (with empty `deps`/`mem`).
    pub fn get(&self, i: usize) -> DynInstr {
        DynInstr {
            pc: self.pc(i),
            class: self.class(i),
            deps: [0, 0],
            mem: None,
            taken: self.taken[i],
            target: self.target(i),
        }
    }

    /// Iterates the batch as reconstructed [`DynInstr`]s.
    pub fn iter(&self) -> impl Iterator<Item = DynInstr> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl From<&[DynInstr]> for EventBatch {
    fn from(instrs: &[DynInstr]) -> Self {
        let mut batch = EventBatch::with_capacity(instrs.len());
        batch.extend_from_instrs(instrs);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DynInstr> {
        vec![
            DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)),
            DynInstr::alu(Pc::new(0x2000)),
            DynInstr {
                pc: Pc::new(0x2004),
                class: InstrClass::Control(ControlKind::Return),
                deps: [0, 0],
                mem: None,
                taken: true,
                target: Pc::new(0x1004),
            },
            DynInstr::branch(Pc::new(0x1004), false, Pc::new(0x3000)),
        ]
    }

    #[test]
    fn round_trips_event_fields() {
        let instrs = sample();
        let batch = EventBatch::from(instrs.as_slice());
        assert_eq!(batch.len(), instrs.len());
        for (i, instr) in instrs.iter().enumerate() {
            let back = batch.get(i);
            assert_eq!(back.pc, instr.pc);
            assert_eq!(back.class, instr.class);
            assert_eq!(back.taken, instr.taken);
            assert_eq!(back.target, instr.target);
        }
        let collected: Vec<DynInstr> = batch.iter().collect();
        assert_eq!(collected.len(), instrs.len());
    }

    #[test]
    fn control_classification_matches_instr_class() {
        let instrs = sample();
        let batch = EventBatch::from(instrs.as_slice());
        for (i, instr) in instrs.iter().enumerate() {
            let expect = match instr.class {
                InstrClass::Control(ControlKind::Conditional) => Some(true),
                InstrClass::Control(_) => Some(false),
                _ => None,
            };
            assert_eq!(batch.control_at(i), expect, "event {i}");
        }
    }

    #[test]
    fn deps_and_mem_are_dropped_by_design() {
        let instr = DynInstr::alu(Pc::new(0x40))
            .with_deps(1, 2)
            .with_mem(0xbeef);
        let mut batch = EventBatch::new();
        batch.push(&instr);
        let back = batch.get(0);
        assert_eq!(back.deps, [0, 0]);
        assert_eq!(back.mem, None);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut batch = EventBatch::from(sample().as_slice());
        let cap = batch.pcs.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.pcs.capacity(), cap);
        batch.push(&DynInstr::alu(Pc::new(0)));
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn every_class_code_survives_the_batch() {
        let classes = [
            InstrClass::Alu,
            InstrClass::MulDiv,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::Nop,
            InstrClass::Control(ControlKind::Conditional),
            InstrClass::Control(ControlKind::Jump),
            InstrClass::Control(ControlKind::Call),
            InstrClass::Control(ControlKind::Indirect),
            InstrClass::Control(ControlKind::Return),
        ];
        let mut batch = EventBatch::new();
        for (i, class) in classes.iter().enumerate() {
            batch.push_raw(i as u64 * 4, *class, false, 0);
        }
        for (i, class) in classes.iter().enumerate() {
            assert_eq!(batch.class(i), *class);
        }
    }
}
