//! Dynamic instruction descriptors shared between the workload models and
//! the timing simulator.

use crate::Pc;

/// Functional class of an instruction, determining which functional unit it
/// needs and its execution latency class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Single-cycle integer ALU operation.
    Alu,
    /// Multi-cycle integer multiply/divide.
    MulDiv,
    /// Memory load (latency depends on the data-cache hierarchy).
    Load,
    /// Memory store (retires through the store queue; 1-cycle execute).
    Store,
    /// Control-flow instruction; the detailed kind is in [`ControlKind`].
    Control(ControlKind),
    /// No-op / other (consumes a slot but no FU result).
    Nop,
}

impl InstrClass {
    /// Whether this instruction is any kind of control flow.
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(self, InstrClass::Control(_))
    }

    /// Whether this instruction is a conditional branch.
    ///
    /// Only conditional branches receive MDC (confidence) values in the JRS
    /// scheme; the paper leans on this for the `perlbmk` pathology.
    #[inline]
    pub fn is_conditional_branch(self) -> bool {
        matches!(self, InstrClass::Control(ControlKind::Conditional))
    }

    /// Whether the instruction reads memory.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, InstrClass::Load)
    }

    /// Whether the instruction writes memory.
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, InstrClass::Store)
    }

    /// A stable single-byte code for this class, used by on-disk trace
    /// formats. Inverse of [`from_code`](Self::from_code).
    #[inline]
    pub const fn code(self) -> u8 {
        match self {
            InstrClass::Alu => 0,
            InstrClass::MulDiv => 1,
            InstrClass::Load => 2,
            InstrClass::Store => 3,
            InstrClass::Nop => 4,
            InstrClass::Control(ControlKind::Conditional) => 5,
            InstrClass::Control(ControlKind::Jump) => 6,
            InstrClass::Control(ControlKind::Call) => 7,
            InstrClass::Control(ControlKind::Indirect) => 8,
            InstrClass::Control(ControlKind::Return) => 9,
        }
    }

    /// Decodes a class code produced by [`code`](Self::code); `None` for
    /// codes no class maps to (corrupt or future-version trace data).
    #[inline]
    pub const fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => InstrClass::Alu,
            1 => InstrClass::MulDiv,
            2 => InstrClass::Load,
            3 => InstrClass::Store,
            4 => InstrClass::Nop,
            5 => InstrClass::Control(ControlKind::Conditional),
            6 => InstrClass::Control(ControlKind::Jump),
            7 => InstrClass::Control(ControlKind::Call),
            8 => InstrClass::Control(ControlKind::Indirect),
            9 => InstrClass::Control(ControlKind::Return),
            _ => return None,
        })
    }
}

/// The detailed kind of a control-flow instruction.
///
/// The paper's "overall mispredict rate" covers *all* control flow
/// (conditional branches, jumps, indirect jumps, calls, returns), while the
/// JRS confidence table covers only conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump (always correctly predicted once decoded).
    Jump,
    /// Direct function call (pushes the return address).
    Call,
    /// Indirect jump or indirect function call (BTB-predicted target).
    Indirect,
    /// Function return (predicted by the return-address stack).
    Return,
}

/// A memory access descriptor attached to loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Effective virtual address of the access.
    pub addr: u64,
}

/// A dynamic instruction as produced by a workload model.
///
/// This is the unit the trace-driven simulator consumes. Dependencies are
/// expressed as *distances*: `dep[i] = d` means this instruction reads the
/// result of the instruction `d` positions earlier in program order
/// (`d == 0` means no dependency). Distances keep the descriptor compact and
/// position-independent, which matters because wrong-path instructions are
/// spliced into the stream at arbitrary points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInstr {
    /// Program counter of this instruction.
    pub pc: Pc,
    /// Functional class.
    pub class: InstrClass,
    /// Up to two input dependency distances (0 = unused).
    pub deps: [u32; 2],
    /// Memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// For control flow: was the branch actually taken?
    /// Non-control instructions leave this `false`.
    pub taken: bool,
    /// For control flow: the actual target when taken.
    pub target: Pc,
}

impl DynInstr {
    /// Creates a plain single-cycle ALU instruction with no dependencies.
    pub fn alu(pc: Pc) -> Self {
        DynInstr {
            pc,
            class: InstrClass::Alu,
            deps: [0, 0],
            mem: None,
            taken: false,
            target: Pc::default(),
        }
    }

    /// Creates a conditional branch with the given outcome and taken-target.
    pub fn branch(pc: Pc, taken: bool, target: Pc) -> Self {
        DynInstr {
            pc,
            class: InstrClass::Control(ControlKind::Conditional),
            deps: [0, 0],
            mem: None,
            taken,
            target,
        }
    }

    /// Returns the address of the instruction that follows this one on the
    /// *actual* (correct) path.
    #[inline]
    pub fn successor(&self) -> Pc {
        if self.class.is_control() && self.taken {
            self.target
        } else {
            self.pc.next()
        }
    }

    /// Sets dependency distances, returning `self` builder-style.
    pub fn with_deps(mut self, d0: u32, d1: u32) -> Self {
        self.deps = [d0, d1];
        self
    }

    /// Attaches a memory access, returning `self` builder-style.
    pub fn with_mem(mut self, addr: u64) -> Self {
        self.mem = Some(MemAccess { addr });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(InstrClass::Control(ControlKind::Conditional).is_control());
        assert!(InstrClass::Control(ControlKind::Conditional).is_conditional_branch());
        assert!(!InstrClass::Control(ControlKind::Indirect).is_conditional_branch());
        assert!(InstrClass::Load.is_load());
        assert!(InstrClass::Store.is_store());
        assert!(!InstrClass::Alu.is_control());
    }

    #[test]
    fn successor_follows_taken_branches() {
        let target = Pc::new(0x2000);
        let b = DynInstr::branch(Pc::new(0x1000), true, target);
        assert_eq!(b.successor(), target);

        let nt = DynInstr::branch(Pc::new(0x1000), false, target);
        assert_eq!(nt.successor(), Pc::new(0x1004));

        let a = DynInstr::alu(Pc::new(0x1000));
        assert_eq!(a.successor(), Pc::new(0x1004));
    }

    #[test]
    fn class_codes_round_trip() {
        let all = [
            InstrClass::Alu,
            InstrClass::MulDiv,
            InstrClass::Load,
            InstrClass::Store,
            InstrClass::Nop,
            InstrClass::Control(ControlKind::Conditional),
            InstrClass::Control(ControlKind::Jump),
            InstrClass::Control(ControlKind::Call),
            InstrClass::Control(ControlKind::Indirect),
            InstrClass::Control(ControlKind::Return),
        ];
        for (i, class) in all.iter().enumerate() {
            assert_eq!(class.code(), i as u8);
            assert_eq!(InstrClass::from_code(class.code()), Some(*class));
        }
        assert_eq!(InstrClass::from_code(10), None);
        assert_eq!(InstrClass::from_code(255), None);
    }

    #[test]
    fn builders_attach_fields() {
        let i = DynInstr::alu(Pc::new(0)).with_deps(1, 3).with_mem(0xbeef);
        assert_eq!(i.deps, [1, 3]);
        assert_eq!(i.mem, Some(MemAccess { addr: 0xbeef }));
    }
}
