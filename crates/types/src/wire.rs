//! Shared wire-codec primitives: LEB128 varints, ZigZag signed mapping
//! and CRC-32 checksums.
//!
//! Three subsystems speak the same low-level byte vocabulary — the
//! `paco-trace` on-disk format, the `paco-bench` result cache and the
//! `paco-serve` network protocol — so the primitives live here, in the
//! dependency-free vocabulary crate, with a single implementation and a
//! single test suite. `paco-trace` re-exports them for compatibility.
//!
//! # Examples
//!
//! ```
//! use paco_types::wire::{read_uvarint, write_uvarint, zigzag, unzigzag, crc32};
//!
//! let mut buf = Vec::new();
//! write_uvarint(&mut buf, zigzag(-2));
//! let mut s = buf.as_slice();
//! assert_eq!(read_uvarint(&mut s).map(unzigzag), Some(-2));
//! assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
//! ```

/// Appends `v` as a LEB128 varint.
#[inline]
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `input`, advancing it.
/// `None` on truncation or a varint longer than 10 bytes.
#[inline]
pub fn read_uvarint(input: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &byte) in input.iter().take(10).enumerate() {
        v |= ((byte & 0x7f) as u64) << (7 * i);
        if byte & 0x80 == 0 {
            *input = &input[i + 1..];
            return Some(v);
        }
    }
    None
}

/// Maps a signed delta onto the unsigned varint domain (small magnitudes
/// of either sign encode in one byte).
#[inline]
pub const fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub const fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `data`, used as the payload checksum by every
/// framed format in the workspace.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(!0u32, data) ^ !0u32
}

/// Feeds `data` into a running CRC-32 state (start from `!0u32`, finish
/// by XORing with `!0u32`); lets framed formats checksum a header byte
/// plus a payload without concatenating them.
pub fn crc32_update(mut state: u32, data: &[u8]) -> u32 {
    for &b in data {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xff) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips() {
        let mut buf = Vec::new();
        let values = [
            0,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            write_uvarint(&mut buf, v);
            let mut s = buf.as_slice();
            assert_eq!(read_uvarint(&mut s), Some(v));
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_is_compact_for_small_values() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 8); // a sequential +4 PC delta, zigzagged
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn varint_rejects_truncation() {
        let mut s: &[u8] = &[0x80, 0x80];
        assert_eq!(read_uvarint(&mut s), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, 4, i64::MAX, i64::MIN, -123_456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_update_chains_like_concatenation() {
        let state = crc32_update(!0u32, b"12345");
        assert_eq!(crc32_update(state, b"6789") ^ !0u32, crc32(b"123456789"));
    }
}
