//! A validated probability type.

use std::fmt;

/// Error returned when constructing a [`Probability`] from a value outside
/// `[0, 1]` or from a NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError {
    value: f64,
}

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a probability in [0, 1]", self.value)
    }
}

impl std::error::Error for ProbabilityError {}

/// A probability, statically guaranteed to lie in `[0, 1]` and be non-NaN.
///
/// # Examples
///
/// ```
/// use paco_types::Probability;
/// let p = Probability::new(0.25)?;
/// assert_eq!(p.value(), 0.25);
/// assert!(Probability::new(1.5).is_err());
/// # Ok::<(), paco_types::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

impl Probability {
    /// The certain event.
    pub const ONE: Probability = Probability(1.0);
    /// The impossible event.
    pub const ZERO: Probability = Probability(0.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ProbabilityError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            Err(ProbabilityError { value })
        } else {
            Ok(Probability(value))
        }
    }

    /// Creates a probability, clamping out-of-range values into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "probability must not be NaN");
        Probability(value.clamp(0.0, 1.0))
    }

    /// Returns the inner value.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The complement `1 - p`.
    #[inline]
    pub fn complement(self) -> Self {
        Probability(1.0 - self.0)
    }

    /// Product of two probabilities (independent conjunction).
    #[inline]
    pub fn and(self, other: Probability) -> Self {
        Probability(self.0 * other.0)
    }

    /// Expresses the probability in percent (0–100).
    #[inline]
    pub fn percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Builds a probability from a ratio of counts, `hits / total`.
    ///
    /// Returns `None` when `total == 0` (the rate is undefined).
    pub fn from_ratio(hits: u64, total: u64) -> Option<Self> {
        if total == 0 {
            None
        } else {
            Some(Probability(hits as f64 / total as f64))
        }
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
    }

    #[test]
    fn clamps() {
        assert_eq!(Probability::clamped(-3.0), Probability::ZERO);
        assert_eq!(Probability::clamped(3.0), Probability::ONE);
        assert_eq!(Probability::clamped(0.5).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamp_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn complement_and_product() {
        let p = Probability::new(0.25).unwrap();
        assert!((p.complement().value() - 0.75).abs() < 1e-12);
        let q = Probability::new(0.5).unwrap();
        assert!((p.and(q).value() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn ratio_handles_zero_total() {
        assert_eq!(Probability::from_ratio(1, 0), None);
        assert_eq!(Probability::from_ratio(1, 4).unwrap().value(), 0.25);
    }

    #[test]
    fn error_is_displayable() {
        let err = Probability::new(2.0).unwrap_err();
        assert!(err.to_string().contains("not a probability"));
    }
}
