//! Program counter newtype.

/// A 64-bit program counter.
///
/// A newtype rather than a bare `u64` so that addresses, counters and hashes
/// cannot be confused with one another at API boundaries.
///
/// # Examples
///
/// ```
/// use paco_types::Pc;
/// let pc = Pc::new(0x1000);
/// assert_eq!(pc.next(), Pc::new(0x1004));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Architectural instruction size in bytes (the paper simulates a
    /// MIPS-like fixed-width ISA).
    pub const INSTR_BYTES: u64 = 4;

    /// Creates a program counter from a raw address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// Returns the raw 64-bit address.
    #[inline]
    pub const fn addr(self) -> u64 {
        self.0
    }

    /// The PC of the next sequential instruction.
    #[inline]
    pub const fn next(self) -> Self {
        Pc(self.0 + Self::INSTR_BYTES)
    }

    /// The PC advanced by `n` sequential instructions.
    #[inline]
    pub const fn offset(self, n: u64) -> Self {
        Pc(self.0 + n * Self::INSTR_BYTES)
    }

    /// The cache-block address of this PC for a block of `2^log2_bytes` bytes.
    ///
    /// Used by the instruction cache model.
    #[inline]
    pub const fn block(self, log2_bytes: u32) -> u64 {
        self.0 >> log2_bytes
    }

    /// A well-mixed hash of this PC, suitable for indexing predictor tables.
    ///
    /// Drops the always-zero instruction-alignment bits first so that
    /// adjacent instructions land in different table entries.
    #[inline]
    pub fn table_hash(self) -> u64 {
        // SplitMix64 finalizer over the word-aligned address.
        let mut z = self.0 >> 2;
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Pc {
    fn from(addr: u64) -> Self {
        Pc(addr)
    }
}

impl From<Pc> for u64 {
    fn from(pc: Pc) -> Self {
        pc.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_advances_by_instr_bytes() {
        assert_eq!(Pc::new(0).next(), Pc::new(4));
        assert_eq!(Pc::new(16).offset(3), Pc::new(28));
    }

    #[test]
    fn block_strips_low_bits() {
        let pc = Pc::new(0x1234);
        assert_eq!(pc.block(6), 0x1234 >> 6);
        assert_eq!(pc.block(7), 0x1234 >> 7);
    }

    #[test]
    fn table_hash_differs_for_adjacent_instructions() {
        let a = Pc::new(0x1000).table_hash();
        let b = Pc::new(0x1004).table_hash();
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Pc::new(0xff).to_string(), "0xff");
        assert_eq!(format!("{:x}", Pc::new(0xff)), "ff");
    }

    #[test]
    fn conversions_round_trip() {
        let pc: Pc = 0xdead_beef_u64.into();
        let raw: u64 = pc.into();
        assert_eq!(raw, 0xdead_beef);
    }
}
