//! Canonical byte serialization for configuration values.
//!
//! The experiment engine identifies each simulation cell by a stable
//! content hash of its full configuration. That requires a serialization
//! that is *canonical*: the byte stream is a function of the value alone —
//! independent of struct field declaration order, platform endianness or
//! pointer width — so equal configurations always hash equally and the
//! hash can be used as an on-disk cache key.
//!
//! The encoding rules are deliberately boring:
//!
//! * every struct/enum impl writes a leading tag byte (guarding against
//!   two different types producing the same payload bytes), then its
//!   fields in a **fixed, documented order** — never via reflection;
//! * integers are little-endian fixed width (`usize` widens to `u64`);
//! * floats serialize as their IEEE-754 bit pattern;
//! * enums write a stable discriminant byte before any payload.
//!
//! # Examples
//!
//! ```
//! use paco_types::canon::{fnv1a64, Canon};
//!
//! let mut a = Vec::new();
//! 42u64.canon(&mut a);
//! let mut b = Vec::new();
//! 42u64.canon(&mut b);
//! assert_eq!(a, b);
//! assert_eq!(fnv1a64(&a), fnv1a64(&b));
//! ```

/// A value with a canonical byte serialization (see module docs).
pub trait Canon {
    /// Appends the canonical encoding of `self` to `out`.
    fn canon(&self, out: &mut Vec<u8>);

    /// The canonical encoding as a fresh vector.
    fn canon_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.canon(&mut out);
        out
    }

    /// The FNV-1a 64-bit hash of the canonical encoding.
    fn canon_hash(&self) -> u64 {
        fnv1a64(&self.canon_bytes())
    }
}

impl Canon for bool {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Canon for u8 {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}

impl Canon for u32 {
    fn canon(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Canon for u64 {
    fn canon(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}

impl Canon for usize {
    fn canon(&self, out: &mut Vec<u8>) {
        (*self as u64).canon(out);
    }
}

impl Canon for f64 {
    fn canon(&self, out: &mut Vec<u8>) {
        self.to_bits().canon(out);
    }
}

impl Canon for str {
    fn canon(&self, out: &mut Vec<u8>) {
        (self.len() as u64).canon(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<T: Canon> Canon for Option<T> {
    fn canon(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.canon(out);
            }
        }
    }
}

impl<T: Canon> Canon for [T] {
    fn canon(&self, out: &mut Vec<u8>) {
        (self.len() as u64).canon(out);
        for v in self {
            v.canon(out);
        }
    }
}

impl<A: Canon, B: Canon> Canon for (A, B) {
    fn canon(&self, out: &mut Vec<u8>) {
        self.0.canon(out);
        self.1.canon(out);
    }
}

/// FNV-1a 64-bit hash, the engine's content-hash primitive: simple,
/// dependency-free and stable across platforms and releases.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn primitives_encode_fixed_width_le() {
        let mut out = Vec::new();
        0x0102_0304u32.canon(&mut out);
        assert_eq!(out, [4, 3, 2, 1]);
        out.clear();
        7usize.canon(&mut out);
        assert_eq!(out.len(), 8, "usize widens to u64");
    }

    #[test]
    fn option_disambiguates_none_from_zero() {
        let none: Option<u8> = None;
        let some = Some(0u8);
        assert_ne!(none.canon_bytes(), some.canon_bytes());
    }

    #[test]
    fn slices_are_length_prefixed() {
        // [1u8] vs [1u8, 0u8] must not collide via concatenation.
        let a = [1u8];
        let b = [1u8, 0u8];
        assert_ne!(a[..].canon_bytes(), b[..].canon_bytes());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        assert_ne!(0.0f64.canon_bytes(), (-0.0f64).canon_bytes());
        assert_eq!(0.65f64.canon_bytes(), 0.65f64.canon_bytes());
    }
}
