//! Property-based tests for the branch-prediction substrate.

use paco_branch::{
    Btb, BtbConfig, ConfidenceConfig, DirectionPredictor, MdcTable, ReturnAddressStack,
    SaturatingCounter, TournamentConfig, TournamentPredictor,
};
use paco_types::Pc;
use proptest::prelude::*;

proptest! {
    /// A saturating counter never leaves its range under any op sequence.
    #[test]
    fn counter_stays_in_range(
        bits in 1u32..=8,
        ops in proptest::collection::vec(any::<bool>(), 0..500),
    ) {
        let mut c = SaturatingCounter::new(bits, 0);
        for up in ops {
            if up {
                c.increment();
            } else {
                c.decrement();
            }
            prop_assert!(c.value() <= c.max());
        }
    }

    /// The MDC value equals the number of consecutive correct predictions
    /// since the last mispredict, saturated at 15.
    #[test]
    fn mdc_tracks_miss_distance(outcomes in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut t = MdcTable::new(ConfidenceConfig::tiny());
        let idx = t.index(Pc::new(0x4000), 0b1001, true);
        let mut distance = 0u32;
        for correct in outcomes {
            t.update(idx, correct);
            distance = if correct { distance + 1 } else { 0 };
            prop_assert_eq!(t.read(idx).value() as u32, distance.min(15));
        }
    }

    /// The BTB always returns the most recently installed target for a PC
    /// while no conflicting fills evict it.
    #[test]
    fn btb_returns_latest_target(targets in proptest::collection::vec(1u64..1_000_000, 1..50)) {
        let mut btb = Btb::new(BtbConfig::tiny());
        let pc = Pc::new(0x88);
        for t in targets {
            let target = Pc::new(t * 4);
            btb.update(pc, target);
            prop_assert_eq!(btb.lookup(pc), Some(target));
        }
    }

    /// RAS pop returns pushes in LIFO order whenever depth is respected.
    #[test]
    fn ras_lifo_within_depth(
        depth in 1usize..32,
        pushes in proptest::collection::vec(1u64..1_000_000, 0..31),
    ) {
        prop_assume!(pushes.len() <= depth);
        let mut ras = ReturnAddressStack::new(depth);
        for &p in &pushes {
            ras.push(Pc::new(p * 4));
        }
        for &p in pushes.iter().rev() {
            prop_assert_eq!(ras.pop(), Some(Pc::new(p * 4)));
        }
        prop_assert_eq!(ras.pop(), None);
    }

    /// The tournament predictor converges on any strongly biased branch.
    #[test]
    fn tournament_learns_constant_branches(
        pc_base in 1u64..1_000,
        direction in any::<bool>(),
    ) {
        let mut p = TournamentPredictor::new(TournamentConfig::tiny());
        let pc = Pc::new(0x40_0000 + pc_base * 4);
        for i in 0..32u64 {
            let hist = i & 0xff;
            let pred = p.predict(pc, hist);
            p.update(pc, hist, direction, pred);
        }
        prop_assert_eq!(p.predict(pc, 0x55), direction);
    }

    /// MDC indexing is a pure function of (pc, history, direction).
    #[test]
    fn mdc_index_is_pure(pc in 1u64..1_000_000, hist in any::<u64>(), dir in any::<bool>()) {
        let t = MdcTable::new(ConfidenceConfig::paper());
        let a = t.index(Pc::new(pc * 4), hist, dir);
        let b = t.index(Pc::new(pc * 4), hist, dir);
        prop_assert_eq!(a, b);
    }
}
