//! Last-target indirect branch predictor.

use paco_types::Pc;

/// A tagless last-target predictor for indirect jumps and indirect calls.
///
/// Each entry remembers the most recent target of the indirect branch that
/// hashed to it. This is the classic baseline indirect predictor; it
/// mispredicts every time an indirect branch switches targets — which is
/// precisely the behaviour behind the paper's `perlbmk` pathology (one
/// indirect call responsible for >95% of mispredicts).
///
/// # Examples
///
/// ```
/// use paco_branch::IndirectPredictor;
/// use paco_types::Pc;
///
/// let mut p = IndirectPredictor::new(256);
/// let pc = Pc::new(0x700);
/// assert_eq!(p.predict(pc), None);
/// p.update(pc, Pc::new(0x9000));
/// assert_eq!(p.predict(pc), Some(Pc::new(0x9000)));
/// ```
#[derive(Debug, Clone)]
pub struct IndirectPredictor {
    table: Vec<Option<Pc>>,
    mask: u64,
}

impl IndirectPredictor {
    /// Creates a predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        IndirectPredictor {
            table: vec![None; entries],
            mask: entries as u64 - 1,
        }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        (pc.table_hash() & self.mask) as usize
    }

    /// Predicted target for the indirect branch at `pc`, if any history
    /// exists.
    pub fn predict(&self, pc: Pc) -> Option<Pc> {
        self.table[self.index(pc)]
    }

    /// Records the resolved target.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        let idx = self.index(pc);
        self.table[idx] = Some(target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_last_target() {
        let mut p = IndirectPredictor::new(64);
        let pc = Pc::new(0x100);
        p.update(pc, Pc::new(0xa000));
        assert_eq!(p.predict(pc), Some(Pc::new(0xa000)));
        p.update(pc, Pc::new(0xb000));
        assert_eq!(p.predict(pc), Some(Pc::new(0xb000)));
    }

    #[test]
    fn cold_entry_is_none() {
        let p = IndirectPredictor::new(64);
        assert_eq!(p.predict(Pc::new(0x44)), None);
    }

    #[test]
    fn alternating_targets_always_mispredict() {
        // The perlbmk pathology in miniature.
        let mut p = IndirectPredictor::new(64);
        let pc = Pc::new(0x100);
        let t = [Pc::new(0x1000), Pc::new(0x2000)];
        let mut mispredicts = 0;
        for i in 0..100 {
            let actual = t[i % 2];
            if p.predict(pc) != Some(actual) {
                mispredicts += 1;
            }
            p.update(pc, actual);
        }
        assert!(mispredicts >= 99, "got {mispredicts}");
    }
}
