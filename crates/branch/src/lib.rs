//! Branch direction/target prediction and JRS confidence estimation.
//!
//! This crate implements the branch-prediction substrate the PaCo paper
//! builds on:
//!
//! * a **bimodal** predictor (2-bit saturating counters indexed by PC),
//! * a **gshare** predictor (counters indexed by PC ⊕ global history),
//! * the paper's **tournament/hybrid** predictor (32KB gshare + 32KB
//!   bimodal + 32KB selector, 8 bits of global history),
//! * a **branch target buffer**, **return-address stack** and a last-target
//!   **indirect** predictor,
//! * the **JRS** and **enhanced JRS** confidence predictors: tables of 4-bit
//!   miss-distance counters (MDCs) that count consecutive correct
//!   predictions per branch.
//!
//! The MDC value is the *stratifier* that PaCo uses to assign a
//! correct-prediction probability to every in-flight branch.
//!
//! # Examples
//!
//! ```
//! use paco_branch::{TournamentPredictor, DirectionPredictor};
//! use paco_types::Pc;
//!
//! let mut pred = TournamentPredictor::paper_default();
//! let pc = Pc::new(0x1000);
//! // Train an always-taken branch.
//! for _ in 0..8 {
//!     let hist = 0;
//!     let p = pred.predict(pc, hist);
//!     pred.update(pc, hist, true, p);
//! }
//! assert!(pred.predict(pc, 0));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bimodal;
mod btb;
mod confidence;
mod counter;
mod gshare;
mod indirect;
mod perceptron;
mod ras;
mod tournament;

pub use bimodal::BimodalPredictor;
pub use btb::{Btb, BtbConfig};
pub use confidence::{ConfidenceConfig, Mdc, MdcIndex, MdcTable};
pub use counter::{CounterTable, SaturatingCounter};
pub use gshare::GsharePredictor;
pub use indirect::IndirectPredictor;
pub use perceptron::{PerceptronConfidence, PerceptronConfig};
pub use ras::ReturnAddressStack;
pub use tournament::{TournamentConfig, TournamentPredictor};

use paco_types::Pc;

/// A conditional-branch direction predictor.
///
/// The front end owns the global-history register and passes the current
/// history bits explicitly, which makes checkpoint/restore on mispredict
/// recovery trivial for the caller.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc` under `history`.
    fn predict(&self, pc: Pc, history: u64) -> bool;

    /// Trains the predictor with the resolved outcome.
    ///
    /// `predicted` is the direction that was predicted for this dynamic
    /// instance (needed by choosers that train on agreement).
    fn update(&mut self, pc: Pc, history: u64, taken: bool, predicted: bool);
}
