//! Perceptron-based branch confidence estimation (Akkary et al., HPCA-10).
//!
//! The PaCo paper treats the branch confidence predictor as a *stratifier*
//! and notes (§6) that "a better branch confidence predictor would simply
//! provide a better stratifier, hopefully improving PaCo's accuracy". This
//! module implements the perceptron confidence estimator the paper cites
//! as superior to enhanced JRS: a table of perceptrons over global-history
//! bits whose *output magnitude* measures prediction confidence. The
//! magnitude is quantized to the same 4-bit range as an MDC value, so it
//! drops into PaCo unchanged.

use paco_types::Pc;

use crate::Mdc;

/// Configuration for a [`PerceptronConfidence`] estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Number of perceptrons (power of two).
    pub rows: usize,
    /// History bits (= weights per perceptron, excluding bias).
    pub history_bits: usize,
    /// Training threshold θ; weights train while |output| ≤ θ or the
    /// prediction direction was wrong (standard perceptron rule).
    pub theta: i32,
}

impl PerceptronConfig {
    /// A configuration with a hardware budget comparable to the paper's
    /// 8KB enhanced JRS table: 256 rows × 17 signed 8-bit weights ≈ 4.3KB.
    pub const fn paper_comparable() -> Self {
        PerceptronConfig {
            rows: 256,
            history_bits: 16,
            theta: 34, // ≈ 1.93 * h + 14, the classic θ heuristic
        }
    }

    /// A tiny configuration for unit tests.
    pub const fn tiny() -> Self {
        PerceptronConfig {
            rows: 16,
            history_bits: 8,
            theta: 22,
        }
    }
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig::paper_comparable()
    }
}

/// A perceptron-based confidence estimator.
///
/// Each row holds signed weights over the recent global history; the dot
/// product's *sign* predicts agreement with the direction predictor and
/// its *magnitude* is the confidence. [`confidence`](Self::confidence)
/// quantizes the magnitude into the 4-bit [`Mdc`] range so the estimator
/// can serve as a drop-in PaCo stratifier.
///
/// # Examples
///
/// ```
/// use paco_branch::{PerceptronConfidence, PerceptronConfig};
/// use paco_types::Pc;
///
/// let mut p = PerceptronConfidence::new(PerceptronConfig::tiny());
/// let pc = Pc::new(0x400);
/// // Train a branch that is always correctly predicted:
/// for _ in 0..64 {
///     p.train(pc, 0b1010_1010, true);
/// }
/// // Confidence (as an MDC-like value) settles around the training
/// // threshold — mid-to-high on the 4-bit scale:
/// assert!(p.confidence(pc, 0b1010_1010).value() >= 6);
/// ```
#[derive(Debug, Clone)]
pub struct PerceptronConfidence {
    weights: Vec<i32>, // rows × (history_bits + 1), bias first
    config: PerceptronConfig,
    row_mask: u64,
    max_output: i32,
}

impl PerceptronConfidence {
    /// Creates a zero-initialized estimator.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is not a power of two or `history_bits` is 0 or
    /// greater than 63.
    pub fn new(config: PerceptronConfig) -> Self {
        assert!(config.rows.is_power_of_two(), "rows must be a power of two");
        assert!(
            (1..=63).contains(&config.history_bits),
            "history bits must be 1..=63"
        );
        let max_output = 127 * (config.history_bits as i32 + 1);
        PerceptronConfidence {
            weights: vec![0; config.rows * (config.history_bits + 1)],
            row_mask: config.rows as u64 - 1,
            config,
            max_output,
        }
    }

    #[inline]
    fn row(&self, pc: Pc) -> usize {
        (pc.table_hash() & self.row_mask) as usize * (self.config.history_bits + 1)
    }

    /// The raw perceptron output: positive means "the direction prediction
    /// will be correct", magnitude is confidence.
    pub fn output(&self, pc: Pc, history: u64) -> i32 {
        let base = self.row(pc);
        let w = &self.weights[base..base + self.config.history_bits + 1];
        let mut y = w[0]; // bias
        for (i, &wi) in w.iter().skip(1).enumerate() {
            let bit = (history >> i) & 1 == 1;
            y += if bit { wi } else { -wi };
        }
        y
    }

    /// Quantizes the output into the 4-bit MDC range, allowing the
    /// perceptron to stand in for the JRS table as PaCo's stratifier.
    ///
    /// Strongly-positive outputs (confident-correct) map to high values,
    /// negative outputs (likely mispredict) to 0.
    pub fn confidence(&self, pc: Pc, history: u64) -> Mdc {
        let y = self.output(pc, history);
        if y <= 0 {
            return Mdc::new(0);
        }
        // Linear quantization against the training threshold: outputs at
        // or beyond 2θ saturate the scale.
        let scaled = (y as i64 * 15) / (2 * self.config.theta.max(1) as i64);
        Mdc::new(scaled.clamp(0, 15) as u8)
    }

    /// Trains on a resolved branch: `correct` is whether the direction
    /// prediction was right (the perceptron predicts *correctness*, not
    /// direction).
    pub fn train(&mut self, pc: Pc, history: u64, correct: bool) {
        let y = self.output(pc, history);
        let agrees = y > 0;
        if agrees == correct && y.abs() > self.config.theta {
            return; // confident and correct: no update
        }
        let t: i32 = if correct { 1 } else { -1 };
        let base = self.row(pc);
        let hb = self.config.history_bits;
        let w = &mut self.weights[base..base + hb + 1];
        w[0] = (w[0] + t).clamp(-127, 127);
        for (i, wi) in w.iter_mut().skip(1).enumerate() {
            let x: i32 = if (history >> i) & 1 == 1 { 1 } else { -1 };
            *wi = (*wi + t * x).clamp(-127, 127);
        }
    }

    /// Largest possible output magnitude for this geometry.
    pub fn max_output(&self) -> i32 {
        self.max_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_correct_branch() {
        let mut p = PerceptronConfidence::new(PerceptronConfig::tiny());
        let pc = Pc::new(0x100);
        for _ in 0..100 {
            p.train(pc, 0b1100_1010, true);
        }
        // Training stops once the output clears the threshold θ, so the
        // settled output sits just past it.
        assert!(p.output(pc, 0b1100_1010) > PerceptronConfig::tiny().theta);
        assert!(p.confidence(pc, 0b1100_1010).value() >= 6);
    }

    #[test]
    fn learns_always_wrong_branch() {
        let mut p = PerceptronConfidence::new(PerceptronConfig::tiny());
        let pc = Pc::new(0x200);
        for _ in 0..100 {
            p.train(pc, 0b0011_0101, false);
        }
        assert!(p.output(pc, 0b0011_0101) < 0);
        assert_eq!(p.confidence(pc, 0b0011_0101).value(), 0);
    }

    #[test]
    fn learns_history_dependent_correctness() {
        // Correct exactly when history bit 0 is set: linearly separable.
        let mut p = PerceptronConfidence::new(PerceptronConfig::tiny());
        let pc = Pc::new(0x300);
        for i in 0..400u64 {
            let h = i & 0xff;
            p.train(pc, h, h & 1 == 1);
        }
        let mut fails = 0;
        for h in 0..16u64 {
            let predicted_correct = p.output(pc, h) > 0;
            if predicted_correct != (h & 1 == 1) {
                fails += 1;
            }
        }
        assert!(fails <= 1, "{fails} of 16 contexts misjudged");
    }

    #[test]
    fn weights_saturate() {
        let mut p = PerceptronConfidence::new(PerceptronConfig::tiny());
        let pc = Pc::new(0x400);
        for _ in 0..10_000 {
            p.train(pc, u64::MAX, true);
        }
        assert!(p.output(pc, u64::MAX) <= p.max_output());
    }

    #[test]
    fn confidence_is_monotone_in_output() {
        let p = PerceptronConfidence::new(PerceptronConfig::tiny());
        // With zero weights the output is 0 → lowest confidence.
        assert_eq!(p.confidence(Pc::new(0x1), 0).value(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_rows() {
        let _ = PerceptronConfidence::new(PerceptronConfig {
            rows: 3,
            history_bits: 8,
            theta: 10,
        });
    }
}
