//! Gshare (history-XOR-PC) direction predictor.

use crate::{CounterTable, DirectionPredictor};
use paco_types::Pc;

/// A gshare predictor: 2-bit counters indexed by the XOR of a PC hash and
/// the global branch history.
///
/// The paper's tournament predictor uses a 32KB gshare component with 8 bits
/// of global history.
///
/// # Examples
///
/// ```
/// use paco_branch::{GsharePredictor, DirectionPredictor};
/// use paco_types::Pc;
///
/// let mut p = GsharePredictor::new(1 << 12, 8);
/// let pc = Pc::new(0x80);
/// // A branch that is taken exactly when the previous branch was taken
/// // (history bit 0 set) is learnable by gshare.
/// for _ in 0..64 {
///     for &h in &[0u64, 1u64] {
///         let taken = h & 1 == 1;
///         let pred = p.predict(pc, h);
///         p.update(pc, h, taken, pred);
///     }
/// }
/// assert!(!p.predict(pc, 0));
/// assert!(p.predict(pc, 1));
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: CounterTable,
    mask: u64,
    history_bits: u32,
}

impl GsharePredictor {
    /// Creates a predictor with `entries` 2-bit counters and `history_bits`
    /// of global history folded into the index.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or `history_bits > 64`.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(history_bits <= 64, "history bits must be <= 64");
        GsharePredictor {
            table: CounterTable::new(2, 1, entries),
            mask: entries as u64 - 1,
            history_bits,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Number of global-history bits used in the index.
    pub fn history_bits(&self) -> u32 {
        self.history_bits
    }

    #[inline]
    fn index(&self, pc_hash: u64, history: u64) -> usize {
        let hist_mask = if self.history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.history_bits) - 1
        };
        ((pc_hash ^ (history & hist_mask)) & self.mask) as usize
    }

    /// [`predict`](DirectionPredictor::predict) with the PC hash
    /// ([`Pc::table_hash`]) precomputed — the batched hot path hashes
    /// each event's PC once and feeds every table from it. The plain
    /// trait methods delegate here, so the two spellings cannot drift.
    #[inline]
    pub fn predict_hashed(&self, pc_hash: u64, history: u64) -> bool {
        self.table.msb(self.index(pc_hash, history))
    }

    /// [`update`](DirectionPredictor::update) with the PC hash
    /// precomputed (see [`predict_hashed`](Self::predict_hashed)).
    #[inline]
    pub fn update_hashed(&mut self, pc_hash: u64, history: u64, taken: bool) {
        let idx = self.index(pc_hash, history);
        if taken {
            self.table.increment(idx);
        } else {
            self.table.decrement(idx);
        }
    }

    /// Fused predict-then-train: returns the pre-update prediction and
    /// applies the outcome to the same counter, touching the entry once
    /// — ≡ [`predict_hashed`](Self::predict_hashed) followed by
    /// [`update_hashed`](Self::update_hashed), which is how choosers
    /// use the component at resolve time.
    #[inline]
    pub fn train_hashed(&mut self, pc_hash: u64, history: u64, taken: bool) -> bool {
        self.table.train(self.index(pc_hash, history), taken)
    }

    /// The table index for a `(pc_hash, history)` pair.
    ///
    /// Exposed for the chunked hot path, which precomputes a lane of
    /// indices once (index math is pure and vectorizes), then feeds
    /// per-event reads ([`predict_at`](Self::predict_at)), trains
    /// ([`train_at`](Self::train_at)) and prefetches
    /// ([`prefetch`](Self::prefetch)) from the cached values.
    #[inline]
    pub fn index_hashed(&self, pc_hash: u64, history: u64) -> u32 {
        self.index(pc_hash, history) as u32
    }

    /// Lane predict: computes the table index for each `(pc_hash,
    /// history)` lane into `idx_out` and returns the packed predictions
    /// (bit `j` answers for lane `j`) via the SWAR gather
    /// [`CounterTable::predict_hashed_n`].
    ///
    /// The packed predictions are only order-exact if no lane's counter
    /// is trained mid-lane; the index cache in `idx_out` is always
    /// valid.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree or exceed 64 lanes.
    pub fn predict_hashed_n(
        &self,
        pc_hashes: &[u64],
        histories: &[u64],
        idx_out: &mut [u32],
    ) -> u64 {
        assert_eq!(pc_hashes.len(), histories.len());
        assert_eq!(pc_hashes.len(), idx_out.len());
        for ((idx, &h), &hist) in idx_out.iter_mut().zip(pc_hashes).zip(histories) {
            *idx = self.index(h, hist) as u32;
        }
        self.table.predict_hashed_n(idx_out)
    }

    /// Packed predictions from already-cached indices (the gather half of
    /// [`predict_hashed_n`](Self::predict_hashed_n); same order-exactness
    /// caveat).
    #[inline]
    pub fn predict_cached_n(&self, idxs: &[u32]) -> u64 {
        self.table.predict_hashed_n(idxs)
    }

    /// Lane train: applies [`train_hashed`](Self::train_hashed) to up to
    /// 64 `(pc_hash, history)` lanes in order (outcome `j` in bit `j` of
    /// `takens`), returning the packed pre-update predictions.
    /// Sequential per lane — duplicate indices must observe each other —
    /// with the branchless counter update per lane.
    pub fn train_hashed_n(&mut self, pc_hashes: &[u64], histories: &[u64], takens: u64) -> u64 {
        assert_eq!(pc_hashes.len(), histories.len());
        assert!(pc_hashes.len() <= 64, "at most 64 lanes per packed train");
        let mut predictions = 0u64;
        for (j, (&h, &hist)) in pc_hashes.iter().zip(histories).enumerate() {
            let taken = takens >> j & 1 != 0;
            let pre = self.table.train_branchless(self.index(h, hist), taken);
            predictions |= (pre as u64) << j;
        }
        predictions
    }

    /// [`predict_hashed`](Self::predict_hashed) from an index cached by
    /// [`index_hashed`](Self::index_hashed) — the order-exact per-event
    /// read the chunked hot path uses between trains.
    #[inline]
    pub fn predict_at(&self, idx: u32) -> bool {
        self.table.msb(idx as usize)
    }

    /// [`train_hashed`](Self::train_hashed) from a cached index, using
    /// the branchless counter update.
    #[inline]
    pub fn train_at(&mut self, idx: u32, taken: bool) -> bool {
        self.table.train_branchless(idx as usize, taken)
    }

    /// Prefetches the cache line holding the counter at a cached index
    /// (no-op off x86-64 and under Miri).
    #[inline]
    pub fn prefetch(&self, idx: u32) {
        self.table.prefetch(idx as usize);
    }

    /// Appends the predictor's table state (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.table.save_state(out);
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// predictor of the same configuration; `false` on any mismatch.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.table.load_state(input)
    }
}

impl DirectionPredictor for GsharePredictor {
    #[inline]
    fn predict(&self, pc: Pc, history: u64) -> bool {
        self.predict_hashed(pc.table_hash(), history)
    }

    #[inline]
    fn update(&mut self, pc: Pc, history: u64, taken: bool, _predicted: bool) {
        self.update_hashed(pc.table_hash(), history, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_history_correlated_branch() {
        let mut p = GsharePredictor::new(1 << 12, 8);
        let pc = Pc::new(0x2000);
        // Outcome equals parity of low 2 history bits.
        for _ in 0..32 {
            for h in 0u64..4 {
                let taken = (h.count_ones() & 1) == 1;
                let pred = p.predict(pc, h);
                p.update(pc, h, taken, pred);
            }
        }
        for h in 0u64..4 {
            let taken = (h.count_ones() & 1) == 1;
            assert_eq!(p.predict(pc, h), taken, "history {h}");
        }
    }

    #[test]
    fn zero_history_bits_degenerates_to_bimodal() {
        let mut p = GsharePredictor::new(256, 0);
        let pc = Pc::new(0x10);
        for _ in 0..4 {
            let pred = p.predict(pc, 0b1111);
            p.update(pc, 0b1111, true, pred);
        }
        // History must be ignored entirely.
        assert!(p.predict(pc, 0b0000));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = GsharePredictor::new(100, 8);
    }
}
