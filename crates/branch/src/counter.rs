//! Saturating up/down counters, the workhorse of table-based predictors.

/// An n-bit saturating counter (n ≤ 8).
///
/// # Examples
///
/// ```
/// use paco_branch::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 1); // 2-bit, weakly not-taken
/// c.increment();
/// c.increment();
/// c.increment();
/// assert_eq!(c.value(), 3); // saturates at 3
/// assert!(c.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Current counter value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (the JRS miss-distance counter does this on a
    /// mispredict).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Most significant bit: the conventional "predict taken" test for
    /// direction counters.
    #[inline]
    pub const fn msb(self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is saturated high.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.value == self.max
    }

    /// Overwrites the counter value (state restore); `false` if `value`
    /// exceeds the counter's maximum, leaving it unchanged.
    #[inline]
    pub fn set_value(&mut self, value: u8) -> bool {
        if value > self.max {
            return false;
        }
        self.value = value;
        true
    }
}

/// Appends the raw values of a counter table (length prefix + one byte
/// per counter) — the shared snapshot encoding for every table-based
/// predictor in this crate.
pub(crate) fn save_counters(counters: &[SaturatingCounter], out: &mut Vec<u8>) {
    paco_types::wire::write_uvarint(out, counters.len() as u64);
    out.extend(counters.iter().map(|c| c.value()));
}

/// Restores a counter table saved by [`save_counters`], advancing
/// `input`. `false` (table untouched or partially written — callers treat
/// any failure as fatal for the whole restore) on a length mismatch,
/// truncation, or an out-of-range counter value.
pub(crate) fn load_counters(counters: &mut [SaturatingCounter], input: &mut &[u8]) -> bool {
    let Some(len) = paco_types::wire::read_uvarint(input) else {
        return false;
    };
    if len != counters.len() as u64 || input.len() < counters.len() {
        return false;
    }
    let (bytes, rest) = input.split_at(counters.len());
    for (c, &v) in counters.iter_mut().zip(bytes) {
        if !c.set_value(v) {
            return false;
        }
    }
    *input = rest;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn msb_threshold_for_two_bit() {
        // 0,1 predict not-taken; 2,3 predict taken.
        assert!(!SaturatingCounter::new(2, 0).msb());
        assert!(!SaturatingCounter::new(2, 1).msb());
        assert!(SaturatingCounter::new(2, 2).msb());
        assert!(SaturatingCounter::new(2, 3).msb());
    }

    #[test]
    fn four_bit_counter_range() {
        let mut c = SaturatingCounter::new(4, 0);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 15);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_wide_counters() {
        let _ = SaturatingCounter::new(9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_bad_initial() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
