//! Saturating up/down counters, the workhorse of table-based predictors.

/// An n-bit saturating counter (n ≤ 8).
///
/// # Examples
///
/// ```
/// use paco_branch::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 1); // 2-bit, weakly not-taken
/// c.increment();
/// c.increment();
/// c.increment();
/// assert_eq!(c.value(), 3); // saturates at 3
/// assert!(c.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Current counter value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (the JRS miss-distance counter does this on a
    /// mispredict).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Most significant bit: the conventional "predict taken" test for
    /// direction counters.
    #[inline]
    pub const fn msb(self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is saturated high.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.value == self.max
    }

    /// Overwrites the counter value (state restore); `false` if `value`
    /// exceeds the counter's maximum, leaving it unchanged.
    #[inline]
    pub fn set_value(&mut self, value: u8) -> bool {
        if value > self.max {
            return false;
        }
        self.value = value;
        true
    }
}

/// A dense table of equal-width saturating counters.
///
/// The table-based predictors (gshare, bimodal, the tournament chooser,
/// the JRS MDC table) all hold thousands-to-millions of counters that
/// share one width. Storing them as `Vec<SaturatingCounter>` costs two
/// bytes per entry — half of it the `max` bound duplicated into every
/// element. A `CounterTable` keeps one byte per counter plus a single
/// shared bound, **halving every predictor table's memory footprint and
/// cache traffic** — the paper's 96KB hybrid predictor state drops from
/// ~832KB to ~416KB per pipeline/session, which is what the batched
/// confidence hot path ends up bounded by.
///
/// # Examples
///
/// ```
/// use paco_branch::CounterTable;
/// let mut t = CounterTable::new(2, 1, 4); // 2-bit counters, weakly not-taken
/// assert!(!t.msb(0));
/// t.increment(0);
/// assert!(t.msb(0));
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    values: Vec<u8>,
    max: u8,
    /// `max / 2`: `msb(i)` ⇔ `values[i] > msb_threshold`.
    msb_threshold: u8,
}

impl CounterTable {
    /// Creates a table of `entries` `bits`-wide counters, all at
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8, entries: usize) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        CounterTable {
            values: vec![initial; entries],
            max,
            msb_threshold: max / 2,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The shared maximum representable value.
    #[inline]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// The shared counter width in bits.
    #[inline]
    pub fn counter_bits(&self) -> u32 {
        8 - self.max.leading_zeros()
    }

    /// Counter `idx`'s current value.
    #[inline]
    pub fn value(&self, idx: usize) -> u8 {
        self.values[idx]
    }

    /// Counter `idx`'s most significant bit: the conventional "predict
    /// taken" test.
    #[inline]
    pub fn msb(&self, idx: usize) -> bool {
        self.values[idx] > self.msb_threshold
    }

    /// Increments counter `idx`, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self, idx: usize) {
        let v = &mut self.values[idx];
        if *v < self.max {
            *v += 1;
        }
    }

    /// Decrements counter `idx`, saturating at zero.
    #[inline]
    pub fn decrement(&mut self, idx: usize) {
        let v = &mut self.values[idx];
        if *v > 0 {
            *v -= 1;
        }
    }

    /// Resets counter `idx` to zero (the JRS miss-distance counter does
    /// this on a mispredict).
    #[inline]
    pub fn reset(&mut self, idx: usize) {
        self.values[idx] = 0;
    }

    /// Fused predict-then-train on counter `idx`: returns the pre-update
    /// prediction and applies the outcome, touching the entry once — ≡
    /// [`msb`](Self::msb) followed by increment/decrement.
    #[inline]
    pub fn train(&mut self, idx: usize, taken: bool) -> bool {
        let v = &mut self.values[idx];
        let predicted = *v > self.msb_threshold;
        if taken {
            if *v < self.max {
                *v += 1;
            }
        } else if *v > 0 {
            *v -= 1;
        }
        predicted
    }

    /// Appends the raw counter values (length prefix + one byte per
    /// counter) — the shared snapshot encoding for every table-based
    /// predictor in this crate.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.values.len() as u64);
        out.extend_from_slice(&self.values);
    }

    /// Restores state saved by [`save_state`](Self::save_state),
    /// advancing `input`. `false` (table untouched or partially written
    /// — callers treat any failure as fatal for the whole restore) on a
    /// length mismatch, truncation, or an out-of-range counter value.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some(len) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        if len != self.values.len() as u64 || input.len() < self.values.len() {
            return false;
        }
        let (bytes, rest) = input.split_at(self.values.len());
        if bytes.iter().any(|&v| v > self.max) {
            return false;
        }
        self.values.copy_from_slice(bytes);
        *input = rest;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn msb_threshold_for_two_bit() {
        // 0,1 predict not-taken; 2,3 predict taken.
        assert!(!SaturatingCounter::new(2, 0).msb());
        assert!(!SaturatingCounter::new(2, 1).msb());
        assert!(SaturatingCounter::new(2, 2).msb());
        assert!(SaturatingCounter::new(2, 3).msb());
    }

    #[test]
    fn four_bit_counter_range() {
        let mut c = SaturatingCounter::new(4, 0);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 15);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_wide_counters() {
        let _ = SaturatingCounter::new(9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_bad_initial() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
