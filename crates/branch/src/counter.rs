//! Saturating up/down counters, the workhorse of table-based predictors.

/// An n-bit saturating counter (n ≤ 8).
///
/// # Examples
///
/// ```
/// use paco_branch::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 1); // 2-bit, weakly not-taken
/// c.increment();
/// c.increment();
/// c.increment();
/// assert_eq!(c.value(), 3); // saturates at 3
/// assert!(c.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Current counter value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (the JRS miss-distance counter does this on a
    /// mispredict).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Most significant bit: the conventional "predict taken" test for
    /// direction counters.
    #[inline]
    pub const fn msb(self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is saturated high.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.value == self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn msb_threshold_for_two_bit() {
        // 0,1 predict not-taken; 2,3 predict taken.
        assert!(!SaturatingCounter::new(2, 0).msb());
        assert!(!SaturatingCounter::new(2, 1).msb());
        assert!(SaturatingCounter::new(2, 2).msb());
        assert!(SaturatingCounter::new(2, 3).msb());
    }

    #[test]
    fn four_bit_counter_range() {
        let mut c = SaturatingCounter::new(4, 0);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 15);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_wide_counters() {
        let _ = SaturatingCounter::new(9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_bad_initial() {
        let _ = SaturatingCounter::new(2, 4);
    }
}
