//! Saturating up/down counters, the workhorse of table-based predictors.

/// An n-bit saturating counter (n ≤ 8).
///
/// # Examples
///
/// ```
/// use paco_branch::SaturatingCounter;
/// let mut c = SaturatingCounter::new(2, 1); // 2-bit, weakly not-taken
/// c.increment();
/// c.increment();
/// c.increment();
/// assert_eq!(c.value(), 3); // saturates at 3
/// assert!(c.msb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// Creates an `bits`-bit counter with the given initial value.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// Current counter value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub const fn max(self) -> u8 {
        self.max
    }

    /// Increments, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at zero.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Resets to zero (the JRS miss-distance counter does this on a
    /// mispredict).
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Most significant bit: the conventional "predict taken" test for
    /// direction counters.
    #[inline]
    pub const fn msb(self) -> bool {
        self.value > self.max / 2
    }

    /// Whether the counter is saturated high.
    #[inline]
    pub const fn is_max(self) -> bool {
        self.value == self.max
    }

    /// Overwrites the counter value (state restore); `false` if `value`
    /// exceeds the counter's maximum, leaving it unchanged.
    #[inline]
    pub fn set_value(&mut self, value: u8) -> bool {
        if value > self.max {
            return false;
        }
        self.value = value;
        true
    }
}

/// A dense table of equal-width saturating counters.
///
/// The table-based predictors (gshare, bimodal, the tournament chooser,
/// the JRS MDC table) all hold thousands-to-millions of counters that
/// share one width. Storing them as `Vec<SaturatingCounter>` costs two
/// bytes per entry — half of it the `max` bound duplicated into every
/// element. A `CounterTable` keeps one byte per counter plus a single
/// shared bound, **halving every predictor table's memory footprint and
/// cache traffic** — the paper's 96KB hybrid predictor state drops from
/// ~832KB to ~416KB per pipeline/session, which is what the batched
/// confidence hot path ends up bounded by.
///
/// # Examples
///
/// ```
/// use paco_branch::CounterTable;
/// let mut t = CounterTable::new(2, 1, 4); // 2-bit counters, weakly not-taken
/// assert!(!t.msb(0));
/// t.increment(0);
/// assert!(t.msb(0));
/// ```
#[derive(Debug, Clone)]
pub struct CounterTable {
    values: Vec<u8>,
    max: u8,
    /// `max / 2`: `msb(i)` ⇔ `values[i] > msb_threshold`.
    msb_threshold: u8,
}

impl CounterTable {
    /// Creates a table of `entries` `bits`-wide counters, all at
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 8, or `initial` exceeds the
    /// maximum representable value.
    pub fn new(bits: u32, initial: u8, entries: usize) -> Self {
        assert!((1..=8).contains(&bits), "counter width must be 1..=8 bits");
        let max = ((1u16 << bits) - 1) as u8;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        CounterTable {
            values: vec![initial; entries],
            max,
            msb_threshold: max / 2,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The shared maximum representable value.
    #[inline]
    pub fn max(&self) -> u8 {
        self.max
    }

    /// The shared counter width in bits.
    #[inline]
    pub fn counter_bits(&self) -> u32 {
        8 - self.max.leading_zeros()
    }

    /// Counter `idx`'s current value.
    #[inline]
    pub fn value(&self, idx: usize) -> u8 {
        self.values[idx]
    }

    /// Counter `idx`'s most significant bit: the conventional "predict
    /// taken" test.
    #[inline]
    pub fn msb(&self, idx: usize) -> bool {
        self.values[idx] > self.msb_threshold
    }

    /// Increments counter `idx`, saturating at the maximum.
    #[inline]
    pub fn increment(&mut self, idx: usize) {
        let v = &mut self.values[idx];
        if *v < self.max {
            *v += 1;
        }
    }

    /// Decrements counter `idx`, saturating at zero.
    #[inline]
    pub fn decrement(&mut self, idx: usize) {
        let v = &mut self.values[idx];
        if *v > 0 {
            *v -= 1;
        }
    }

    /// Resets counter `idx` to zero (the JRS miss-distance counter does
    /// this on a mispredict).
    #[inline]
    pub fn reset(&mut self, idx: usize) {
        self.values[idx] = 0;
    }

    /// Fused predict-then-train on counter `idx`: returns the pre-update
    /// prediction and applies the outcome, touching the entry once — ≡
    /// [`msb`](Self::msb) followed by increment/decrement.
    #[inline]
    pub fn train(&mut self, idx: usize, taken: bool) -> bool {
        let v = &mut self.values[idx];
        let predicted = *v > self.msb_threshold;
        if taken {
            if *v < self.max {
                *v += 1;
            }
        } else if *v > 0 {
            *v -= 1;
        }
        predicted
    }

    /// Packed lane predict: the [`msb`](Self::msb) of up to 64 counters,
    /// bit `j` of the result answering for `idxs[j]`.
    ///
    /// Counter bytes are gathered eight at a time into a `u64` and
    /// compared against the msb threshold with branchless SWAR byte
    /// arithmetic — no per-lane branches, no per-lane bounds checks
    /// beyond the gather loads. The result is only meaningful if no
    /// counter in `idxs` is trained between the gather and its use;
    /// callers that interleave reads with training (the in-flight-window
    /// hot path in steady state) must fall back to per-event
    /// [`msb`](Self::msb)
    /// reads to stay order-exact.
    ///
    /// # Panics
    ///
    /// Panics if `idxs` holds more than 64 indices or any index is out
    /// of range.
    #[inline]
    pub fn predict_hashed_n(&self, idxs: &[u32]) -> u64 {
        assert!(idxs.len() <= 64, "at most 64 lanes per packed predict");
        const LO7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
        const MSB: u64 = 0x8080_8080_8080_8080;
        const ONES: u64 = 0x0101_0101_0101_0101;
        // Per-byte `x > t` for t <= 127: the biased low-7-bit add carries
        // into the MSB exactly when the low bits exceed t, and OR-ing the
        // original value keeps bytes that were already >= 128.
        let bias = (0x7f - self.msb_threshold as u64) * ONES;
        let mut mask = 0u64;
        let mut lane = 0u32;
        let mut chunks = idxs.chunks_exact(8);
        for chunk in &mut chunks {
            let mut x = 0u64;
            for (k, &i) in chunk.iter().enumerate() {
                x |= (self.values[i as usize] as u64) << (8 * k);
            }
            let gt = (((x & LO7) + bias) | x) & MSB;
            // Movemask: collapse the eight result MSBs into eight bits.
            let bits = ((gt >> 7) & ONES).wrapping_mul(0x0102_0408_1020_4080) >> 56;
            mask |= bits << lane;
            lane += 8;
        }
        for &i in chunks.remainder() {
            mask |= ((self.values[i as usize] > self.msb_threshold) as u64) << lane;
            lane += 1;
        }
        mask
    }

    /// Packed lane train: applies [`train`](Self::train) to up to 64
    /// counters in lane order, reading outcome `j` from bit `j` of
    /// `takens` and returning the pre-update predictions packed the same
    /// way.
    ///
    /// Each lane runs the branchless saturating update (no data-dependent
    /// branches), but lanes are applied **sequentially**: duplicate
    /// indices within one call must observe each other's updates exactly
    /// as the scalar spelling would, which rules out a packed
    /// scatter-modify-write.
    ///
    /// # Panics
    ///
    /// Panics if `idxs` holds more than 64 indices or any index is out
    /// of range.
    pub fn train_hashed_n(&mut self, idxs: &[u32], takens: u64) -> u64 {
        assert!(idxs.len() <= 64, "at most 64 lanes per packed train");
        let mut predictions = 0u64;
        for (j, &i) in idxs.iter().enumerate() {
            let taken = takens >> j & 1 != 0;
            predictions |= (self.train_branchless(i as usize, taken) as u64) << j;
        }
        predictions
    }

    /// The branchless spelling of [`train`](Self::train): same pre-update
    /// prediction, same saturating update, no data-dependent branches.
    /// The packed lane APIs use this so a mispredict-heavy outcome mix
    /// cannot stall the train pass on branch mispredicts; equivalence
    /// with `train` over the full `(width, value, outcome)` domain is
    /// pinned by a unit test.
    #[inline]
    pub fn train_branchless(&mut self, idx: usize, taken: bool) -> bool {
        let v = self.values[idx];
        let predicted = v > self.msb_threshold;
        let inc = (taken & (v < self.max)) as u8;
        let dec = (!taken & (v > 0)) as u8;
        self.values[idx] = v + inc - dec;
        predicted
    }

    /// Best-effort prefetch of the cache line holding counter `idx`.
    ///
    /// On x86-64 this issues a `prefetcht0` hint for the line so a later
    /// read or train finds it resident; everywhere else (and under Miri,
    /// which has no model for prefetch) it is a no-op. Out-of-range
    /// indices are ignored — a prefetch is advisory and must never
    /// panic.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            if let Some(v) = self.values.get(idx) {
                // SAFETY: the pointer derives from a live reference and
                // prefetch reads nothing — it is purely a cache hint.
                unsafe { _mm_prefetch((v as *const u8).cast::<i8>(), _MM_HINT_T0) };
            }
        }
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        {
            let _ = idx;
        }
    }

    /// Test-only direct counter write; `false` if `v` exceeds the width.
    #[cfg(test)]
    fn set_value_for_test(&mut self, idx: usize, v: u8) -> bool {
        if v > self.max {
            return false;
        }
        self.values[idx] = v;
        true
    }

    /// Appends the raw counter values (length prefix + one byte per
    /// counter) — the shared snapshot encoding for every table-based
    /// predictor in this crate.
    pub fn save_state(&self, out: &mut Vec<u8>) {
        paco_types::wire::write_uvarint(out, self.values.len() as u64);
        out.extend_from_slice(&self.values);
    }

    /// Restores state saved by [`save_state`](Self::save_state),
    /// advancing `input`. `false` (table untouched or partially written
    /// — callers treat any failure as fatal for the whole restore) on a
    /// length mismatch, truncation, or an out-of-range counter value.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        let Some(len) = paco_types::wire::read_uvarint(input) else {
            return false;
        };
        if len != self.values.len() as u64 || input.len() < self.values.len() {
            return false;
        }
        let (bytes, rest) = input.split_at(self.values.len());
        if bytes.iter().any(|&v| v > self.max) {
            return false;
        }
        self.values.copy_from_slice(bytes);
        *input = rest;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn msb_threshold_for_two_bit() {
        // 0,1 predict not-taken; 2,3 predict taken.
        assert!(!SaturatingCounter::new(2, 0).msb());
        assert!(!SaturatingCounter::new(2, 1).msb());
        assert!(SaturatingCounter::new(2, 2).msb());
        assert!(SaturatingCounter::new(2, 3).msb());
    }

    #[test]
    fn four_bit_counter_range() {
        let mut c = SaturatingCounter::new(4, 0);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 15);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn rejects_wide_counters() {
        let _ = SaturatingCounter::new(9, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_bad_initial() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn packed_predict_matches_scalar_msb() {
        // Every counter width, a value mix covering both sides of the
        // threshold, and lane counts that exercise the SWAR body and the
        // remainder loop.
        for bits in 1..=8u32 {
            let max = ((1u16 << bits) - 1) as u8;
            let mut t = CounterTable::new(bits, 0, 97);
            for i in 0..t.len() {
                let v = ((i as u32 * 37 + bits) % (max as u32 + 1)) as u8;
                assert!(t.set_value_for_test(i, v));
            }
            for n in [0usize, 1, 7, 8, 9, 16, 31, 64] {
                let idxs: Vec<u32> = (0..n).map(|j| ((j * 13 + 5) % t.len()) as u32).collect();
                let packed = t.predict_hashed_n(&idxs);
                for (j, &i) in idxs.iter().enumerate() {
                    assert_eq!(
                        packed >> j & 1 != 0,
                        t.msb(i as usize),
                        "bits={bits} lane={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn branchless_train_is_train() {
        // Exhaustive over (width, starting value, outcome): the branchless
        // core must be indistinguishable from the branching spelling.
        for bits in 1..=8u32 {
            let max = ((1u16 << bits) - 1) as u8;
            for v in 0..=max {
                for taken in [false, true] {
                    let mut a = CounterTable::new(bits, 0, 1);
                    let mut b = CounterTable::new(bits, 0, 1);
                    assert!(a.set_value_for_test(0, v));
                    assert!(b.set_value_for_test(0, v));
                    assert_eq!(a.train(0, taken), b.train_branchless(0, taken));
                    assert_eq!(a.value(0), b.value(0), "bits={bits} v={v} taken={taken}");
                }
            }
        }
    }

    #[test]
    fn packed_train_applies_lanes_in_order() {
        // Duplicate indices in one call: lane order must be observed
        // (two increments on the same counter stack, as scalar code
        // would produce).
        let mut t = CounterTable::new(2, 1, 8);
        let idxs = [3u32, 3, 3, 5];
        let pre = t.train_hashed_n(&idxs, 0b0111);
        assert_eq!(pre & 1, 0, "first lane sees the original weak value");
        assert_eq!(pre >> 2 & 1, 1, "third lane sees two stacked increments");
        assert_eq!(t.value(3), 3);
        assert_eq!(t.value(5), 0);
    }

    #[test]
    fn prefetch_accepts_any_index() {
        let t = CounterTable::new(2, 1, 4);
        t.prefetch(0);
        t.prefetch(3);
        t.prefetch(4_000_000); // out of range: ignored, never panics
    }
}
