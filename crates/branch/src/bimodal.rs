//! Bimodal (per-PC 2-bit counter) direction predictor.

use crate::{CounterTable, DirectionPredictor};
use paco_types::Pc;

/// A bimodal predictor: a table of 2-bit saturating counters indexed by a
/// hash of the branch PC.
///
/// The paper's tournament predictor uses a 32KB bimodal component
/// (2<sup>17</sup> 2-bit counters).
///
/// # Examples
///
/// ```
/// use paco_branch::{BimodalPredictor, DirectionPredictor};
/// use paco_types::Pc;
///
/// let mut p = BimodalPredictor::new(1 << 10);
/// let pc = Pc::new(0x40);
/// for _ in 0..4 {
///     let pred = p.predict(pc, 0);
///     p.update(pc, 0, true, pred);
/// }
/// assert!(p.predict(pc, 0));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: CounterTable,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` 2-bit counters, initialized
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        BimodalPredictor {
            table: CounterTable::new(2, 1, entries),
            mask: entries as u64 - 1,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn index(&self, pc_hash: u64) -> usize {
        (pc_hash & self.mask) as usize
    }

    /// [`predict`](DirectionPredictor::predict) with the PC hash
    /// ([`Pc::table_hash`]) precomputed — the batched hot path hashes
    /// each event's PC once and feeds every table from it. The plain
    /// trait methods delegate here, so the two spellings cannot drift.
    #[inline]
    pub fn predict_hashed(&self, pc_hash: u64) -> bool {
        self.table.msb(self.index(pc_hash))
    }

    /// [`update`](DirectionPredictor::update) with the PC hash
    /// precomputed (see [`predict_hashed`](Self::predict_hashed)).
    #[inline]
    pub fn update_hashed(&mut self, pc_hash: u64, taken: bool) {
        let idx = self.index(pc_hash);
        if taken {
            self.table.increment(idx);
        } else {
            self.table.decrement(idx);
        }
    }

    /// Fused predict-then-train: returns the pre-update prediction and
    /// applies the outcome to the same counter, touching the entry once
    /// — ≡ [`predict_hashed`](Self::predict_hashed) followed by
    /// [`update_hashed`](Self::update_hashed), which is how choosers
    /// use the component at resolve time.
    #[inline]
    pub fn train_hashed(&mut self, pc_hash: u64, taken: bool) -> bool {
        self.table.train(self.index(pc_hash), taken)
    }

    /// The table index for a PC hash (see
    /// [`GsharePredictor::index_hashed`](crate::GsharePredictor::index_hashed)
    /// for the index-cache pattern this serves).
    #[inline]
    pub fn index_hashed(&self, pc_hash: u64) -> u32 {
        self.index(pc_hash) as u32
    }

    /// Lane predict: caches each lane's table index in `idx_out` and
    /// returns the packed predictions via the SWAR gather
    /// [`CounterTable::predict_hashed_n`]. The packed result is only
    /// order-exact when no lane's counter is trained mid-lane; the index
    /// cache is always valid.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree or exceed 64 lanes.
    pub fn predict_hashed_n(&self, pc_hashes: &[u64], idx_out: &mut [u32]) -> u64 {
        assert_eq!(pc_hashes.len(), idx_out.len());
        for (idx, &h) in idx_out.iter_mut().zip(pc_hashes) {
            *idx = self.index(h) as u32;
        }
        self.table.predict_hashed_n(idx_out)
    }

    /// Packed predictions from already-cached indices (the gather half of
    /// [`predict_hashed_n`](Self::predict_hashed_n); same order-exactness
    /// caveat).
    #[inline]
    pub fn predict_cached_n(&self, idxs: &[u32]) -> u64 {
        self.table.predict_hashed_n(idxs)
    }

    /// Lane train: applies [`train_hashed`](Self::train_hashed) to up to
    /// 64 PC-hash lanes in order (outcome `j` in bit `j` of `takens`),
    /// returning packed pre-update predictions. Sequential per lane so
    /// duplicate indices observe each other, branchless per counter.
    pub fn train_hashed_n(&mut self, pc_hashes: &[u64], takens: u64) -> u64 {
        assert!(pc_hashes.len() <= 64, "at most 64 lanes per packed train");
        let mut predictions = 0u64;
        for (j, &h) in pc_hashes.iter().enumerate() {
            let taken = takens >> j & 1 != 0;
            let pre = self.table.train_branchless(self.index(h), taken);
            predictions |= (pre as u64) << j;
        }
        predictions
    }

    /// [`predict_hashed`](Self::predict_hashed) from a cached index —
    /// the order-exact per-event read used between trains.
    #[inline]
    pub fn predict_at(&self, idx: u32) -> bool {
        self.table.msb(idx as usize)
    }

    /// [`train_hashed`](Self::train_hashed) from a cached index, using
    /// the branchless counter update.
    #[inline]
    pub fn train_at(&mut self, idx: u32, taken: bool) -> bool {
        self.table.train_branchless(idx as usize, taken)
    }

    /// Prefetches the cache line holding the counter at a cached index
    /// (no-op off x86-64 and under Miri).
    #[inline]
    pub fn prefetch(&self, idx: u32) {
        self.table.prefetch(idx as usize);
    }

    /// Appends the predictor's table state (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.table.save_state(out);
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// predictor of the same configuration; `false` on any mismatch.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.table.load_state(input)
    }
}

impl DirectionPredictor for BimodalPredictor {
    #[inline]
    fn predict(&self, pc: Pc, _history: u64) -> bool {
        self.predict_hashed(pc.table_hash())
    }

    #[inline]
    fn update(&mut self, pc: Pc, _history: u64, taken: bool, _predicted: bool) {
        self.update_hashed(pc.table_hash(), taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut BimodalPredictor, pc: Pc, outcomes: &[bool]) {
        for &t in outcomes {
            let pred = p.predict(pc, 0);
            p.update(pc, 0, t, pred);
        }
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = BimodalPredictor::new(256);
        let pc = Pc::new(0x100);
        train(&mut p, pc, &[true; 8]);
        assert!(p.predict(pc, 0));
        train(&mut p, pc, &[false; 8]);
        assert!(!p.predict(pc, 0));
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut p = BimodalPredictor::new(256);
        let pc = Pc::new(0x100);
        train(&mut p, pc, &[true; 8]);
        // One not-taken outcome should not flip a strongly-taken counter.
        train(&mut p, pc, &[false]);
        assert!(p.predict(pc, 0));
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = BimodalPredictor::new(1 << 12);
        let a = Pc::new(0x1000);
        let b = Pc::new(0x1004);
        train(&mut p, a, &[true; 8]);
        train(&mut p, b, &[false; 8]);
        assert!(p.predict(a, 0));
        assert!(!p.predict(b, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BimodalPredictor::new(1000);
    }
}
