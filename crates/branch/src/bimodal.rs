//! Bimodal (per-PC 2-bit counter) direction predictor.

use crate::{CounterTable, DirectionPredictor};
use paco_types::Pc;

/// A bimodal predictor: a table of 2-bit saturating counters indexed by a
/// hash of the branch PC.
///
/// The paper's tournament predictor uses a 32KB bimodal component
/// (2<sup>17</sup> 2-bit counters).
///
/// # Examples
///
/// ```
/// use paco_branch::{BimodalPredictor, DirectionPredictor};
/// use paco_types::Pc;
///
/// let mut p = BimodalPredictor::new(1 << 10);
/// let pc = Pc::new(0x40);
/// for _ in 0..4 {
///     let pred = p.predict(pc, 0);
///     p.update(pc, 0, true, pred);
/// }
/// assert!(p.predict(pc, 0));
/// ```
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: CounterTable,
    mask: u64,
}

impl BimodalPredictor {
    /// Creates a predictor with `entries` 2-bit counters, initialized
    /// weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or is zero.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        BimodalPredictor {
            table: CounterTable::new(2, 1, entries),
            mask: entries as u64 - 1,
        }
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    #[inline]
    fn index(&self, pc_hash: u64) -> usize {
        (pc_hash & self.mask) as usize
    }

    /// [`predict`](DirectionPredictor::predict) with the PC hash
    /// ([`Pc::table_hash`]) precomputed — the batched hot path hashes
    /// each event's PC once and feeds every table from it. The plain
    /// trait methods delegate here, so the two spellings cannot drift.
    #[inline]
    pub fn predict_hashed(&self, pc_hash: u64) -> bool {
        self.table.msb(self.index(pc_hash))
    }

    /// [`update`](DirectionPredictor::update) with the PC hash
    /// precomputed (see [`predict_hashed`](Self::predict_hashed)).
    #[inline]
    pub fn update_hashed(&mut self, pc_hash: u64, taken: bool) {
        let idx = self.index(pc_hash);
        if taken {
            self.table.increment(idx);
        } else {
            self.table.decrement(idx);
        }
    }

    /// Fused predict-then-train: returns the pre-update prediction and
    /// applies the outcome to the same counter, touching the entry once
    /// — ≡ [`predict_hashed`](Self::predict_hashed) followed by
    /// [`update_hashed`](Self::update_hashed), which is how choosers
    /// use the component at resolve time.
    #[inline]
    pub fn train_hashed(&mut self, pc_hash: u64, taken: bool) -> bool {
        self.table.train(self.index(pc_hash), taken)
    }

    /// Appends the predictor's table state (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.table.save_state(out);
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// predictor of the same configuration; `false` on any mismatch.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.table.load_state(input)
    }
}

impl DirectionPredictor for BimodalPredictor {
    #[inline]
    fn predict(&self, pc: Pc, _history: u64) -> bool {
        self.predict_hashed(pc.table_hash())
    }

    #[inline]
    fn update(&mut self, pc: Pc, _history: u64, taken: bool, _predicted: bool) {
        self.update_hashed(pc.table_hash(), taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut BimodalPredictor, pc: Pc, outcomes: &[bool]) {
        for &t in outcomes {
            let pred = p.predict(pc, 0);
            p.update(pc, 0, t, pred);
        }
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = BimodalPredictor::new(256);
        let pc = Pc::new(0x100);
        train(&mut p, pc, &[true; 8]);
        assert!(p.predict(pc, 0));
        train(&mut p, pc, &[false; 8]);
        assert!(!p.predict(pc, 0));
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut p = BimodalPredictor::new(256);
        let pc = Pc::new(0x100);
        train(&mut p, pc, &[true; 8]);
        // One not-taken outcome should not flip a strongly-taken counter.
        train(&mut p, pc, &[false]);
        assert!(p.predict(pc, 0));
    }

    #[test]
    fn different_pcs_use_different_entries() {
        let mut p = BimodalPredictor::new(1 << 12);
        let a = Pc::new(0x1000);
        let b = Pc::new(0x1004);
        train(&mut p, a, &[true; 8]);
        train(&mut p, b, &[false; 8]);
        assert!(p.predict(a, 0));
        assert!(!p.predict(b, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = BimodalPredictor::new(1000);
    }
}
