//! The paper's tournament (hybrid) predictor: gshare + bimodal + selector.

use crate::{BimodalPredictor, CounterTable, DirectionPredictor, GsharePredictor};
use paco_types::canon::Canon;
use paco_types::Pc;

/// Configuration for a [`TournamentPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TournamentConfig {
    /// Entries in the gshare component (2-bit counters).
    pub gshare_entries: usize,
    /// Entries in the bimodal component (2-bit counters).
    pub bimodal_entries: usize,
    /// Entries in the selector (2-bit chooser counters).
    pub selector_entries: usize,
    /// Global history bits folded into gshare and selector indices.
    pub history_bits: u32,
}

impl TournamentConfig {
    /// The paper's configuration: "96KB hybrid, 32KB gshare, 32KB bimodal,
    /// 32KB selector, 8 bits of global history".
    ///
    /// 32KB of 2-bit counters = 2<sup>17</sup> entries per component.
    pub const fn paper() -> Self {
        TournamentConfig {
            gshare_entries: 1 << 17,
            bimodal_entries: 1 << 17,
            selector_entries: 1 << 17,
            history_bits: 8,
        }
    }

    /// A small configuration for fast unit tests.
    pub const fn tiny() -> Self {
        TournamentConfig {
            gshare_entries: 1 << 10,
            bimodal_entries: 1 << 10,
            selector_entries: 1 << 10,
            history_bits: 8,
        }
    }
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig::paper()
    }
}

impl Canon for TournamentConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x01); // type tag
        self.gshare_entries.canon(out);
        self.bimodal_entries.canon(out);
        self.selector_entries.canon(out);
        self.history_bits.canon(out);
    }
}

/// A McFarling-style tournament predictor combining gshare and bimodal
/// components through a 2-bit chooser table.
///
/// The chooser counter moves toward the component that was correct when the
/// two disagree (high = prefer gshare).
///
/// # Examples
///
/// ```
/// use paco_branch::{TournamentPredictor, TournamentConfig, DirectionPredictor};
/// use paco_types::Pc;
///
/// let mut p = TournamentPredictor::new(TournamentConfig::tiny());
/// let pc = Pc::new(0x400);
/// for _ in 0..16 {
///     let pred = p.predict(pc, 0);
///     p.update(pc, 0, true, pred);
/// }
/// assert!(p.predict(pc, 0));
/// ```
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    gshare: GsharePredictor,
    bimodal: BimodalPredictor,
    selector: CounterTable,
    selector_mask: u64,
    history_bits: u32,
}

impl TournamentPredictor {
    /// Creates a tournament predictor from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any component size is not a power of two.
    pub fn new(config: TournamentConfig) -> Self {
        assert!(
            config.selector_entries.is_power_of_two(),
            "selector size must be a power of two"
        );
        TournamentPredictor {
            gshare: GsharePredictor::new(config.gshare_entries, config.history_bits),
            bimodal: BimodalPredictor::new(config.bimodal_entries),
            // Initialize the chooser with a slight bimodal preference
            // (bimodal warms up faster).
            selector: CounterTable::new(2, 1, config.selector_entries),
            selector_mask: config.selector_entries as u64 - 1,
            history_bits: config.history_bits,
        }
    }

    /// Creates the predictor in the paper's 96KB configuration.
    pub fn paper_default() -> Self {
        TournamentPredictor::new(TournamentConfig::paper())
    }

    /// Host-memory footprint of the three component tables in bytes (one
    /// byte per counter) — what a cache-residency decision should look
    /// at, as opposed to the hardware bit budget.
    pub fn host_bytes(&self) -> usize {
        self.gshare.entries() + self.bimodal.entries() + self.selector.len()
    }

    #[inline]
    fn selector_index(&self, pc_hash: u64, history: u64) -> usize {
        let hist_mask = if self.history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.history_bits) - 1
        };
        ((pc_hash ^ (history & hist_mask)) & self.selector_mask) as usize
    }

    /// [`predict`](DirectionPredictor::predict) with the PC hash
    /// ([`Pc::table_hash`]) precomputed — the batched hot path hashes
    /// each event's PC once and feeds all three component tables from
    /// it. The plain trait methods delegate here, so the two spellings
    /// cannot drift.
    #[inline]
    pub fn predict_hashed(&self, pc_hash: u64, history: u64) -> bool {
        let g = self.gshare.predict_hashed(pc_hash, history);
        let b = self.bimodal.predict_hashed(pc_hash);
        if self.selector.msb(self.selector_index(pc_hash, history)) {
            g
        } else {
            b
        }
    }

    /// [`update`](DirectionPredictor::update) with the PC hash
    /// precomputed (see [`predict_hashed`](Self::predict_hashed)).
    ///
    /// Each component entry is touched once via the fused
    /// `train_hashed` ops: the pre-update component predictions train
    /// the chooser (chooser and component tables are disjoint, so
    /// updating the components first cannot change what the chooser
    /// sees), then the components absorb the outcome — the same final
    /// state as the read-then-update spelling, entry for entry.
    #[inline]
    pub fn update_hashed(&mut self, pc_hash: u64, history: u64, taken: bool) {
        let g = self.gshare.train_hashed(pc_hash, history, taken);
        let b = self.bimodal.train_hashed(pc_hash, taken);
        // Train the chooser only on disagreement.
        if g != b {
            let idx = self.selector_index(pc_hash, history);
            if g == taken {
                self.selector.increment(idx);
            } else {
                self.selector.decrement(idx);
            }
        }
    }

    /// Lane predict: caches every component index for each `(pc_hash,
    /// history)` lane in `gshare_idx`/`bimodal_idx`/`selector_idx` and
    /// returns the packed tournament predictions, selecting between the
    /// packed gshare and bimodal answers with bitwise lane masks (no
    /// per-lane branch).
    ///
    /// The index caches are always valid and are what the chunked hot
    /// path consumes: per-event reads via [`predict_at`](Self::predict_at)
    /// between trains (order-exact), prefetches via
    /// [`prefetch_at`](Self::prefetch_at). The packed predictions are
    /// only order-exact when no counter involved is trained mid-lane —
    /// e.g. while the in-flight window is still filling and no resolves
    /// are due.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree or exceed 64 lanes.
    pub fn predict_hashed_n(
        &self,
        pc_hashes: &[u64],
        histories: &[u64],
        gshare_idx: &mut [u32],
        bimodal_idx: &mut [u32],
        selector_idx: &mut [u32],
    ) -> u64 {
        self.cache_indices(pc_hashes, histories, gshare_idx, bimodal_idx, selector_idx);
        self.predict_cached_n(gshare_idx, bimodal_idx, selector_idx)
    }

    /// Fills the three component index caches for each `(pc_hash,
    /// history)` lane — the pure half of
    /// [`predict_hashed_n`](Self::predict_hashed_n). Index math touches
    /// no counter state, so the chunked hot path runs this (and the
    /// prefetches it feeds) a full chunk ahead of the reads.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    #[inline]
    pub fn cache_indices(
        &self,
        pc_hashes: &[u64],
        histories: &[u64],
        gshare_idx: &mut [u32],
        bimodal_idx: &mut [u32],
        selector_idx: &mut [u32],
    ) {
        assert_eq!(pc_hashes.len(), histories.len());
        assert_eq!(pc_hashes.len(), gshare_idx.len());
        assert_eq!(pc_hashes.len(), bimodal_idx.len());
        assert_eq!(pc_hashes.len(), selector_idx.len());
        for (j, (&h, &hist)) in pc_hashes.iter().zip(histories).enumerate() {
            gshare_idx[j] = self.gshare.index_hashed(h, hist);
            bimodal_idx[j] = self.bimodal.index_hashed(h);
            selector_idx[j] = self.selector_index(h, hist) as u32;
        }
    }

    /// The packed-gather half of
    /// [`predict_hashed_n`](Self::predict_hashed_n): packed tournament
    /// predictions from already-cached component indices, via the SWAR
    /// gather [`CounterTable::predict_hashed_n`] on each component and a
    /// bitwise lane select. Only order-exact when no counter involved is
    /// trained mid-lane (see `predict_hashed_n`).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree or exceed 64 lanes.
    #[inline]
    pub fn predict_cached_n(
        &self,
        gshare_idx: &[u32],
        bimodal_idx: &[u32],
        selector_idx: &[u32],
    ) -> u64 {
        assert_eq!(gshare_idx.len(), bimodal_idx.len());
        assert_eq!(gshare_idx.len(), selector_idx.len());
        let g = self.gshare.predict_cached_n(gshare_idx);
        let b = self.bimodal.predict_cached_n(bimodal_idx);
        let s = self.selector.predict_hashed_n(selector_idx);
        (g & s) | (b & !s)
    }

    /// Lane train: applies [`update_hashed`](Self::update_hashed) to up
    /// to 64 lanes in order (outcome `j` in bit `j` of `takens`).
    /// Sequential per lane — colliding component entries must observe
    /// each other's updates exactly as the scalar spelling would.
    pub fn train_hashed_n(&mut self, pc_hashes: &[u64], histories: &[u64], takens: u64) {
        assert_eq!(pc_hashes.len(), histories.len());
        assert!(pc_hashes.len() <= 64, "at most 64 lanes per packed train");
        for (j, (&h, &hist)) in pc_hashes.iter().zip(histories).enumerate() {
            self.update_hashed(h, hist, takens >> j & 1 != 0);
        }
    }

    /// [`predict_hashed`](Self::predict_hashed) from component indices
    /// cached by [`predict_hashed_n`](Self::predict_hashed_n) — the
    /// order-exact per-event read the chunked hot path issues between
    /// resolve-time trains. The select is branchless.
    #[inline]
    pub fn predict_at(&self, gshare_idx: u32, bimodal_idx: u32, selector_idx: u32) -> bool {
        let g = self.gshare.predict_at(gshare_idx);
        let b = self.bimodal.predict_at(bimodal_idx);
        let s = self.selector.msb(selector_idx as usize);
        (g & s) | (b & !s)
    }

    /// Prefetches the three component cache lines for one lane of cached
    /// indices (no-op off x86-64 and under Miri).
    #[inline]
    pub fn prefetch_at(&self, gshare_idx: u32, bimodal_idx: u32, selector_idx: u32) {
        self.gshare.prefetch(gshare_idx);
        self.bimodal.prefetch(bimodal_idx);
        self.selector.prefetch(selector_idx as usize);
    }

    /// The two component predictions `(gshare, bimodal)` for inspection.
    pub fn component_predictions(&self, pc: Pc, history: u64) -> (bool, bool) {
        (
            self.gshare.predict(pc, history),
            self.bimodal.predict(pc, history),
        )
    }

    /// Appends the full predictor state — all three component tables —
    /// (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.gshare.save_state(out);
        self.bimodal.save_state(out);
        self.selector.save_state(out);
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// predictor of the same configuration; `false` on any mismatch (the
    /// predictor may then be partially restored and must be discarded).
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.gshare.load_state(input)
            && self.bimodal.load_state(input)
            && self.selector.load_state(input)
    }
}

impl DirectionPredictor for TournamentPredictor {
    #[inline]
    fn predict(&self, pc: Pc, history: u64) -> bool {
        self.predict_hashed(pc.table_hash(), history)
    }

    #[inline]
    fn update(&mut self, pc: Pc, history: u64, taken: bool, _predicted: bool) {
        self.update_hashed(pc.table_hash(), history, taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_static_bias() {
        let mut p = TournamentPredictor::new(TournamentConfig::tiny());
        let pc = Pc::new(0x3000);
        for _ in 0..16 {
            let pred = p.predict(pc, 0);
            p.update(pc, 0, false, pred);
        }
        assert!(!p.predict(pc, 0));
    }

    #[test]
    fn chooser_picks_gshare_for_history_correlated_branch() {
        let mut p = TournamentPredictor::new(TournamentConfig::tiny());
        let pc = Pc::new(0x5000);
        // Alternating pattern driven by history bit 0: bimodal is ~50%,
        // gshare is perfect once trained.
        for i in 0..512u64 {
            let h = i & 0xff;
            let taken = h & 1 == 1;
            let pred = p.predict(pc, h);
            p.update(pc, h, taken, pred);
        }
        let mut correct = 0;
        for i in 0..64u64 {
            let h = i & 0xff;
            let taken = h & 1 == 1;
            if p.predict(pc, h) == taken {
                correct += 1;
            }
        }
        assert!(
            correct >= 60,
            "tournament should track gshare: {correct}/64"
        );
    }

    #[test]
    fn paper_config_sizes() {
        let c = TournamentConfig::paper();
        // 2^17 2-bit counters = 32KB per component.
        assert_eq!(c.gshare_entries * 2 / 8, 32 * 1024);
        assert_eq!(c.bimodal_entries * 2 / 8, 32 * 1024);
        assert_eq!(c.selector_entries * 2 / 8, 32 * 1024);
        assert_eq!(c.history_bits, 8);
    }

    #[test]
    fn state_snapshot_round_trips() {
        let mut trained = TournamentPredictor::new(TournamentConfig::tiny());
        for i in 0..256u64 {
            let pc = Pc::new(0x4000 + (i % 13) * 4);
            let h = i & 0xff;
            let taken = (i * 7) % 3 == 0;
            let pred = trained.predict(pc, h);
            trained.update(pc, h, taken, pred);
        }
        let mut blob = Vec::new();
        trained.save_state(&mut blob);

        let mut fresh = TournamentPredictor::new(TournamentConfig::tiny());
        let mut input = blob.as_slice();
        assert!(fresh.load_state(&mut input));
        assert!(input.is_empty());
        for i in 0..64u64 {
            let pc = Pc::new(0x4000 + (i % 13) * 4);
            assert_eq!(fresh.predict(pc, i & 0xff), trained.predict(pc, i & 0xff));
        }
    }

    #[test]
    fn state_rejects_mismatched_configuration() {
        let trained = TournamentPredictor::new(TournamentConfig::tiny());
        let mut blob = Vec::new();
        trained.save_state(&mut blob);
        let mut bigger = TournamentPredictor::new(TournamentConfig {
            gshare_entries: 1 << 11,
            ..TournamentConfig::tiny()
        });
        assert!(!bigger.load_state(&mut blob.as_slice()));
        // Truncation fails too.
        let mut small = TournamentPredictor::new(TournamentConfig::tiny());
        assert!(!small.load_state(&mut &blob[..blob.len() / 2]));
    }

    #[test]
    fn lane_predict_matches_scalar_on_quiet_tables() {
        let mut p = TournamentPredictor::new(TournamentConfig::tiny());
        // Train a varied state first, then compare lane vs scalar reads
        // with no interleaved trains (the regime the packed result is
        // specified for).
        for i in 0..4096u64 {
            let h = (i * 29) & 0xff;
            p.update_hashed(i.wrapping_mul(0x9e37_79b9), h, i % 3 == 0);
        }
        let pc_hashes: Vec<u64> = (0..37u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let histories: Vec<u64> = (0..37u64).map(|i| (i * 29) & 0xff).collect();
        let n = pc_hashes.len();
        let (mut g, mut b, mut s) = (vec![0u32; n], vec![0u32; n], vec![0u32; n]);
        let packed = p.predict_hashed_n(&pc_hashes, &histories, &mut g, &mut b, &mut s);
        for j in 0..n {
            let scalar = p.predict_hashed(pc_hashes[j], histories[j]);
            assert_eq!(packed >> j & 1 != 0, scalar, "lane {j}");
            assert_eq!(p.predict_at(g[j], b[j], s[j]), scalar, "cached lane {j}");
            p.prefetch_at(g[j], b[j], s[j]); // must never panic
        }
    }

    #[test]
    fn lane_train_matches_scalar_updates() {
        let mut a = TournamentPredictor::new(TournamentConfig::tiny());
        let mut b = TournamentPredictor::new(TournamentConfig::tiny());
        // Deliberately colliding pc hashes: lane order must match the
        // scalar sequential order.
        let pc_hashes: Vec<u64> = (0..16u64).map(|i| (i % 3).wrapping_mul(0x51ed)).collect();
        let histories: Vec<u64> = (0..16u64).map(|i| i & 0xff).collect();
        let takens = 0b1010_1100_0110_0101u64;
        a.train_hashed_n(&pc_hashes, &histories, takens);
        for (j, (&h, &hist)) in pc_hashes.iter().zip(&histories).enumerate() {
            b.update_hashed(h, hist, takens >> j & 1 != 0);
        }
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.save_state(&mut sa);
        b.save_state(&mut sb);
        assert_eq!(sa, sb, "packed and scalar training must converge");
    }

    #[test]
    fn component_predictions_exposed() {
        let p = TournamentPredictor::new(TournamentConfig::tiny());
        let (g, b) = p.component_predictions(Pc::new(0x10), 0);
        // Fresh tables are weakly not-taken.
        assert!(!g);
        assert!(!b);
    }
}
