//! Branch target buffer.

use paco_types::canon::Canon;
use paco_types::Pc;

/// Configuration for a [`Btb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl BtbConfig {
    /// A typical 4K-entry, 4-way BTB.
    pub const fn paper() -> Self {
        BtbConfig {
            sets: 1024,
            ways: 4,
        }
    }

    /// A tiny configuration for unit tests.
    pub const fn tiny() -> Self {
        BtbConfig { sets: 16, ways: 2 }
    }
}

impl Canon for BtbConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x03); // type tag
        self.sets.canon(out);
        self.ways.canon(out);
    }
}

impl Default for BtbConfig {
    fn default() -> Self {
        BtbConfig::paper()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: Pc,
    lru: u64,
}

/// A set-associative branch target buffer with LRU replacement.
///
/// Stores the most recent target of taken control-flow instructions; used
/// by the front end to redirect fetch for taken branches and as the
/// last-target predictor for indirect jumps.
///
/// # Examples
///
/// ```
/// use paco_branch::{Btb, BtbConfig};
/// use paco_types::Pc;
///
/// let mut btb = Btb::new(BtbConfig::tiny());
/// btb.update(Pc::new(0x100), Pc::new(0x900));
/// assert_eq!(btb.lookup(Pc::new(0x100)), Some(Pc::new(0x900)));
/// assert_eq!(btb.lookup(Pc::new(0x104)), None);
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    ways: usize,
    set_mask: u64,
    tick: u64,
}

impl Btb {
    /// Creates a BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(config: BtbConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0, "ways must be positive");
        Btb {
            entries: vec![BtbEntry::default(); config.sets * config.ways],
            ways: config.ways,
            set_mask: config.sets as u64 - 1,
            tick: 0,
        }
    }

    #[inline]
    fn set_range(&self, pc: Pc) -> std::ops::Range<usize> {
        let set = (pc.table_hash() & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up the predicted target for `pc`, refreshing LRU state.
    pub fn lookup(&mut self, pc: Pc) -> Option<Pc> {
        self.tick += 1;
        let tag = pc.addr();
        let range = self.set_range(pc);
        for e in &mut self.entries[range] {
            if e.valid && e.tag == tag {
                e.lru = self.tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or refreshes the target for `pc`, evicting LRU on conflict.
    pub fn update(&mut self, pc: Pc, target: Pc) {
        self.tick += 1;
        let tag = pc.addr();
        let range = self.set_range(pc);
        // Hit: refresh.
        let mut victim = range.start;
        let mut oldest = u64::MAX;
        for i in range {
            let e = &mut self.entries[i];
            if e.valid && e.tag == tag {
                e.target = target;
                e.lru = self.tick;
                return;
            }
            let age = if e.valid { e.lru } else { 0 };
            if age < oldest {
                oldest = age;
                victim = i;
            }
        }
        self.entries[victim] = BtbEntry {
            valid: true,
            tag,
            target,
            lru: self.tick,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_and_retrieves_targets() {
        let mut btb = Btb::new(BtbConfig::tiny());
        btb.update(Pc::new(0x10), Pc::new(0x100));
        btb.update(Pc::new(0x20), Pc::new(0x200));
        assert_eq!(btb.lookup(Pc::new(0x10)), Some(Pc::new(0x100)));
        assert_eq!(btb.lookup(Pc::new(0x20)), Some(Pc::new(0x200)));
    }

    #[test]
    fn update_overwrites_target() {
        let mut btb = Btb::new(BtbConfig::tiny());
        btb.update(Pc::new(0x10), Pc::new(0x100));
        btb.update(Pc::new(0x10), Pc::new(0x300));
        assert_eq!(btb.lookup(Pc::new(0x10)), Some(Pc::new(0x300)));
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        // 1 set, 2 ways: all PCs conflict.
        let mut btb = Btb::new(BtbConfig { sets: 1, ways: 2 });
        btb.update(Pc::new(0x10), Pc::new(0x100));
        btb.update(Pc::new(0x20), Pc::new(0x200));
        // Touch 0x10 so 0x20 becomes LRU.
        assert!(btb.lookup(Pc::new(0x10)).is_some());
        btb.update(Pc::new(0x30), Pc::new(0x300));
        assert_eq!(btb.lookup(Pc::new(0x10)), Some(Pc::new(0x100)));
        assert_eq!(btb.lookup(Pc::new(0x20)), None);
        assert_eq!(btb.lookup(Pc::new(0x30)), Some(Pc::new(0x300)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_set_count() {
        let _ = Btb::new(BtbConfig { sets: 3, ways: 2 });
    }
}
