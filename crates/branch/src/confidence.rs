//! JRS / enhanced-JRS branch confidence estimation.
//!
//! The JRS predictor (Jacobsen, Rotenberg, Smith, MICRO-29) keeps a table of
//! 4-bit *miss distance counters* (MDCs). An MDC is incremented on every
//! correct prediction of the branch that maps to it and reset to zero on a
//! mispredict, so its value is the number of consecutive correct
//! predictions since the last mispredict — a strong predictor of
//! predictability. The *enhanced* JRS variant (Grunwald et al., ISCA-25)
//! additionally folds the predicted direction into the table index.
//!
//! PaCo uses the MDC value not as a binary high/low classification but as a
//! *stratifier*: branches are bucketed by MDC value and a correct-prediction
//! probability is measured per bucket.

use crate::CounterTable;
use paco_types::canon::Canon;
use paco_types::Pc;

/// An MDC (miss-distance counter) value, `0..=15` for the paper's 4-bit
/// counters.
///
/// # Examples
///
/// ```
/// use paco_branch::Mdc;
/// let m = Mdc::new(7);
/// assert_eq!(m.value(), 7);
/// assert!(!m.is_high_confidence(8));
/// assert!(m.is_high_confidence(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Mdc(u8);

impl Mdc {
    /// Number of distinct MDC values for 4-bit counters.
    pub const BUCKETS: usize = 16;
    /// The maximum 4-bit MDC value.
    pub const MAX: Mdc = Mdc(15);

    /// Creates an MDC value.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds 15.
    pub fn new(value: u8) -> Self {
        assert!(value < Self::BUCKETS as u8, "MDC value must be 0..=15");
        Mdc(value)
    }

    /// The raw counter value.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// The bucket index for per-MDC statistics tables.
    #[inline]
    pub const fn bucket(self) -> usize {
        self.0 as usize
    }

    /// The conventional threshold classification: MDC ≥ threshold is "high
    /// confidence" (unlikely to mispredict).
    #[inline]
    pub const fn is_high_confidence(self, threshold: u8) -> bool {
        self.0 >= threshold
    }
}

impl std::fmt::Display for Mdc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An index into the MDC table, captured at prediction time.
///
/// The front end reads the MDC when a branch is fetched and carries the
/// index with the in-flight branch so that the resolution-time update hits
/// the same entry even if global history has since moved on.
///
/// The `Default` value indexes entry 0 — a placeholder for in-flight
/// records of branches that never touch the table (non-conditional
/// control flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MdcIndex(usize);

/// Configuration for an [`MdcTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfidenceConfig {
    /// Number of table entries (power of two). The paper uses an 8KB table
    /// of 4-bit counters = 16384 entries.
    pub entries: usize,
    /// MDC counter width in bits (paper: 4).
    pub counter_bits: u32,
    /// Global-history bits folded into the index.
    pub history_bits: u32,
    /// Enhanced JRS: also fold the predicted direction into the index.
    pub enhanced: bool,
}

impl ConfidenceConfig {
    /// The paper's configuration: "an 8 KB enhanced JRS confidence
    /// predictor, where the MDCs are 4-bit counters".
    pub const fn paper() -> Self {
        ConfidenceConfig {
            entries: 16 * 1024,
            counter_bits: 4,
            history_bits: 8,
            enhanced: true,
        }
    }

    /// The original (non-enhanced) JRS configuration at the same size.
    pub const fn jrs_classic() -> Self {
        ConfidenceConfig {
            entries: 16 * 1024,
            counter_bits: 4,
            history_bits: 8,
            enhanced: false,
        }
    }

    /// A small configuration for unit tests.
    pub const fn tiny() -> Self {
        ConfidenceConfig {
            entries: 256,
            counter_bits: 4,
            history_bits: 4,
            enhanced: true,
        }
    }
}

impl Default for ConfidenceConfig {
    fn default() -> Self {
        ConfidenceConfig::paper()
    }
}

impl Canon for ConfidenceConfig {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x02); // type tag
        self.entries.canon(out);
        self.counter_bits.canon(out);
        self.history_bits.canon(out);
        self.enhanced.canon(out);
    }
}

/// The JRS miss-distance-counter table.
///
/// # Examples
///
/// ```
/// use paco_branch::{MdcTable, ConfidenceConfig};
/// use paco_types::Pc;
///
/// let mut table = MdcTable::new(ConfidenceConfig::tiny());
/// let pc = Pc::new(0x100);
/// let idx = table.index(pc, 0, true);
/// assert_eq!(table.read(idx).value(), 0);
/// table.update(idx, true);
/// table.update(idx, true);
/// assert_eq!(table.read(idx).value(), 2);
/// table.update(idx, false); // mispredict resets
/// assert_eq!(table.read(idx).value(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MdcTable {
    counters: CounterTable,
    mask: u64,
    history_mask: u64,
    enhanced: bool,
}

impl MdcTable {
    /// Creates an MDC table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or the counter width is
    /// outside `1..=8`.
    pub fn new(config: ConfidenceConfig) -> Self {
        assert!(
            config.entries.is_power_of_two(),
            "table size must be a power of two"
        );
        let history_mask = if config.history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << config.history_bits) - 1
        };
        MdcTable {
            counters: CounterTable::new(config.counter_bits, 0, config.entries),
            mask: config.entries as u64 - 1,
            history_mask,
            enhanced: config.enhanced,
        }
    }

    /// Computes the table index for a branch at prediction time.
    ///
    /// `predicted_taken` participates in the hash only in the enhanced
    /// configuration.
    #[inline]
    pub fn index(&self, pc: Pc, history: u64, predicted_taken: bool) -> MdcIndex {
        self.index_hashed(pc.table_hash(), history, predicted_taken)
    }

    /// [`index`](Self::index) with the PC hash ([`Pc::table_hash`])
    /// precomputed — the batched hot path hashes each event's PC once
    /// and feeds every table from it. [`index`](Self::index) delegates
    /// here, so the two spellings cannot drift.
    #[inline]
    pub fn index_hashed(&self, pc_hash: u64, history: u64, predicted_taken: bool) -> MdcIndex {
        let mut h = pc_hash ^ (history & self.history_mask);
        if self.enhanced {
            // Grunwald et al.: include the predicted direction in the hash.
            h ^= (predicted_taken as u64) << 5;
        }
        MdcIndex((h & self.mask) as usize)
    }

    /// Reads the MDC at a previously computed index.
    #[inline]
    pub fn read(&self, idx: MdcIndex) -> Mdc {
        Mdc(self.counters.value(idx.0))
    }

    /// The fused fetch-time operation — [`index`](Self::index) +
    /// [`read`](Self::read) in one call, hashing once. This is the MDC
    /// lane of the batched confidence hot path; it is defined as exactly
    /// the two-step sequence, so both spellings are interchangeable.
    #[inline]
    pub fn fetch(&self, pc: Pc, history: u64, predicted_taken: bool) -> (MdcIndex, Mdc) {
        let idx = self.index(pc, history, predicted_taken);
        (idx, self.read(idx))
    }

    /// [`fetch`](Self::fetch) with the PC hash precomputed (see
    /// [`index_hashed`](Self::index_hashed)).
    #[inline]
    pub fn fetch_hashed(
        &self,
        pc_hash: u64,
        history: u64,
        predicted_taken: bool,
    ) -> (MdcIndex, Mdc) {
        let idx = self.index_hashed(pc_hash, history, predicted_taken);
        (idx, self.read(idx))
    }

    /// Applies the resolution-time update: increment on a correct
    /// prediction, reset on a mispredict.
    #[inline]
    pub fn update(&mut self, idx: MdcIndex, correct: bool) {
        if correct {
            self.counters.increment(idx.0);
        } else {
            self.counters.reset(idx.0);
        }
    }

    /// Lane fetch setup: caches, for each `(pc_hash, history)` lane, the
    /// *pair* of candidate indices — predicted-not-taken in
    /// `not_taken_idx`, predicted-taken in `taken_idx`.
    ///
    /// The predicted direction participates in the enhanced-JRS index,
    /// but the chunked hot path computes directions only inside the
    /// order-exact table pass. Precomputing both candidates keeps the
    /// index math in the vectorizable setup pass; the table pass then
    /// selects one candidate per event with a branchless pick and a
    /// single counter read ([`fetch_at`](Self::fetch_at)). In the
    /// classic (non-enhanced) configuration the two candidates are
    /// identical.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree.
    #[inline]
    pub fn index_pair_hashed_n(
        &self,
        pc_hashes: &[u64],
        histories: &[u64],
        not_taken_idx: &mut [MdcIndex],
        taken_idx: &mut [MdcIndex],
    ) {
        assert_eq!(pc_hashes.len(), histories.len());
        assert_eq!(pc_hashes.len(), not_taken_idx.len());
        assert_eq!(pc_hashes.len(), taken_idx.len());
        let flip = (self.enhanced as u64) << 5;
        for (j, (&h, &hist)) in pc_hashes.iter().zip(histories).enumerate() {
            let base = h ^ (hist & self.history_mask);
            not_taken_idx[j] = MdcIndex((base & self.mask) as usize);
            taken_idx[j] = MdcIndex(((base ^ flip) & self.mask) as usize);
        }
    }

    /// [`fetch_hashed`](Self::fetch_hashed) from candidate indices cached
    /// by [`index_pair_hashed_n`](Self::index_pair_hashed_n): picks the
    /// candidate matching `predicted_taken` (branchless) and reads it —
    /// the order-exact per-event MDC read between resolve-time updates.
    #[inline]
    pub fn fetch_at(
        &self,
        not_taken_idx: MdcIndex,
        taken_idx: MdcIndex,
        predicted_taken: bool,
    ) -> (MdcIndex, Mdc) {
        let sel = predicted_taken as usize;
        // Branchless two-way pick: both candidates are already computed.
        let idx = MdcIndex(taken_idx.0 * sel + not_taken_idx.0 * (1 - sel));
        (idx, Mdc(self.counters.value(idx.0)))
    }

    /// Prefetches the cache lines of both candidate entries for one lane
    /// (no-op off x86-64 and under Miri). The enhanced-JRS candidates
    /// differ only in bit 5 of the index, so they usually share a line.
    #[inline]
    pub fn prefetch_at(&self, not_taken_idx: MdcIndex, taken_idx: MdcIndex) {
        self.counters.prefetch(not_taken_idx.0);
        self.counters.prefetch(taken_idx.0);
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Appends the table's counter state (for session snapshots).
    pub fn save_state(&self, out: &mut Vec<u8>) {
        self.counters.save_state(out);
    }

    /// Restores state saved by [`save_state`](Self::save_state) into a
    /// table of the same configuration; `false` on any mismatch.
    pub fn load_state(&mut self, input: &mut &[u8]) -> bool {
        self.counters.load_state(input)
    }

    /// Storage footprint in bytes (for hardware-budget reporting).
    pub fn storage_bytes(&self) -> usize {
        // All counters share one width.
        self.counters.len() * self.counters.counter_bits() as usize / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdc_counts_consecutive_correct_predictions() {
        let mut t = MdcTable::new(ConfidenceConfig::tiny());
        let idx = t.index(Pc::new(0x40), 0b1010, true);
        for i in 1..=20 {
            t.update(idx, true);
            assert_eq!(t.read(idx).value(), i.min(15));
        }
        t.update(idx, false);
        assert_eq!(t.read(idx).value(), 0);
    }

    #[test]
    fn enhanced_index_depends_on_predicted_direction() {
        let t = MdcTable::new(ConfidenceConfig::tiny());
        let a = t.index(Pc::new(0x40), 0, true);
        let b = t.index(Pc::new(0x40), 0, false);
        assert_ne!(a, b, "enhanced JRS must split on predicted direction");
    }

    #[test]
    fn classic_index_ignores_predicted_direction() {
        let mut cfg = ConfidenceConfig::tiny();
        cfg.enhanced = false;
        let t = MdcTable::new(cfg);
        let a = t.index(Pc::new(0x40), 0, true);
        let b = t.index(Pc::new(0x40), 0, false);
        assert_eq!(a, b);
    }

    #[test]
    fn index_depends_on_history() {
        let t = MdcTable::new(ConfidenceConfig::tiny());
        let a = t.index(Pc::new(0x40), 0b0001, true);
        let b = t.index(Pc::new(0x40), 0b0010, true);
        assert_ne!(a, b);
    }

    #[test]
    fn paper_config_is_8kb() {
        let t = MdcTable::new(ConfidenceConfig::paper());
        assert_eq!(t.storage_bytes(), 8 * 1024);
        assert_eq!(t.entries(), 16 * 1024);
    }

    #[test]
    fn high_confidence_threshold_semantics() {
        // "with a threshold of 3, branches need to be predicted correctly
        // three consecutive times before they are considered high-confidence"
        let mut t = MdcTable::new(ConfidenceConfig::tiny());
        let idx = t.index(Pc::new(0x80), 0, false);
        assert!(!t.read(idx).is_high_confidence(3));
        t.update(idx, true);
        t.update(idx, true);
        assert!(!t.read(idx).is_high_confidence(3));
        t.update(idx, true);
        assert!(t.read(idx).is_high_confidence(3));
    }

    #[test]
    #[should_panic(expected = "0..=15")]
    fn mdc_rejects_out_of_range() {
        let _ = Mdc::new(16);
    }

    #[test]
    fn cached_index_pair_matches_fetch_hashed() {
        for cfg in [
            ConfidenceConfig::tiny(),
            ConfidenceConfig::jrs_classic(),
            ConfidenceConfig::paper(),
        ] {
            let mut t = MdcTable::new(cfg);
            // Unbalance the table so reads are distinguishable.
            for i in 0..512u64 {
                let idx = t.index_hashed(i.wrapping_mul(0x9e37_79b9), i & 0xff, i % 2 == 0);
                t.update(idx, i % 5 != 0);
            }
            let pc_hashes: Vec<u64> = (0..24u64).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
            let histories: Vec<u64> = (0..24u64).map(|i| (i * 7) & 0xff).collect();
            let n = pc_hashes.len();
            let mut nt = vec![MdcIndex::default(); n];
            let mut tk = vec![MdcIndex::default(); n];
            t.index_pair_hashed_n(&pc_hashes, &histories, &mut nt, &mut tk);
            for j in 0..n {
                for predicted in [false, true] {
                    let scalar = t.fetch_hashed(pc_hashes[j], histories[j], predicted);
                    assert_eq!(t.fetch_at(nt[j], tk[j], predicted), scalar, "lane {j}");
                }
                t.prefetch_at(nt[j], tk[j]); // must never panic
            }
        }
    }
}
