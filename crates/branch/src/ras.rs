//! Return-address stack.

use paco_types::Pc;

/// A fixed-depth return-address stack (RAS).
///
/// Calls push their fall-through PC; returns pop the predicted return
/// target. Overflow wraps (overwriting the oldest entry) and underflow
/// returns `None`, both of which manifest as return mispredictions in the
/// simulator — matching real hardware behaviour.
///
/// # Examples
///
/// ```
/// use paco_branch::ReturnAddressStack;
/// use paco_types::Pc;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(Pc::new(0x104));
/// ras.push(Pc::new(0x204));
/// assert_eq!(ras.pop(), Some(Pc::new(0x204)));
/// assert_eq!(ras.pop(), Some(Pc::new(0x104)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    stack: Vec<Pc>,
    top: usize,
    depth: usize,
    occupancy: usize,
}

impl ReturnAddressStack {
    /// Creates a RAS with `depth` entries.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "RAS depth must be positive");
        ReturnAddressStack {
            stack: vec![Pc::default(); depth],
            top: 0,
            depth,
            occupancy: 0,
        }
    }

    /// Pushes a return address (on a call).
    pub fn push(&mut self, return_addr: Pc) {
        self.stack[self.top] = return_addr;
        self.top = (self.top + 1) % self.depth;
        self.occupancy = (self.occupancy + 1).min(self.depth);
    }

    /// Pops the predicted return target (on a return).
    ///
    /// Returns `None` when the stack is empty.
    pub fn pop(&mut self) -> Option<Pc> {
        if self.occupancy == 0 {
            return None;
        }
        self.top = (self.top + self.depth - 1) % self.depth;
        self.occupancy -= 1;
        Some(self.stack[self.top])
    }

    /// Current number of valid entries.
    pub fn len(&self) -> usize {
        self.occupancy
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0
    }

    /// Captures the top-of-stack pointer and occupancy for checkpointing.
    pub fn checkpoint(&self) -> (usize, usize) {
        (self.top, self.occupancy)
    }

    /// Restores a previously captured checkpoint.
    ///
    /// Entries overwritten by wrong-path pushes stay corrupted — exactly
    /// the real-hardware artifact that produces occasional return
    /// mispredictions after deep wrong-path excursions.
    pub fn restore(&mut self, checkpoint: (usize, usize)) {
        self.top = checkpoint.0 % self.depth;
        self.occupancy = checkpoint.1.min(self.depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        for i in 1..=5u64 {
            ras.push(Pc::new(i * 0x10));
        }
        for i in (1..=5u64).rev() {
            assert_eq!(ras.pop(), Some(Pc::new(i * 0x10)));
        }
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_wraps_and_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Pc::new(0x10));
        ras.push(Pc::new(0x20));
        ras.push(Pc::new(0x30)); // overwrites 0x10
        assert_eq!(ras.pop(), Some(Pc::new(0x30)));
        assert_eq!(ras.pop(), Some(Pc::new(0x20)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn checkpoint_restore_recovers_pointer() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(Pc::new(0x10));
        let cp = ras.checkpoint();
        ras.push(Pc::new(0x20));
        ras.pop();
        ras.pop();
        ras.restore(cp);
        assert_eq!(ras.len(), 1);
        assert_eq!(ras.pop(), Some(Pc::new(0x10)));
    }

    #[test]
    fn wrong_path_corruption_persists_after_restore() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Pc::new(0x10));
        ras.push(Pc::new(0x20));
        let cp = ras.checkpoint();
        // Wrong path wraps around and overwrites the slot holding 0x10.
        ras.push(Pc::new(0xbad));
        ras.restore(cp);
        assert_eq!(ras.pop(), Some(Pc::new(0x20)));
        // The deeper entry was physically overwritten.
        assert_eq!(ras.pop(), Some(Pc::new(0xbad)));
    }
}
