//! `paco-load`: trace-replay load generator for `paco-served`.
//!
//! ```text
//! paco-load run --addr HOST:PORT (--trace FILE | --corpus FAMILY)
//!               [--corpus-seed S] [--corpus-instrs N] [--threads M]
//!               [--batch N] [--rate EVENTS_PER_SEC] [--events N]
//!               [--estimator KIND] [--profile paper|tiny] [--lag K]
//!               [--watch] [--family NAME] [--splice FAMILY]
//!               [--splice-instrs N] [--splice-seed S]
//!               [--latency-cap N] [--json] [--no-parity]
//! paco-load version
//! ```
//!
//! Replays branch events — from a recorded `.paco` trace, or synthesized
//! in memory from a named `paco-corpus` family — across M concurrent
//! sessions and reports events/s plus p50/p90/p99 batch round-trip
//! latency. Small runs summarize latency by exact sort; past
//! `--latency-cap` samples per session (default 65536) the summary
//! switches to streaming log-linear histograms with fixed memory, so
//! arbitrarily long runs cannot grow the sample buffer (`--latency-cap 0`
//! forces streaming from the first batch; the report names the method
//! used). Unless `--no-parity` is given, every session's prediction
//! digest is checked against an offline `OnlinePipeline` replay — a
//! non-zero exit means the service broke byte-parity.
//!
//! `--watch` declares each session's workload family at HELLO time
//! (default: the `--corpus` family; override with `--family`) and polls
//! the server's STATS telemetry, so the final report shows per-session
//! calibration and the drift verdict. `--splice FAMILY` switches the
//! synthesized stream to a second family mid-run — the drift-detection
//! demo: `--corpus biased_bimodal --watch --splice mispredict_storm`
//! must flag, the unspliced run must not.
//!
//! `paco-load churn` runs the seeded connect/park/resume/migrate storm
//! instead of a steady replay: every session streams part of its slice,
//! drops without BYE, resumes by id, optionally migrates between worker
//! shards live, and finishes — its end-to-end digest checked against
//! offline replay. Any per-session parity failure exits non-zero.

use std::process::ExitCode;

use paco::{AdaptiveMrtConfig, PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_corpus::{find_entry, CORPUS};
use paco_serve::{
    control_events, corpus_control_events, corpus_splice_events, run_churn, run_load, ChurnOptions,
    LoadOptions,
};
use paco_sim::{EstimatorKind, OnlineConfig};
use paco_types::fingerprint::code_fingerprint;

const USAGE: &str = "\
usage:
  paco-load run --addr HOST:PORT (--trace FILE | --corpus FAMILY)
                [--corpus-seed S] [--corpus-instrs N] [--threads M]
                [--batch N] [--rate EVENTS_PER_SEC] [--events N]
                [--estimator KIND] [--profile paper|tiny] [--lag K]
                [--watch] [--family NAME] [--splice FAMILY]
                [--splice-instrs N] [--splice-seed S]
                [--latency-cap N] [--json] [--no-parity]
  paco-load churn --addr HOST:PORT --corpus FAMILY
                [--corpus-seed S] [--corpus-instrs N] [--sessions N]
                [--threads M] [--batch N] [--session-events N]
                [--seed S] [--migrate-every K] [--estimator KIND]
                [--profile paper|tiny] [--lag K] [--json]
  paco-load version

estimators: paco count static perbranch adaptive none   (default: paco)
families:   loop_nest call_chain phased_flip markov_walk mispredict_storm
            biased_bimodal (seed defaults to the manifest's)
defaults:   --threads 1, --batch 512, --profile paper, --corpus-instrs 200000
watch:      --watch declares the --corpus family (or --family NAME) and
            polls STATS; --splice FAMILY switches the stream to a second
            family mid-run to exercise the drift detector
            (--splice-instrs defaults to --corpus-instrs)
churn:      every session connects, streams, drops without BYE, resumes
            by id, optionally migrates shards (every --migrate-every-th
            session; 0 = never), finishes and byte-checks its whole
            prediction stream against offline replay; any per-session
            parity failure exits non-zero";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("churn") => churn(&args[1..]),
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-load {} protocol {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                paco_serve::PROTOCOL_VERSION,
                code_fingerprint()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-load: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_estimator(name: &str) -> Result<EstimatorKind, String> {
    Ok(match name {
        "paco" => EstimatorKind::Paco(PacoConfig::paper()),
        "count" => EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        "static" => EstimatorKind::StaticMrt,
        "perbranch" => EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        "adaptive" => EstimatorKind::AdaptiveMrt(AdaptiveMrtConfig::paper()),
        "none" => EstimatorKind::None,
        other => {
            return Err(format!(
                "unknown estimator `{other}` (paco|count|static|perbranch|adaptive|none)"
            ))
        }
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut trace = None;
    let mut corpus = None;
    let mut corpus_seed = None;
    let mut corpus_instrs: Option<u64> = None;
    let mut estimator = "paco".to_string();
    let mut profile = "paper".to_string();
    let mut lag = None;
    let mut json = false;
    let mut watch = false;
    let mut family = None;
    let mut splice = None;
    let mut splice_instrs: Option<u64> = None;
    let mut splice_seed = None;
    let mut options = LoadOptions::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--trace" => trace = Some(value("--trace")?),
            "--corpus" => corpus = Some(value("--corpus")?),
            "--corpus-seed" => {
                corpus_seed = Some(parse_num::<u64>(&value("--corpus-seed")?, "--corpus-seed")?)
            }
            "--corpus-instrs" => {
                corpus_instrs = Some(parse_num(&value("--corpus-instrs")?, "--corpus-instrs")?)
            }
            "--threads" => options.threads = parse_num(&value("--threads")?, "--threads")?,
            "--batch" => options.batch = parse_num(&value("--batch")?, "--batch")?,
            "--events" => {
                options.events_per_thread = Some(parse_num::<u64>(&value("--events")?, "--events")?)
            }
            "--rate" => {
                let v = value("--rate")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("--rate expects a number, got `{v}`"))?;
                if rate <= 0.0 || !rate.is_finite() {
                    return Err("--rate must be positive".into());
                }
                options.target_rate = Some(rate);
            }
            "--estimator" => estimator = value("--estimator")?,
            "--profile" => profile = value("--profile")?,
            "--lag" => lag = Some(parse_num::<usize>(&value("--lag")?, "--lag")?),
            "--watch" => watch = true,
            "--family" => family = Some(value("--family")?),
            "--splice" => splice = Some(value("--splice")?),
            "--splice-instrs" => {
                splice_instrs = Some(parse_num(&value("--splice-instrs")?, "--splice-instrs")?)
            }
            "--splice-seed" => {
                splice_seed = Some(parse_num::<u64>(&value("--splice-seed")?, "--splice-seed")?)
            }
            "--latency-cap" => {
                options.exact_latency_cap = parse_num(&value("--latency-cap")?, "--latency-cap")?
            }
            "--json" => json = true,
            "--no-parity" => options.parity_check = false,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let addr = addr.ok_or("run needs --addr")?;
    if trace.is_some() && corpus.is_some() {
        return Err("--trace and --corpus are mutually exclusive".into());
    }
    if trace.is_none() && corpus.is_none() {
        return Err("run needs --trace or --corpus".into());
    }
    if corpus.is_none() && (corpus_seed.is_some() || corpus_instrs.is_some()) {
        return Err("--corpus-seed/--corpus-instrs require --corpus".into());
    }
    if corpus_instrs == Some(0) {
        return Err("--corpus-instrs must be at least 1".into());
    }
    if splice.is_some() && corpus.is_none() {
        return Err("--splice requires --corpus (it splices synthesized streams)".into());
    }
    if splice.is_none() && (splice_instrs.is_some() || splice_seed.is_some()) {
        return Err("--splice-instrs/--splice-seed require --splice".into());
    }
    if splice_instrs == Some(0) {
        return Err("--splice-instrs must be at least 1".into());
    }
    if family.is_some() && !watch {
        return Err("--family requires --watch (it pins the drift detector)".into());
    }
    if options.threads == 0 || options.batch == 0 {
        return Err("--threads and --batch must be at least 1".into());
    }
    if options.events_per_thread == Some(0) {
        return Err("--events must be at least 1".into());
    }

    let kind = parse_estimator(&estimator)?;
    let mut config = match profile.as_str() {
        "paper" => OnlineConfig::paper(kind),
        "tiny" => OnlineConfig::tiny(kind),
        other => return Err(format!("unknown profile `{other}` (paper|tiny)")),
    };
    if let Some(lag) = lag {
        config.resolve_lag = lag;
    }
    config.validate()?;
    options.config = config;

    let events = match (&trace, &corpus) {
        (Some(trace), None) => control_events(trace).map_err(|e| e.to_string())?,
        (None, Some(name)) => {
            let entry = lookup_family(name)?;
            let seed = corpus_seed.unwrap_or(entry.seed);
            let instrs = corpus_instrs.unwrap_or(200_000);
            if watch && family.is_none() {
                // A watched corpus run declares its own family by
                // default, so the server pins the right reference.
                family = Some(entry.name.to_string());
            }
            match &splice {
                Some(splice_name) => {
                    let splice_entry = lookup_family(splice_name)?;
                    let (events, _) = corpus_splice_events(
                        &entry.family,
                        seed,
                        instrs,
                        &splice_entry.family,
                        splice_seed.unwrap_or(splice_entry.seed),
                        splice_instrs.unwrap_or(instrs),
                    )
                    .map_err(|e| e.to_string())?;
                    events
                }
                None => {
                    corpus_control_events(&entry.family, seed, instrs).map_err(|e| e.to_string())?
                }
            }
        }
        _ => unreachable!("exactly one source is enforced above"),
    };
    options.watch = watch;
    options.family = family;
    let report = run_load(addr.as_str(), &events, &options).map_err(|e| e.to_string())?;

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.parity_ok == Some(false) {
        eprintln!(
            "paco-load: PARITY FAILURE: online predictions diverged from the offline pipeline"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn churn(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut corpus = None;
    let mut corpus_seed = None;
    let mut corpus_instrs: Option<u64> = None;
    let mut estimator = "paco".to_string();
    let mut profile = "paper".to_string();
    let mut lag = None;
    let mut json = false;
    let mut options = ChurnOptions::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--corpus" => corpus = Some(value("--corpus")?),
            "--corpus-seed" => {
                corpus_seed = Some(parse_num::<u64>(&value("--corpus-seed")?, "--corpus-seed")?)
            }
            "--corpus-instrs" => {
                corpus_instrs = Some(parse_num(&value("--corpus-instrs")?, "--corpus-instrs")?)
            }
            "--sessions" => options.sessions = parse_num(&value("--sessions")?, "--sessions")?,
            "--threads" => options.threads = parse_num(&value("--threads")?, "--threads")?,
            "--batch" => options.batch = parse_num(&value("--batch")?, "--batch")?,
            "--session-events" => {
                options.events_per_session =
                    parse_num(&value("--session-events")?, "--session-events")?
            }
            "--seed" => options.seed = parse_num(&value("--seed")?, "--seed")?,
            "--migrate-every" => {
                options.migrate_every = parse_num(&value("--migrate-every")?, "--migrate-every")?
            }
            "--estimator" => estimator = value("--estimator")?,
            "--profile" => profile = value("--profile")?,
            "--lag" => lag = Some(parse_num::<usize>(&value("--lag")?, "--lag")?),
            "--json" => json = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let addr = addr.ok_or("churn needs --addr")?;
    let corpus = corpus.ok_or("churn needs --corpus (it synthesizes the event pool)")?;
    if options.sessions == 0 || options.threads == 0 || options.batch == 0 {
        return Err("--sessions, --threads and --batch must be at least 1".into());
    }
    if options.events_per_session == 0 {
        return Err("--session-events must be at least 1".into());
    }
    if corpus_instrs == Some(0) {
        return Err("--corpus-instrs must be at least 1".into());
    }

    let kind = parse_estimator(&estimator)?;
    let mut config = match profile.as_str() {
        "paper" => OnlineConfig::paper(kind),
        "tiny" => OnlineConfig::tiny(kind),
        other => return Err(format!("unknown profile `{other}` (paper|tiny)")),
    };
    if let Some(lag) = lag {
        config.resolve_lag = lag;
    }
    config.validate()?;
    options.config = config;

    let entry = lookup_family(&corpus)?;
    let pool = corpus_control_events(
        &entry.family,
        corpus_seed.unwrap_or(entry.seed),
        corpus_instrs.unwrap_or(200_000),
    )
    .map_err(|e| e.to_string())?;

    let report = run_churn(addr.as_str(), &pool, &options).map_err(|e| e.to_string())?;
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if !report.parity_ok() {
        eprintln!(
            "paco-load: PARITY FAILURE: {} churned session(s) diverged from the offline pipeline",
            report.parity_failures.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects an integer, got `{v}`"))
}

fn lookup_family(name: &str) -> Result<paco_corpus::CorpusEntry, String> {
    find_entry(name).ok_or_else(|| {
        let known: Vec<&str> = CORPUS.iter().map(|e| e.name).collect();
        format!(
            "unknown corpus family `{name}` (known: {})",
            known.join(" ")
        )
    })
}
