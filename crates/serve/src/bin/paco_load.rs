//! `paco-load`: trace-replay load generator for `paco-served`.
//!
//! ```text
//! paco-load run --addr HOST:PORT --trace FILE [--threads M] [--batch N]
//!               [--rate EVENTS_PER_SEC] [--events N] [--estimator KIND]
//!               [--profile paper|tiny] [--lag K] [--json] [--no-parity]
//! paco-load version
//! ```
//!
//! Replays the control-flow events of a recorded `.paco` trace across M
//! concurrent sessions and reports events/s plus p50/p90/p99 batch
//! round-trip latency. Unless `--no-parity` is given, every session's
//! prediction digest is checked against an offline `OnlinePipeline`
//! replay — a non-zero exit means the service broke byte-parity.

use std::process::ExitCode;

use paco::{PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_serve::{control_events, run_load, LoadOptions};
use paco_sim::{EstimatorKind, OnlineConfig};
use paco_types::fingerprint::code_fingerprint;

const USAGE: &str = "\
usage:
  paco-load run --addr HOST:PORT --trace FILE [--threads M] [--batch N]
                [--rate EVENTS_PER_SEC] [--events N] [--estimator KIND]
                [--profile paper|tiny] [--lag K] [--json] [--no-parity]
  paco-load version

estimators: paco count static perbranch none   (default: paco)
defaults:   --threads 1, --batch 512, --profile paper";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-load {} protocol {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                paco_serve::PROTOCOL_VERSION,
                code_fingerprint()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-load: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_estimator(name: &str) -> Result<EstimatorKind, String> {
    Ok(match name {
        "paco" => EstimatorKind::Paco(PacoConfig::paper()),
        "count" => EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        "static" => EstimatorKind::StaticMrt,
        "perbranch" => EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        "none" => EstimatorKind::None,
        other => {
            return Err(format!(
                "unknown estimator `{other}` (paco|count|static|perbranch|none)"
            ))
        }
    })
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = None;
    let mut trace = None;
    let mut estimator = "paco".to_string();
    let mut profile = "paper".to_string();
    let mut lag = None;
    let mut json = false;
    let mut options = LoadOptions::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--trace" => trace = Some(value("--trace")?),
            "--threads" => options.threads = parse_num(&value("--threads")?, "--threads")?,
            "--batch" => options.batch = parse_num(&value("--batch")?, "--batch")?,
            "--events" => {
                options.events_per_thread = Some(parse_num::<u64>(&value("--events")?, "--events")?)
            }
            "--rate" => {
                let v = value("--rate")?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| format!("--rate expects a number, got `{v}`"))?;
                if rate <= 0.0 || !rate.is_finite() {
                    return Err("--rate must be positive".into());
                }
                options.target_rate = Some(rate);
            }
            "--estimator" => estimator = value("--estimator")?,
            "--profile" => profile = value("--profile")?,
            "--lag" => lag = Some(parse_num::<usize>(&value("--lag")?, "--lag")?),
            "--json" => json = true,
            "--no-parity" => options.parity_check = false,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let addr = addr.ok_or("run needs --addr")?;
    let trace = trace.ok_or("run needs --trace")?;
    if options.threads == 0 || options.batch == 0 {
        return Err("--threads and --batch must be at least 1".into());
    }
    if options.events_per_thread == Some(0) {
        return Err("--events must be at least 1".into());
    }

    let kind = parse_estimator(&estimator)?;
    let mut config = match profile.as_str() {
        "paper" => OnlineConfig::paper(kind),
        "tiny" => OnlineConfig::tiny(kind),
        other => return Err(format!("unknown profile `{other}` (paper|tiny)")),
    };
    if let Some(lag) = lag {
        config.resolve_lag = lag;
    }
    config.validate()?;
    options.config = config;

    let events = control_events(&trace).map_err(|e| e.to_string())?;
    let report = run_load(addr.as_str(), &events, &options).map_err(|e| e.to_string())?;

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.parity_ok == Some(false) {
        eprintln!(
            "paco-load: PARITY FAILURE: online predictions diverged from the offline pipeline"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("{flag} expects an integer, got `{v}`"))
}
