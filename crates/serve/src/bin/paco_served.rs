//! `paco-served`: the streaming path-confidence prediction server.
//!
//! ```text
//! paco-served serve [--addr 127.0.0.1:7421] [--shards N] [--fleet-log SECS]
//!                   [--metrics-addr 127.0.0.1:9421]
//! paco-served version
//! ```
//!
//! Sessions are negotiated per connection (the client brings its own
//! `OnlineConfig`); see `docs/PROTOCOL.md`. `version` prints the
//! executable fingerprint exchanged in the handshake, so client/server
//! build mismatches are debuggable.
//!
//! Observability (`docs/OBSERVABILITY.md` has the full catalog):
//!
//! * `--metrics-addr ADDR` binds a sidecar HTTP listener serving the
//!   Prometheus text exposition on `GET /metrics` and a readable flight
//!   recorder dump on `GET /flight`. The sidecar never touches the
//!   protocol port or the prediction hot path.
//! * `--fleet-log SECS` prints one fleet-telemetry line (sessions,
//!   events/s, drift-flagged count) to stdout every SECS seconds. The
//!   line is a thin consumer of the same metric registry the scrape
//!   endpoint renders — one source of truth, two read paths.
//! * On panic, the flight recorder dumps its ring to stderr before the
//!   process dies, so the last control-plane events around a crash are
//!   never lost.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use paco_obs::{install_panic_hook, MetricsServer};
use paco_serve::RunningServer;
use paco_types::fingerprint::code_fingerprint;

const USAGE: &str = "\
usage:
  paco-served serve [--addr 127.0.0.1:7421] [--shards N] [--fleet-log SECS]
                    [--metrics-addr ADDR]
  paco-served version

defaults: --addr 127.0.0.1:7421, --shards 8, fleet logging off,
          metrics endpoint off";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-served {} protocol {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                paco_serve::PROTOCOL_VERSION,
                code_fingerprint()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-served: {msg}");
            ExitCode::from(2)
        }
    }
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut shards = 8usize;
    let mut fleet_log: Option<u64> = None;
    let mut metrics_addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                shards = v
                    .parse()
                    .map_err(|_| format!("--shards expects an integer, got `{v}`"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--fleet-log" => {
                let v = it.next().ok_or("--fleet-log needs a value")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("--fleet-log expects seconds, got `{v}`"))?;
                if secs == 0 {
                    return Err("--fleet-log must be at least 1 second".into());
                }
                fleet_log = Some(secs);
            }
            "--metrics-addr" => {
                metrics_addr = Some(it.next().ok_or("--metrics-addr needs a value")?.clone())
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let server = RunningServer::bind(addr.as_str(), shards)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    install_panic_hook(Arc::clone(server.metrics().recorder()));
    println!(
        "paco-served: listening on {} ({} worker shards, fingerprint {:016x})",
        server.addr(),
        shards,
        code_fingerprint()
    );
    // Kept alive for the life of the process; dropping would stop the
    // scrape listener.
    let _metrics_server = match metrics_addr {
        Some(maddr) => {
            let endpoint = MetricsServer::bind(
                maddr.as_str(),
                Arc::clone(server.metrics().registry()),
                Arc::clone(server.metrics().recorder()),
            )
            .map_err(|e| format!("cannot bind metrics endpoint {maddr}: {e}"))?;
            println!(
                "paco-served: metrics on http://{}/metrics (flight recorder on /flight)",
                endpoint.local_addr()
            );
            Some(endpoint)
        }
        None => None,
    };
    if let Some(secs) = fleet_log {
        spawn_fleet_logger(&server, Duration::from_secs(secs));
    }
    // Foreground until killed; N pinned worker shards multiplex the
    // connections, each on its own event loop.
    server.join();
    Ok(ExitCode::SUCCESS)
}

/// Spawns a detached thread printing one fleet-telemetry line every
/// `period`. The server outlives the logger (the process runs until
/// killed), so the thread holds only the cheap snapshot handles. The
/// numbers come straight out of the metric registry's counters (the
/// aggregator holds registry handles) — the log line and a `/metrics`
/// scrape can never disagree.
fn spawn_fleet_logger(server: &RunningServer, period: Duration) {
    let snapshot = server.fleet_handle();
    std::thread::spawn(move || loop {
        std::thread::sleep(period);
        let fleet = snapshot();
        println!(
            "fleet: active {} parked {} seen {} flagged {} events {} ({:.0} ev/s)",
            fleet.sessions_active,
            fleet.sessions_parked,
            fleet.sessions_seen,
            fleet.flagged_sessions,
            fleet.events,
            f64::from_bits(fleet.events_per_sec_bits),
        );
    });
}
