//! `paco-served`: the streaming path-confidence prediction server.
//!
//! ```text
//! paco-served serve [--addr 127.0.0.1:7421] [--shards N]
//! paco-served version
//! ```
//!
//! Sessions are negotiated per connection (the client brings its own
//! `OnlineConfig`); see `docs/PROTOCOL.md`. `version` prints the
//! executable fingerprint exchanged in the handshake, so client/server
//! build mismatches are debuggable.

use std::process::ExitCode;

use paco_serve::RunningServer;
use paco_types::fingerprint::code_fingerprint;

const USAGE: &str = "\
usage:
  paco-served serve [--addr 127.0.0.1:7421] [--shards N]
  paco-served version

defaults: --addr 127.0.0.1:7421, --shards 8";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("version") | Some("--version") | Some("-V") => {
            println!(
                "paco-served {} protocol {} fingerprint {:016x}",
                env!("CARGO_PKG_VERSION"),
                paco_serve::PROTOCOL_VERSION,
                code_fingerprint()
            );
            Ok(ExitCode::SUCCESS)
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("paco-served: {msg}");
            ExitCode::from(2)
        }
    }
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut addr = "127.0.0.1:7421".to_string();
    let mut shards = 8usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs a value")?.clone(),
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                shards = v
                    .parse()
                    .map_err(|_| format!("--shards expects an integer, got `{v}`"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    let server = RunningServer::bind(addr.as_str(), shards)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "paco-served: listening on {} ({} session shards, fingerprint {:016x})",
        server.addr(),
        shards,
        code_fingerprint()
    );
    // Foreground until killed; every connection gets its own thread.
    server.join();
    Ok(ExitCode::SUCCESS)
}
