//! Sessions and the sharded session table.
//!
//! A *session* is one client's estimator pipeline: its own tournament
//! predictor, MDC table and confidence estimator, fed only by that
//! client's event stream. While a connection is live its session is
//! *claimed* — owned exclusively by the handler thread, shared with
//! nobody, so the hot path takes no locks. When a connection drops
//! without a clean BYE the session is *parked* back into the table, from
//! which a reconnecting client can reclaim it by id and resume
//! bit-identically.
//!
//! The table is sharded by session id so N clients connecting,
//! detaching and resuming concurrently contend only on their own shard's
//! mutex, never on one global lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use paco_sim::OnlinePipeline;

use crate::watch::WatchState;

/// One client's pipeline plus its identity.
#[derive(Debug)]
pub struct Session {
    /// The server-assigned session id.
    pub id: u64,
    /// The session's confidence pipeline.
    pub pipeline: OnlinePipeline,
    /// The session's watch telemetry (calibration, drift detection).
    /// Parked and reclaimed with the session, so telemetry survives
    /// reconnects exactly like pipeline state.
    pub watch: WatchState,
}

/// A parked session plus its age stamp (for bounded-occupancy
/// eviction).
#[derive(Debug)]
struct Parked {
    session: Session,
    stamp: u64,
}

/// A sharded store of parked (disconnected, resumable) sessions.
///
/// Occupancy is bounded: each shard holds at most
/// [`MAX_PARKED_PER_SHARD`](Self::MAX_PARKED_PER_SHARD) sessions, and
/// parking into a full shard evicts its oldest-parked session. A client
/// whose session was evicted sees a typed `UNKNOWN_SESSION` refusal on
/// resume (and can fall back to a fresh session or a carried snapshot
/// blob) — without the bound, any client that connects and drops
/// repeatedly would grow server memory without limit.
#[derive(Debug)]
pub struct SessionTable {
    shards: Vec<Mutex<HashMap<u64, Parked>>>,
    next_id: AtomicU64,
    clock: AtomicU64,
}

impl SessionTable {
    /// Parked sessions a shard retains before evicting the oldest.
    /// Sized so the default 8-shard table holds the `serve_scale`
    /// churn storm's ≥10k parked sessions without evictions.
    pub const MAX_PARKED_PER_SHARD: usize = 2048;

    /// Creates a table with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        SessionTable {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            next_id: AtomicU64::new(1),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Parked>> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Allocates a fresh session id (ids are never reused within a
    /// server's lifetime).
    pub fn allocate_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Parks a detached session for later reclaim, evicting the shard's
    /// oldest-parked session if the shard is full.
    pub fn park(&self, session: Session) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self
            .shard(session.id)
            .lock()
            .expect("session shard poisoned");
        if shard.len() >= Self::MAX_PARKED_PER_SHARD {
            if let Some(&oldest) = shard.iter().min_by_key(|(_, p)| p.stamp).map(|(id, _)| id) {
                shard.remove(&oldest);
            }
        }
        shard.insert(session.id, Parked { session, stamp });
    }

    /// Claims a parked session for exclusive use; `None` if the id is
    /// unknown, evicted, or currently claimed by another connection.
    pub fn claim(&self, id: u64) -> Option<Session> {
        self.shard(id)
            .lock()
            .expect("session shard poisoned")
            .remove(&id)
            .map(|p| p.session)
    }

    /// Number of parked sessions.
    pub fn parked(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("session shard poisoned").len())
            .sum()
    }

    /// Number of shards (for reporting).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco_sim::{EstimatorKind, OnlineConfig};

    fn session(table: &SessionTable) -> Session {
        Session {
            id: table.allocate_id(),
            pipeline: OnlinePipeline::new(&OnlineConfig::tiny(EstimatorKind::None)),
            watch: WatchState::default(),
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let t = SessionTable::new(4);
        let a = t.allocate_id();
        let b = t.allocate_id();
        assert!(b > a);
    }

    #[test]
    fn park_claim_cycle() {
        let t = SessionTable::new(4);
        let s = session(&t);
        let id = s.id;
        t.park(s);
        assert_eq!(t.parked(), 1);
        let claimed = t.claim(id).expect("claim parked session");
        assert_eq!(claimed.id, id);
        assert_eq!(t.parked(), 0);
        // A second claim (another connection racing for the session)
        // finds nothing.
        assert!(t.claim(id).is_none());
    }

    #[test]
    fn full_shard_evicts_oldest_parked_session() {
        let t = SessionTable::new(1);
        let mut ids = Vec::new();
        for _ in 0..SessionTable::MAX_PARKED_PER_SHARD + 1 {
            let s = session(&t);
            ids.push(s.id);
            t.park(s);
        }
        assert_eq!(t.parked(), SessionTable::MAX_PARKED_PER_SHARD);
        // The first-parked session was evicted; the newest survives.
        assert!(t.claim(ids[0]).is_none(), "oldest must be evicted");
        assert!(t.claim(*ids.last().unwrap()).is_some());
    }

    #[test]
    fn sessions_spread_across_shards() {
        let t = SessionTable::new(4);
        for _ in 0..16 {
            let s = session(&t);
            t.park(s);
        }
        assert_eq!(t.parked(), 16);
        let occupied = t
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().is_empty())
            .count();
        assert!(occupied > 1, "ids must not all hash to one shard");
    }
}
