//! The server's metric plane: every family `paco-served` exposes, built
//! on `paco-obs` and registered once at server construction.
//!
//! [`ServeMetrics`] is purely observational — the serving data path
//! reads nothing back from it, and the digest-parity suite holds
//! prediction bytes identical with the plane attached. Recording
//! follows the `paco-obs` hot-path contract: counter bumps and
//! histogram records are relaxed atomics, no locks, no allocation.
//!
//! The authoritative catalog of these families (names, kinds, labels,
//! meanings) lives in `docs/OBSERVABILITY.md`; the doc-drift test pins
//! that table to [`ServeMetrics::registry`]'s
//! [`families`](paco_obs::Registry::families) so the two cannot diverge
//! silently.

use std::sync::Arc;

use paco_obs::{Counter, FlightRecorder, Gauge, Histogram, Registry};

use crate::proto::FrameKind;

/// How a session came to exist (the `mode` label of
/// `paco_sessions_established_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// Brand-new session.
    Fresh = 0,
    /// Parked session reclaimed by id.
    Resumed = 1,
    /// Rebuilt from a client-held snapshot blob.
    Restored = 2,
}

/// Fleet-side registry handles shared between [`ServeMetrics`] and the
/// [`FleetAggregator`](crate::watch::FleetAggregator): the scalar
/// counters that used to live inside the aggregator's mutex now live
/// here, so the fleet log and a `/metrics` scrape read the very same
/// cells.
#[derive(Debug, Clone)]
pub struct FleetCounters {
    /// Live (established, not yet released) sessions.
    pub active: Arc<Gauge>,
    /// Established sessions by [`SessionMode`] (`sessions_seen` is
    /// their sum).
    pub established: [Arc<Counter>; 3],
    /// Control events folded in fleet-wide.
    pub events: Arc<Counter>,
    /// Mispredicted events folded in fleet-wide.
    pub mispredicts: Arc<Counter>,
    /// Completed watch windows fleet-wide.
    pub windows: Arc<Counter>,
    /// Sessions whose drift flag latched.
    pub drift_latches: Arc<Counter>,
    /// Smoothed fleet event rate (re-measured by snapshots).
    pub events_per_sec: Arc<Gauge>,
}

impl FleetCounters {
    /// Unregistered handles — for [`FleetAggregator`] instances built
    /// outside a server (unit tests, ad-hoc tooling).
    ///
    /// [`FleetAggregator`]: crate::watch::FleetAggregator
    pub fn detached() -> Self {
        FleetCounters {
            active: Arc::new(Gauge::new()),
            established: [
                Arc::new(Counter::new()),
                Arc::new(Counter::new()),
                Arc::new(Counter::new()),
            ],
            events: Arc::new(Counter::new()),
            mispredicts: Arc::new(Counter::new()),
            windows: Arc::new(Counter::new()),
            drift_latches: Arc::new(Counter::new()),
            events_per_sec: Arc::new(Gauge::new()),
        }
    }
}

/// All metric families and the flight recorder for one server instance.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Arc<Registry>,
    recorder: Arc<FlightRecorder>,
    /// TCP connections accepted.
    pub connections: Arc<Counter>,
    frames: [Arc<Counter>; 7],
    /// ERROR frames sent for protocol violations.
    pub protocol_errors: Arc<Counter>,
    /// Server-side handle time of one EVENTS batch (decode → predict →
    /// encode → write), nanoseconds.
    pub batch_handle_ns: Arc<Histogram>,
    /// Events per EVENTS batch.
    pub batch_events: Arc<Histogram>,
    /// Sessions parked (cumulative).
    pub session_parks: Arc<Counter>,
    /// Sessions currently parked in the table.
    pub sessions_parked: Arc<Gauge>,
    /// Completed session migrations by trigger (`operator`, `policy`).
    migrations: [Arc<Counter>; 2],
    /// Live connections per worker shard (the load signal the
    /// auto-migration policy reads).
    pub shard_connections: Vec<Arc<Gauge>>,
    /// The fleet-side handles (also held by the aggregator).
    pub fleet: FleetCounters,
}

impl ServeMetrics {
    /// Worker shards [`ServeMetrics::new`] registers gauges for (the
    /// server's default shard count).
    pub const DEFAULT_SHARDS: usize = 8;

    /// Builds the plane with the default worker-shard count.
    pub fn new() -> Self {
        ServeMetrics::with_shards(Self::DEFAULT_SHARDS)
    }

    /// Builds the plane: a fresh registry with every family registered
    /// (including one `paco_shard_connections` cell per worker shard),
    /// and a flight recorder of default capacity.
    pub fn with_shards(shards: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let frame = |op: &str| {
            registry.counter(
                "paco_frames_total",
                "Client frames handled, by opcode.",
                vec![("opcode", op.to_string())],
            )
        };
        let mode = |m: &str| {
            registry.counter(
                "paco_sessions_established_total",
                "Sessions established, by HELLO resume mode.",
                vec![("mode", m.to_string())],
            )
        };
        let fleet = FleetCounters {
            active: registry.gauge(
                "paco_sessions_active",
                "Sessions currently attached to a live connection.",
                vec![],
            ),
            established: [mode("fresh"), mode("resumed"), mode("restored")],
            events: registry.counter(
                "paco_fleet_events_total",
                "Control events observed fleet-wide (folded from sessions).",
                vec![],
            ),
            mispredicts: registry.counter(
                "paco_fleet_mispredicts_total",
                "Mispredicted control events fleet-wide (folded from sessions).",
                vec![],
            ),
            windows: registry.counter(
                "paco_watch_windows_total",
                "Completed watch windows fleet-wide.",
                vec![],
            ),
            drift_latches: registry.counter(
                "paco_drift_latches_total",
                "Sessions whose drift detector latched (counted once each).",
                vec![],
            ),
            events_per_sec: registry.gauge(
                "paco_fleet_events_per_sec",
                "Smoothed fleet event rate (re-measured at snapshot cadence).",
                vec![],
            ),
        };
        ServeMetrics {
            connections: registry.counter(
                "paco_connections_total",
                "TCP connections accepted.",
                vec![],
            ),
            frames: [
                frame("HELLO"),
                frame("EVENTS"),
                frame("STATS_REQ"),
                frame("SNAPSHOT_REQ"),
                frame("BYE"),
                frame("OTHER"),
                frame("MIGRATE"),
            ],
            protocol_errors: registry.counter(
                "paco_protocol_errors_total",
                "ERROR frames sent for malformed or unexpected client input.",
                vec![],
            ),
            batch_handle_ns: registry.histogram(
                "paco_batch_handle_ns",
                "Server-side handle time per EVENTS batch (decode, predict, encode, write), ns.",
                vec![],
            ),
            batch_events: registry.histogram(
                "paco_batch_events",
                "Events per EVENTS batch.",
                vec![],
            ),
            session_parks: registry.counter(
                "paco_session_parks_total",
                "Sessions parked for later resume (cumulative).",
                vec![],
            ),
            sessions_parked: registry.gauge(
                "paco_sessions_parked",
                "Sessions currently parked in the session table.",
                vec![],
            ),
            migrations: ["operator", "policy"].map(|trigger| {
                registry.counter(
                    "paco_session_migrations_total",
                    "Completed live session migrations between worker shards, by trigger.",
                    vec![("trigger", trigger.to_string())],
                )
            }),
            shard_connections: (0..shards.max(1))
                .map(|shard| {
                    registry.gauge(
                        "paco_shard_connections",
                        "Connections currently owned by each worker shard.",
                        vec![("shard", shard.to_string())],
                    )
                })
                .collect(),
            fleet,
            recorder: Arc::new(FlightRecorder::new()),
            registry,
        }
    }

    /// The registry behind the plane (what `/metrics` renders and the
    /// doc-drift test enumerates).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The flight recorder (what `/flight` renders and protocol-error /
    /// panic dumps read).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The handled-frames counter for `kind`.
    pub fn frame(&self, kind: FrameKind) -> &Counter {
        let i = match kind {
            FrameKind::Hello => 0,
            FrameKind::Events => 1,
            FrameKind::StatsReq => 2,
            FrameKind::SnapshotReq => 3,
            FrameKind::Bye => 4,
            FrameKind::Migrate => 6,
            _ => 5,
        };
        &self.frames[i]
    }

    /// The migration counter for `trigger` (`true` = operator MIGRATE
    /// frame, `false` = automatic load-threshold policy).
    pub fn migrations(&self, operator: bool) -> &Counter {
        &self.migrations[if operator { 0 } else { 1 }]
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_registers_once() {
        let metrics = ServeMetrics::new();
        let families = metrics.registry().families();
        let names: Vec<&str> = families.iter().map(|f| f.name).collect();
        for expected in [
            "paco_connections_total",
            "paco_frames_total",
            "paco_protocol_errors_total",
            "paco_batch_handle_ns",
            "paco_batch_events",
            "paco_sessions_established_total",
            "paco_session_parks_total",
            "paco_sessions_active",
            "paco_sessions_parked",
            "paco_fleet_events_total",
            "paco_fleet_mispredicts_total",
            "paco_watch_windows_total",
            "paco_drift_latches_total",
            "paco_fleet_events_per_sec",
            "paco_session_migrations_total",
            "paco_shard_connections",
        ] {
            assert!(names.contains(&expected), "missing family {expected}");
        }
        assert_eq!(names.len(), 16, "families drifted: {names:?}");
    }

    #[test]
    fn frame_counter_routes_by_opcode() {
        let metrics = ServeMetrics::new();
        metrics.frame(FrameKind::Events).add(3);
        metrics.frame(FrameKind::Bye).inc();
        metrics.frame(FrameKind::Migrate).inc();
        metrics.frame(FrameKind::Error).inc(); // routes to OTHER
        let text = metrics.registry().render();
        assert!(text.contains("paco_frames_total{opcode=\"EVENTS\"} 3\n"));
        assert!(text.contains("paco_frames_total{opcode=\"BYE\"} 1\n"));
        assert!(text.contains("paco_frames_total{opcode=\"MIGRATE\"} 1\n"));
        assert!(text.contains("paco_frames_total{opcode=\"OTHER\"} 1\n"));
    }

    #[test]
    fn shard_cells_follow_the_worker_count() {
        let metrics = ServeMetrics::with_shards(3);
        assert_eq!(metrics.shard_connections.len(), 3);
        metrics.shard_connections[2].set(5.0);
        metrics.migrations(true).inc();
        metrics.migrations(false).add(2);
        let text = metrics.registry().render();
        assert!(text.contains("paco_shard_connections{shard=\"2\"} 5\n"));
        assert!(text.contains("paco_session_migrations_total{trigger=\"operator\"} 1\n"));
        assert!(text.contains("paco_session_migrations_total{trigger=\"policy\"} 2\n"));
    }
}
