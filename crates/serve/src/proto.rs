//! The `paco-serve` wire protocol: length-prefixed, CRC-guarded binary
//! frames carrying batched branch events and their predictions.
//!
//! Layered on the workspace codec vocabulary: frames use
//! [`paco_types::wire`] varints and CRC-32 (the same primitives as the
//! trace format and the bench result cache), event batches reuse the
//! `paco-trace` record codec verbatim, and config negotiation compares
//! [`Canon`] hashes of [`OnlineConfig`]. See
//! `docs/PROTOCOL.md` for the normative description.
//!
//! ```text
//! frame := kind u8 | payload_len u32 LE | payload | crc32 u32 LE
//! ```
//!
//! The CRC covers the kind byte and the payload, so neither can be
//! corrupted undetected; payloads are capped at [`MAX_FRAME_PAYLOAD`].

use std::io::{self, Read, Write};

use paco_sim::OnlineConfig;
use paco_sim::OnlineOutcome;
use paco_sim::OutcomeBatch;
use paco_trace::{decode_record, encode_record, DeltaState, TraceRecord};
use paco_types::canon::Canon;
use paco_types::wire::{crc32_update, read_uvarint, write_uvarint};
use paco_types::{DynInstr, EventBatch};

/// Protocol version; bumped on any incompatible frame or payload change.
/// Version 2 added the STATS_REQ/STATS pair and the optional declared
/// workload family in HELLO.
pub const PROTOCOL_VERSION: u32 = 2;

/// Upper bound accepted for a frame payload.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 22;

/// Frame type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: protocol version, config, resume request.
    Hello = 0x01,
    /// Server → client: session granted.
    Welcome = 0x02,
    /// Client → server: a batch of branch events.
    Events = 0x03,
    /// Server → client: one prediction per control event in the batch.
    Predictions = 0x04,
    /// Client → server: request a state snapshot.
    SnapshotReq = 0x05,
    /// Server → client: opaque session state blob.
    Snapshot = 0x06,
    /// Client → server: clean close; the session is discarded.
    Bye = 0x07,
    /// Client → server: request watch telemetry (session + fleet).
    StatsReq = 0x08,
    /// Server → client: per-session and fleet-aggregated watch metrics.
    Stats = 0x09,
    /// Bidirectional migration control: client → server it requests
    /// moving the session to another worker shard
    /// ([`MigrateReq`]); server → client it acknowledges the completed
    /// move ([`MigrateAck`]).
    Migrate = 0x0a,
    /// Server → client: terminal error (code + message); the connection
    /// closes after this frame.
    Error = 0x7f,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::Welcome,
            0x03 => FrameKind::Events,
            0x04 => FrameKind::Predictions,
            0x05 => FrameKind::SnapshotReq,
            0x06 => FrameKind::Snapshot,
            0x07 => FrameKind::Bye,
            0x08 => FrameKind::StatsReq,
            0x09 => FrameKind::Stats,
            0x0a => FrameKind::Migrate,
            0x7f => FrameKind::Error,
            _ => return None,
        })
    }
}

/// Error codes carried by [`FrameKind::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The client's protocol version is not supported.
    ProtocolMismatch = 1,
    /// The configuration failed validation.
    ConfigInvalid = 2,
    /// The decoded configuration does not canon-hash to the client's
    /// claimed hash — the two builds disagree on the canonical encoding.
    ConfigHashMismatch = 3,
    /// Resume-by-id named a session the server does not hold.
    UnknownSession = 4,
    /// A resume state blob failed to restore.
    BadState = 5,
    /// A frame or payload could not be decoded.
    Malformed = 6,
    /// HELLO declared a workload family the server has no reference
    /// calibration profile for.
    UnknownFamily = 7,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        Some(match b {
            1 => ErrorCode::ProtocolMismatch,
            2 => ErrorCode::ConfigInvalid,
            3 => ErrorCode::ConfigHashMismatch,
            4 => ErrorCode::UnknownSession,
            5 => ErrorCode::BadState,
            6 => ErrorCode::Malformed,
            7 => ErrorCode::UnknownFamily,
            _ => return None,
        })
    }
}

/// A protocol-level failure while reading or decoding.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed.
    Io(io::Error),
    /// A frame or payload violated the protocol.
    Malformed(String),
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

fn malformed(msg: impl Into<String>) -> ProtoError {
    ProtoError::Malformed(msg.into())
}

/// A decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame type.
    pub kind: FrameKind,
    /// The raw payload (decode with the matching `decode_*` function).
    pub payload: Vec<u8>,
}

/// Serializes a frame to a byte vector (header + payload + CRC).
pub fn frame_bytes(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    out.push(kind as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32_update(crc32_update(!0u32, &[kind as u8]), payload) ^ !0u32;
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(kind, payload))?;
    w.flush()
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ProtoError> {
    let mut header = [0u8; 5];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(malformed("eof inside a frame header")),
            n => got += n,
        }
    }
    let kind = FrameKind::from_byte(header[0])
        .ok_or_else(|| malformed(format!("unknown frame kind {:#04x}", header[0])))?;
    let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(malformed(format!("frame payload {len} exceeds the cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)
        .map_err(|_| malformed("eof inside a frame payload"))?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)
        .map_err(|_| malformed("eof inside a frame checksum"))?;
    let expect = crc32_update(crc32_update(!0u32, &[header[0]]), &payload) ^ !0u32;
    if u32::from_le_bytes(crc_bytes) != expect {
        return Err(malformed("frame checksum mismatch"));
    }
    Ok(Some(Frame { kind, payload }))
}

// ------------------------------------------------------------------ //
//  HELLO                                                             //
// ------------------------------------------------------------------ //

/// How a client wants its session established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resume {
    /// A brand-new session.
    Fresh,
    /// Reclaim a session the server parked when the previous connection
    /// dropped.
    SessionId(u64),
    /// Rebuild a session from a [`FrameKind::Snapshot`] state blob the
    /// client carried across the disconnect.
    State(Vec<u8>),
}

/// The handshake message opening every connection.
#[derive(Debug, Clone, PartialEq)]
pub struct Hello {
    /// The client's protocol version.
    pub protocol_version: u32,
    /// The client executable's fingerprint (informational; surfaced for
    /// mismatch debugging).
    pub fingerprint: u64,
    /// The session's pipeline configuration.
    pub config: OnlineConfig,
    /// The client's canonical hash of `config`; the server re-canons the
    /// decoded config and refuses on disagreement, catching canonical
    /// encoding skew between builds.
    pub config_hash: u64,
    /// Session establishment mode.
    pub resume: Resume,
    /// Declared workload family for drift watching. When set, the server
    /// pins the session's rolling calibration profile against the named
    /// family's reference profile and refuses unknown names with
    /// [`ErrorCode::UnknownFamily`]. `None` disables drift scoring (the
    /// rest of the watch telemetry still runs).
    pub family: Option<String>,
}

/// Longest accepted [`Hello::family`] name, in bytes.
pub const MAX_FAMILY_NAME: usize = 64;

/// Encodes a [`Hello`] payload.
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, hello.protocol_version as u64);
    out.extend_from_slice(&hello.fingerprint.to_le_bytes());
    out.extend_from_slice(&hello.config_hash.to_le_bytes());
    encode_config(&mut out, &hello.config);
    match &hello.resume {
        Resume::Fresh => out.push(0),
        Resume::SessionId(id) => {
            out.push(1);
            write_uvarint(&mut out, *id);
        }
        Resume::State(blob) => {
            out.push(2);
            write_uvarint(&mut out, blob.len() as u64);
            out.extend_from_slice(blob);
        }
    }
    match &hello.family {
        None => out.push(0),
        Some(name) => {
            out.push(1);
            write_uvarint(&mut out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }
    out
}

/// Decodes a [`Hello`] payload.
pub fn decode_hello(mut input: &[u8]) -> Result<Hello, ProtoError> {
    let input = &mut input;
    let protocol_version = read_uvarint(input)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| malformed("hello: protocol version"))?;
    let fingerprint = take_u64_le(input).ok_or_else(|| malformed("hello: fingerprint"))?;
    let config_hash = take_u64_le(input).ok_or_else(|| malformed("hello: config hash"))?;
    let config = decode_config(input)?;
    let (&tag, rest) = input
        .split_first()
        .ok_or_else(|| malformed("hello: resume tag"))?;
    *input = rest;
    let resume = match tag {
        0 => Resume::Fresh,
        1 => Resume::SessionId(read_uvarint(input).ok_or_else(|| malformed("hello: session id"))?),
        2 => {
            let len = read_uvarint(input)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| malformed("hello: state length"))?;
            if len > MAX_FRAME_PAYLOAD || input.len() < len {
                return Err(malformed("hello: state blob truncated"));
            }
            let (blob, rest) = input.split_at(len);
            *input = rest;
            Resume::State(blob.to_vec())
        }
        other => return Err(malformed(format!("hello: unknown resume tag {other}"))),
    };
    let (&family_tag, rest) = input
        .split_first()
        .ok_or_else(|| malformed("hello: family tag"))?;
    *input = rest;
    let family = match family_tag {
        0 => None,
        1 => {
            let len = read_uvarint(input)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| malformed("hello: family length"))?;
            if len > MAX_FAMILY_NAME {
                return Err(malformed("hello: family name too long"));
            }
            if input.len() < len {
                return Err(malformed("hello: family name truncated"));
            }
            let (name, rest) = input.split_at(len);
            *input = rest;
            let name = std::str::from_utf8(name)
                .map_err(|_| malformed("hello: family name is not UTF-8"))?;
            Some(name.to_owned())
        }
        other => return Err(malformed(format!("hello: unknown family tag {other}"))),
    };
    if !input.is_empty() {
        return Err(malformed("hello: trailing bytes"));
    }
    Ok(Hello {
        protocol_version,
        fingerprint,
        config,
        config_hash,
        resume,
        family,
    })
}

fn take_u64_le(input: &mut &[u8]) -> Option<u64> {
    if input.len() < 8 {
        return None;
    }
    let (bytes, rest) = input.split_at(8);
    *input = rest;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

// ------------------------------------------------------------------ //
//  OnlineConfig wire codec                                           //
// ------------------------------------------------------------------ //
//
// Canon is serialize-only (it exists to hash); the protocol needs a
// decoder too, so the config travels in this explicit field encoding
// and the Canon hash rides along as the cross-build agreement check.

fn encode_config(out: &mut Vec<u8>, c: &OnlineConfig) {
    write_uvarint(out, c.tournament.gshare_entries as u64);
    write_uvarint(out, c.tournament.bimodal_entries as u64);
    write_uvarint(out, c.tournament.selector_entries as u64);
    write_uvarint(out, c.tournament.history_bits as u64);
    write_uvarint(out, c.confidence.entries as u64);
    write_uvarint(out, c.confidence.counter_bits as u64);
    write_uvarint(out, c.confidence.history_bits as u64);
    out.push(c.confidence.enhanced as u8);
    encode_estimator(out, &c.estimator);
    write_uvarint(out, c.resolve_lag as u64);
    write_uvarint(out, c.ticks_per_event);
}

fn encode_estimator(out: &mut Vec<u8>, e: &paco_sim::EstimatorKind) {
    use paco_sim::EstimatorKind as E;
    match e {
        E::None => out.push(0),
        E::Paco(cfg) => {
            out.push(1);
            write_uvarint(out, cfg.refresh_period);
            out.push(log_mode_byte(cfg.log_mode));
        }
        E::ThresholdCount(cfg) => {
            out.push(2);
            out.push(cfg.threshold);
        }
        E::StaticMrt => out.push(3),
        E::PerBranchMrt(cfg) => {
            out.push(4);
            write_uvarint(out, cfg.entries as u64);
            out.push(log_mode_byte(cfg.log_mode));
        }
        E::AdaptiveMrt(cfg) => {
            out.push(5);
            write_uvarint(out, cfg.refresh_period);
            out.push(log_mode_byte(cfg.log_mode));
            write_uvarint(out, cfg.detect_window as u64);
            write_uvarint(out, cfg.threshold_permille as u64);
            write_uvarint(out, cfg.limit_permille as u64);
            write_uvarint(out, cfg.warmup_windows as u64);
            out.push(cfg.blend as u8);
        }
    }
}

fn log_mode_byte(mode: paco::LogMode) -> u8 {
    match mode {
        paco::LogMode::Mitchell => 0,
        paco::LogMode::Exact => 1,
    }
}

fn log_mode_from(b: u8) -> Result<paco::LogMode, ProtoError> {
    match b {
        0 => Ok(paco::LogMode::Mitchell),
        1 => Ok(paco::LogMode::Exact),
        other => Err(malformed(format!("unknown log mode {other}"))),
    }
}

fn take_usize(input: &mut &[u8], what: &str) -> Result<usize, ProtoError> {
    read_uvarint(input)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| malformed(format!("config: {what}")))
}

fn decode_config(input: &mut &[u8]) -> Result<OnlineConfig, ProtoError> {
    let gshare_entries = take_usize(input, "gshare entries")?;
    let bimodal_entries = take_usize(input, "bimodal entries")?;
    let selector_entries = take_usize(input, "selector entries")?;
    let t_history = take_usize(input, "tournament history bits")?;
    let conf_entries = take_usize(input, "confidence entries")?;
    let counter_bits = take_usize(input, "counter bits")?;
    let c_history = take_usize(input, "confidence history bits")?;
    let (&enhanced, rest) = input
        .split_first()
        .ok_or_else(|| malformed("config: enhanced flag"))?;
    *input = rest;
    if enhanced > 1 {
        return Err(malformed("config: enhanced flag out of range"));
    }
    let estimator = decode_estimator(input)?;
    let resolve_lag = take_usize(input, "resolve lag")?;
    let ticks_per_event = read_uvarint(input).ok_or_else(|| malformed("config: ticks"))?;
    let u32_of = |v: usize, what: &str| {
        u32::try_from(v).map_err(|_| malformed(format!("config: {what} out of range")))
    };
    Ok(OnlineConfig {
        tournament: paco_branch::TournamentConfig {
            gshare_entries,
            bimodal_entries,
            selector_entries,
            history_bits: u32_of(t_history, "tournament history bits")?,
        },
        confidence: paco_branch::ConfidenceConfig {
            entries: conf_entries,
            counter_bits: u32_of(counter_bits, "counter bits")?,
            history_bits: u32_of(c_history, "confidence history bits")?,
            enhanced: enhanced == 1,
        },
        estimator,
        resolve_lag,
        ticks_per_event,
    })
}

fn decode_estimator(input: &mut &[u8]) -> Result<paco_sim::EstimatorKind, ProtoError> {
    use paco_sim::EstimatorKind as E;
    let (&tag, rest) = input
        .split_first()
        .ok_or_else(|| malformed("config: estimator tag"))?;
    *input = rest;
    Ok(match tag {
        0 => E::None,
        1 => {
            let refresh_period =
                read_uvarint(input).ok_or_else(|| malformed("config: refresh period"))?;
            let (&mode, rest) = input
                .split_first()
                .ok_or_else(|| malformed("config: log mode"))?;
            *input = rest;
            E::Paco(paco::PacoConfig {
                refresh_period,
                log_mode: log_mode_from(mode)?,
            })
        }
        2 => {
            let (&threshold, rest) = input
                .split_first()
                .ok_or_else(|| malformed("config: threshold"))?;
            *input = rest;
            E::ThresholdCount(paco::ThresholdCountConfig { threshold })
        }
        3 => E::StaticMrt,
        4 => {
            let entries = take_usize(input, "per-branch entries")?;
            let (&mode, rest) = input
                .split_first()
                .ok_or_else(|| malformed("config: log mode"))?;
            *input = rest;
            E::PerBranchMrt(paco::PerBranchMrtConfig {
                entries,
                log_mode: log_mode_from(mode)?,
            })
        }
        5 => {
            let refresh_period =
                read_uvarint(input).ok_or_else(|| malformed("config: refresh period"))?;
            let (&mode, rest) = input
                .split_first()
                .ok_or_else(|| malformed("config: log mode"))?;
            *input = rest;
            let u32_field = |input: &mut &[u8], what: &str| {
                read_uvarint(input)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| malformed(format!("config: {what}")))
            };
            let detect_window = u32_field(input, "detect window")?;
            let threshold_permille = u32_field(input, "threshold permille")?;
            let limit_permille = u32_field(input, "limit permille")?;
            let warmup_windows = u32_field(input, "warmup windows")?;
            let (&blend, rest) = input
                .split_first()
                .ok_or_else(|| malformed("config: blend flag"))?;
            *input = rest;
            if blend > 1 {
                return Err(malformed("config: blend flag out of range"));
            }
            E::AdaptiveMrt(paco::AdaptiveMrtConfig {
                refresh_period,
                log_mode: log_mode_from(mode)?,
                detect_window,
                threshold_permille,
                limit_permille,
                warmup_windows,
                blend: blend == 1,
            })
        }
        other => return Err(malformed(format!("config: unknown estimator tag {other}"))),
    })
}

// ------------------------------------------------------------------ //
//  WELCOME / SNAPSHOT                                                //
// ------------------------------------------------------------------ //

/// The server's handshake answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Welcome {
    /// The granted session id (use it for reconnect-by-id).
    pub session_id: u64,
    /// The server executable's fingerprint.
    pub fingerprint: u64,
    /// Events the session has already processed (0 for a fresh session;
    /// the resume point otherwise).
    pub events: u64,
}

/// Encodes a [`Welcome`] payload.
pub fn encode_welcome(w: &Welcome) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, w.session_id);
    out.extend_from_slice(&w.fingerprint.to_le_bytes());
    write_uvarint(&mut out, w.events);
    out
}

/// Decodes a [`Welcome`] payload.
pub fn decode_welcome(mut input: &[u8]) -> Result<Welcome, ProtoError> {
    let input = &mut input;
    let session_id = read_uvarint(input).ok_or_else(|| malformed("welcome: session id"))?;
    let fingerprint = take_u64_le(input).ok_or_else(|| malformed("welcome: fingerprint"))?;
    let events = read_uvarint(input).ok_or_else(|| malformed("welcome: events"))?;
    if !input.is_empty() {
        return Err(malformed("welcome: trailing bytes"));
    }
    Ok(Welcome {
        session_id,
        fingerprint,
        events,
    })
}

/// A session snapshot: the opaque state blob plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The session the blob was taken from.
    pub session_id: u64,
    /// Events processed at snapshot time.
    pub events: u64,
    /// The opaque pipeline state (restore via [`Resume::State`]).
    pub state: Vec<u8>,
}

/// Encodes a [`Snapshot`] payload.
pub fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, s.session_id);
    write_uvarint(&mut out, s.events);
    write_uvarint(&mut out, s.state.len() as u64);
    out.extend_from_slice(&s.state);
    out
}

/// Decodes a [`Snapshot`] payload.
pub fn decode_snapshot(mut input: &[u8]) -> Result<Snapshot, ProtoError> {
    let input = &mut input;
    let session_id = read_uvarint(input).ok_or_else(|| malformed("snapshot: session id"))?;
    let events = read_uvarint(input).ok_or_else(|| malformed("snapshot: events"))?;
    let len = read_uvarint(input)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| malformed("snapshot: state length"))?;
    if input.len() != len {
        return Err(malformed("snapshot: state length disagrees with payload"));
    }
    Ok(Snapshot {
        session_id,
        events,
        state: input.to_vec(),
    })
}

// ------------------------------------------------------------------ //
//  STATS (paco-watch telemetry)                                      //
// ------------------------------------------------------------------ //

/// Upper bound accepted for calibration-bin vectors in a STATS payload.
pub const MAX_STATS_BINS: usize = 1024;

/// Per-session watch telemetry, as carried in a [`FrameKind::Stats`]
/// frame: lifetime calibration counters plus the drift detector's
/// current verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// The session the metrics describe.
    pub session_id: u64,
    /// The declared workload family the drift detector scores against
    /// (`None` when the session did not declare one).
    pub family: Option<String>,
    /// Control events observed since the session started.
    pub events: u64,
    /// Mispredicted events since the session started.
    pub mispredicts: u64,
    /// Events that carried a probability estimate.
    pub with_prob: u64,
    /// Completed rolling windows fed to the drift detector.
    pub windows: u64,
    /// Events in the current (partial) rolling window.
    pub window_len: u64,
    /// IEEE-754 bits of the most recent completed window's divergence
    /// from the reference profile (0.0 before the first window or
    /// without a declared family). Bits, not a float: stats frames are
    /// part of the lane-determinism surface.
    pub last_divergence_bits: u64,
    /// IEEE-754 bits of the CUSUM drift accumulator.
    pub cusum_bits: u64,
    /// Whether the drift flag has latched for this session.
    pub drift_flagged: bool,
    /// The 1-based detector window at which the flag latched (0 =
    /// never).
    pub drift_window: u64,
    /// Lifetime `(instances, correct predictions)` calibration bins,
    /// low predicted probability first — feed to
    /// `paco_analysis::ReliabilityDiagram::from_bins`.
    pub bins: Vec<(u64, u64)>,
}

/// Fleet-aggregated watch telemetry: every session the server has seen,
/// pooled.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Sessions currently owned by a live connection.
    pub sessions_active: u64,
    /// Sessions parked awaiting a resume.
    pub sessions_parked: u64,
    /// Sessions ever established since the server started.
    pub sessions_seen: u64,
    /// Sessions whose drift flag has latched.
    pub flagged_sessions: u64,
    /// Control events observed across the fleet.
    pub events: u64,
    /// Mispredicted events across the fleet.
    pub mispredicts: u64,
    /// IEEE-754 bits of the server's recent fleet-wide event rate
    /// (events/second, exponentially smoothed over snapshot intervals).
    pub events_per_sec_bits: u64,
    /// Pooled calibration bins across the fleet (same layout as
    /// [`SessionStats::bins`], merged via
    /// `paco_analysis::merge_bin_pairs`).
    pub bins: Vec<(u64, u64)>,
}

/// A [`FrameKind::Stats`] payload: the requesting session's telemetry
/// plus the fleet snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Metrics of the session that sent STATS_REQ.
    pub session: SessionStats,
    /// Fleet-wide aggregate at the time of the request.
    pub fleet: FleetStats,
}

fn encode_bins(out: &mut Vec<u8>, bins: &[(u64, u64)]) {
    write_uvarint(out, bins.len() as u64);
    for &(instances, correct) in bins {
        write_uvarint(out, instances);
        write_uvarint(out, correct);
    }
}

fn decode_bins(input: &mut &[u8], what: &str) -> Result<Vec<(u64, u64)>, ProtoError> {
    let count = read_uvarint(input)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| malformed(format!("{what}: bin count")))?;
    if count > MAX_STATS_BINS {
        return Err(malformed(format!("{what}: implausible bin count")));
    }
    let mut bins = Vec::with_capacity(count);
    for _ in 0..count {
        let instances =
            read_uvarint(input).ok_or_else(|| malformed(format!("{what}: bin instances")))?;
        let correct =
            read_uvarint(input).ok_or_else(|| malformed(format!("{what}: bin correct")))?;
        bins.push((instances, correct));
    }
    Ok(bins)
}

fn encode_opt_name(out: &mut Vec<u8>, name: &Option<String>) {
    match name {
        None => out.push(0),
        Some(name) => {
            out.push(1);
            write_uvarint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }
}

fn decode_opt_name(input: &mut &[u8], what: &str) -> Result<Option<String>, ProtoError> {
    let (&tag, rest) = input
        .split_first()
        .ok_or_else(|| malformed(format!("{what}: name tag")))?;
    *input = rest;
    match tag {
        0 => Ok(None),
        1 => {
            let len = read_uvarint(input)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| malformed(format!("{what}: name length")))?;
            if len > MAX_FAMILY_NAME {
                return Err(malformed(format!("{what}: name too long")));
            }
            if input.len() < len {
                return Err(malformed(format!("{what}: name truncated")));
            }
            let (name, rest) = input.split_at(len);
            *input = rest;
            let name = std::str::from_utf8(name)
                .map_err(|_| malformed(format!("{what}: name is not UTF-8")))?;
            Ok(Some(name.to_owned()))
        }
        other => Err(malformed(format!("{what}: unknown name tag {other}"))),
    }
}

/// Appends the wire encoding of a [`SessionStats`] to `out`. Exposed
/// separately from [`encode_stats`] so the lane-determinism test can
/// compare session telemetry byte-for-byte.
pub fn encode_session_stats(out: &mut Vec<u8>, s: &SessionStats) {
    write_uvarint(out, s.session_id);
    encode_opt_name(out, &s.family);
    write_uvarint(out, s.events);
    write_uvarint(out, s.mispredicts);
    write_uvarint(out, s.with_prob);
    write_uvarint(out, s.windows);
    write_uvarint(out, s.window_len);
    out.extend_from_slice(&s.last_divergence_bits.to_le_bytes());
    out.extend_from_slice(&s.cusum_bits.to_le_bytes());
    out.push(s.drift_flagged as u8);
    write_uvarint(out, s.drift_window);
    encode_bins(out, &s.bins);
}

fn decode_session_stats(input: &mut &[u8]) -> Result<SessionStats, ProtoError> {
    let session_id = read_uvarint(input).ok_or_else(|| malformed("stats: session id"))?;
    let family = decode_opt_name(input, "stats: family")?;
    let events = read_uvarint(input).ok_or_else(|| malformed("stats: events"))?;
    let mispredicts = read_uvarint(input).ok_or_else(|| malformed("stats: mispredicts"))?;
    let with_prob = read_uvarint(input).ok_or_else(|| malformed("stats: with_prob"))?;
    let windows = read_uvarint(input).ok_or_else(|| malformed("stats: windows"))?;
    let window_len = read_uvarint(input).ok_or_else(|| malformed("stats: window length"))?;
    let last_divergence_bits = take_u64_le(input).ok_or_else(|| malformed("stats: divergence"))?;
    let cusum_bits = take_u64_le(input).ok_or_else(|| malformed("stats: cusum"))?;
    let (&flag, rest) = input
        .split_first()
        .ok_or_else(|| malformed("stats: drift flag"))?;
    *input = rest;
    if flag > 1 {
        return Err(malformed("stats: drift flag out of range"));
    }
    let drift_window = read_uvarint(input).ok_or_else(|| malformed("stats: drift window"))?;
    let bins = decode_bins(input, "stats: session")?;
    Ok(SessionStats {
        session_id,
        family,
        events,
        mispredicts,
        with_prob,
        windows,
        window_len,
        last_divergence_bits,
        cusum_bits,
        drift_flagged: flag == 1,
        drift_window,
        bins,
    })
}

fn encode_fleet_stats(out: &mut Vec<u8>, f: &FleetStats) {
    write_uvarint(out, f.sessions_active);
    write_uvarint(out, f.sessions_parked);
    write_uvarint(out, f.sessions_seen);
    write_uvarint(out, f.flagged_sessions);
    write_uvarint(out, f.events);
    write_uvarint(out, f.mispredicts);
    out.extend_from_slice(&f.events_per_sec_bits.to_le_bytes());
    encode_bins(out, &f.bins);
}

fn decode_fleet_stats(input: &mut &[u8]) -> Result<FleetStats, ProtoError> {
    let sessions_active = read_uvarint(input).ok_or_else(|| malformed("stats: active sessions"))?;
    let sessions_parked = read_uvarint(input).ok_or_else(|| malformed("stats: parked sessions"))?;
    let sessions_seen = read_uvarint(input).ok_or_else(|| malformed("stats: seen sessions"))?;
    let flagged_sessions =
        read_uvarint(input).ok_or_else(|| malformed("stats: flagged sessions"))?;
    let events = read_uvarint(input).ok_or_else(|| malformed("stats: fleet events"))?;
    let mispredicts = read_uvarint(input).ok_or_else(|| malformed("stats: fleet mispredicts"))?;
    let events_per_sec_bits = take_u64_le(input).ok_or_else(|| malformed("stats: fleet rate"))?;
    let bins = decode_bins(input, "stats: fleet")?;
    Ok(FleetStats {
        sessions_active,
        sessions_parked,
        sessions_seen,
        flagged_sessions,
        events,
        mispredicts,
        events_per_sec_bits,
        bins,
    })
}

/// Encodes a [`Stats`] payload.
pub fn encode_stats(stats: &Stats) -> Vec<u8> {
    let mut out = Vec::new();
    encode_session_stats(&mut out, &stats.session);
    encode_fleet_stats(&mut out, &stats.fleet);
    out
}

/// Decodes a [`Stats`] payload.
pub fn decode_stats(mut input: &[u8]) -> Result<Stats, ProtoError> {
    let input = &mut input;
    let session = decode_session_stats(input)?;
    let fleet = decode_fleet_stats(input)?;
    if !input.is_empty() {
        return Err(malformed("stats: trailing bytes"));
    }
    Ok(Stats { session, fleet })
}

// ------------------------------------------------------------------ //
//  EVENTS / PREDICTIONS                                              //
// ------------------------------------------------------------------ //

/// Encodes a batch of branch events (reusing the `paco-trace` record
/// codec; the delta state resets per frame so frames decode
/// independently).
pub fn encode_events(instrs: &[DynInstr]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, instrs.len() as u64);
    let mut delta = DeltaState::default();
    for instr in instrs {
        encode_record(&mut out, &mut delta, &TraceRecord::from(instr));
    }
    out
}

/// Decodes a batch of branch events.
pub fn decode_events(mut input: &[u8]) -> Result<Vec<DynInstr>, ProtoError> {
    let input = &mut input;
    let count = read_uvarint(input).ok_or_else(|| malformed("events: count"))?;
    // Every record costs at least two bytes; reject counts the payload
    // cannot possibly hold before allocating.
    if count > (input.len() as u64 / 2) + 1 {
        return Err(malformed("events: implausible count"));
    }
    let mut delta = DeltaState::default();
    let mut instrs = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let record = decode_record(input, &mut delta)
            .map_err(|detail| malformed(format!("events: {detail}")))?;
        instrs.push(DynInstr::from(record));
    }
    if !input.is_empty() {
        return Err(malformed("events: trailing bytes"));
    }
    Ok(instrs)
}

/// Decodes a batch of branch events straight into a (reused)
/// struct-of-arrays [`EventBatch`] — the server hot path. Accepts
/// exactly the payloads [`decode_events`] accepts and rejects exactly
/// what it rejects; the only difference is the destination shape (and
/// that the timing-only `deps`/`mem` record fields, which the
/// confidence pipeline never reads, are parsed but not stored).
///
/// `batch` is cleared first; its capacity is retained across frames, so
/// a steady-state connection allocates nothing per frame.
pub fn decode_events_into(mut input: &[u8], batch: &mut EventBatch) -> Result<(), ProtoError> {
    batch.clear();
    let input = &mut input;
    let count = read_uvarint(input).ok_or_else(|| malformed("events: count"))?;
    if count > (input.len() as u64 / 2) + 1 {
        return Err(malformed("events: implausible count"));
    }
    batch.reserve(count as usize);
    let mut delta = DeltaState::default();
    for _ in 0..count {
        let record = decode_record(input, &mut delta)
            .map_err(|detail| malformed(format!("events: {detail}")))?;
        batch.push_raw(record.pc, record.class, record.taken, record.target);
    }
    if !input.is_empty() {
        return Err(malformed("events: trailing bytes"));
    }
    Ok(())
}

// The wire flag bits are defined once, on `OutcomeBatch` in `paco-sim`,
// so the batched pipeline output and the wire encoding cannot drift.
const OUTCOME_PREDICTED: u8 = OutcomeBatch::FLAG_PREDICTED_TAKEN;
const OUTCOME_MISPREDICTED: u8 = OutcomeBatch::FLAG_MISPREDICTED;
const OUTCOME_HAS_PROB: u8 = OutcomeBatch::FLAG_HAS_PROB;

/// Encodes a batch of prediction outcomes. This encoding is the parity
/// surface: the integration suite requires the bytes streamed by
/// `paco-served` to equal the bytes produced by an offline
/// [`OnlinePipeline`](paco_sim::OnlinePipeline) run bit for bit.
pub fn encode_outcomes(outcomes: &[OnlineOutcome]) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, outcomes.len() as u64);
    for o in outcomes {
        let mut flags = 0u8;
        if o.predicted_taken {
            flags |= OUTCOME_PREDICTED;
        }
        if o.mispredicted {
            flags |= OUTCOME_MISPREDICTED;
        }
        if o.prob_bits.is_some() {
            flags |= OUTCOME_HAS_PROB;
        }
        out.push(flags);
        write_uvarint(&mut out, o.score);
        if let Some(bits) = o.prob_bits {
            out.extend_from_slice(&bits.to_le_bytes());
        }
    }
    out
}

/// Encodes a batch of prediction outcomes from a struct-of-arrays
/// [`OutcomeBatch`] — the server hot path. Produces bytes **identical**
/// to [`encode_outcomes`] over the same outcomes (the batch stores the
/// wire flag bytes directly, so this is a straight copy-out); appends
/// to `out` without clearing it, so a reused buffer must be cleared by
/// the caller.
pub fn encode_outcomes_into(out: &mut Vec<u8>, outcomes: &OutcomeBatch) {
    write_uvarint(out, outcomes.len() as u64);
    let flags = outcomes.flags();
    let scores = outcomes.scores();
    let probs = outcomes.prob_bits();
    for i in 0..outcomes.len() {
        out.push(flags[i]);
        write_uvarint(out, scores[i]);
        if flags[i] & OUTCOME_HAS_PROB != 0 {
            out.extend_from_slice(&probs[i].to_le_bytes());
        }
    }
}

/// Decodes a batch of prediction outcomes.
pub fn decode_outcomes(mut input: &[u8]) -> Result<Vec<OnlineOutcome>, ProtoError> {
    let input = &mut input;
    let count = read_uvarint(input).ok_or_else(|| malformed("predictions: count"))?;
    if count > (input.len() as u64 / 2) + 1 {
        return Err(malformed("predictions: implausible count"));
    }
    let mut outcomes = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let (&flags, rest) = input
            .split_first()
            .ok_or_else(|| malformed("predictions: flags"))?;
        *input = rest;
        if flags & !(OUTCOME_PREDICTED | OUTCOME_MISPREDICTED | OUTCOME_HAS_PROB) != 0 {
            return Err(malformed("predictions: unknown flag bits"));
        }
        let score = read_uvarint(input).ok_or_else(|| malformed("predictions: score"))?;
        let prob_bits = if flags & OUTCOME_HAS_PROB != 0 {
            Some(take_u64_le(input).ok_or_else(|| malformed("predictions: probability"))?)
        } else {
            None
        };
        outcomes.push(OnlineOutcome {
            score,
            prob_bits,
            predicted_taken: flags & OUTCOME_PREDICTED != 0,
            mispredicted: flags & OUTCOME_MISPREDICTED != 0,
        });
    }
    if !input.is_empty() {
        return Err(malformed("predictions: trailing bytes"));
    }
    Ok(outcomes)
}

// ------------------------------------------------------------------ //
//  MIGRATE                                                           //
// ------------------------------------------------------------------ //

/// A client → server [`FrameKind::Migrate`] payload: move the
/// connection's session to another worker shard via the park → restore
/// snapshot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateReq {
    /// The session to move. Must be the session attached to the
    /// requesting connection (migrating someone else's session is
    /// refused with [`ErrorCode::BadState`]).
    pub session_id: u64,
    /// Destination worker shard; `None` lets the server pick the
    /// least-loaded worker.
    pub target_shard: Option<u32>,
}

/// A server → client [`FrameKind::Migrate`] payload acknowledging the
/// completed move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrateAck {
    /// The migrated session.
    pub session_id: u64,
    /// Worker shard the session left.
    pub from_shard: u32,
    /// Worker shard now owning the session.
    pub to_shard: u32,
}

/// Encodes a [`MigrateReq`] payload.
pub fn encode_migrate_req(req: &MigrateReq) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, req.session_id);
    match req.target_shard {
        None => out.push(0),
        Some(shard) => {
            out.push(1);
            write_uvarint(&mut out, shard as u64);
        }
    }
    out
}

/// Decodes a [`MigrateReq`] payload.
pub fn decode_migrate_req(mut input: &[u8]) -> Result<MigrateReq, ProtoError> {
    let input = &mut input;
    let session_id = read_uvarint(input).ok_or_else(|| malformed("migrate: session id"))?;
    let (&tag, rest) = input
        .split_first()
        .ok_or_else(|| malformed("migrate: target tag"))?;
    *input = rest;
    let target_shard = match tag {
        0 => None,
        1 => Some(
            read_uvarint(input)
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| malformed("migrate: target shard"))?,
        ),
        other => return Err(malformed(format!("migrate: unknown target tag {other}"))),
    };
    if !input.is_empty() {
        return Err(malformed("migrate: trailing bytes"));
    }
    Ok(MigrateReq {
        session_id,
        target_shard,
    })
}

/// Encodes a [`MigrateAck`] payload.
pub fn encode_migrate_ack(ack: &MigrateAck) -> Vec<u8> {
    let mut out = Vec::new();
    write_uvarint(&mut out, ack.session_id);
    write_uvarint(&mut out, ack.from_shard as u64);
    write_uvarint(&mut out, ack.to_shard as u64);
    out
}

/// Decodes a [`MigrateAck`] payload.
pub fn decode_migrate_ack(mut input: &[u8]) -> Result<MigrateAck, ProtoError> {
    let input = &mut input;
    let session_id = read_uvarint(input).ok_or_else(|| malformed("migrate ack: session id"))?;
    let from_shard = read_uvarint(input)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| malformed("migrate ack: from shard"))?;
    let to_shard = read_uvarint(input)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| malformed("migrate ack: to shard"))?;
    if !input.is_empty() {
        return Err(malformed("migrate ack: trailing bytes"));
    }
    Ok(MigrateAck {
        session_id,
        from_shard,
        to_shard,
    })
}

// ------------------------------------------------------------------ //
//  Incremental frame decoding (the reactor read path)                 //
// ------------------------------------------------------------------ //

/// An incremental frame decoder for non-blocking reads: bytes arrive in
/// arbitrary chunks via [`FrameDecoder::feed`], complete frames come
/// out of [`FrameDecoder::try_frame`].
///
/// The decoder reaches **exactly** the verdicts of [`read_frame`] over
/// the same byte stream, independent of how the stream is chunked: the
/// same frames in the same order, the same `Malformed` messages for
/// unknown kinds, oversized payloads and checksum mismatches, and —
/// via [`FrameDecoder::on_eof`] — the same clean-EOF/mid-frame-EOF
/// distinction. The equivalence is property-tested in
/// `crates/serve/tests/properties.rs`.
///
/// An oversized length prefix is rejected from the 5 header bytes
/// alone, before any payload-sized allocation.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder at a frame boundary with nothing buffered.
    pub fn new() -> Self {
        FrameDecoder { buf: Vec::new() }
    }

    /// Appends raw transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the decoder sits at a frame boundary (a clean EOF here is
    /// a clean close, not a protocol error).
    pub fn at_boundary(&self) -> bool {
        self.buf.is_empty()
    }

    /// Extracts the next complete frame. `Ok(None)` means more bytes are
    /// needed; an error is terminal (the stream is unusable, matching
    /// [`read_frame`]'s verdict at the same point).
    pub fn try_frame(&mut self) -> Result<Option<Frame>, ProtoError> {
        if self.buf.len() < 5 {
            return Ok(None);
        }
        let kind = FrameKind::from_byte(self.buf[0])
            .ok_or_else(|| malformed(format!("unknown frame kind {:#04x}", self.buf[0])))?;
        let len = u32::from_le_bytes(self.buf[1..5].try_into().unwrap()) as usize;
        if len > MAX_FRAME_PAYLOAD {
            return Err(malformed(format!("frame payload {len} exceeds the cap")));
        }
        let total = 5 + len + 4;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[5..5 + len].to_vec();
        let crc = u32::from_le_bytes(self.buf[5 + len..total].try_into().unwrap());
        let expect = crc32_update(crc32_update(!0u32, &[self.buf[0]]), &payload) ^ !0u32;
        if crc != expect {
            return Err(malformed("frame checksum mismatch"));
        }
        self.buf.drain(..total);
        Ok(Some(Frame { kind, payload }))
    }

    /// The verdict for an EOF observed now: `Ok` at a frame boundary,
    /// the matching [`read_frame`] mid-frame error otherwise. Only
    /// meaningful after [`FrameDecoder::try_frame`] returned `Ok(None)`
    /// (a decode error is already terminal).
    pub fn on_eof(&self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.buf.len() < 5 {
            return Err(malformed("eof inside a frame header"));
        }
        let len = u32::from_le_bytes(self.buf[1..5].try_into().unwrap()) as usize;
        if self.buf.len() < 5 + len {
            Err(malformed("eof inside a frame payload"))
        } else {
            Err(malformed("eof inside a frame checksum"))
        }
    }
}

/// Encodes an [`FrameKind::Error`] payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let mut out = vec![code as u8];
    out.extend_from_slice(message.as_bytes());
    out
}

/// Decodes an [`FrameKind::Error`] payload into `(code, message)`.
pub fn decode_error(input: &[u8]) -> Result<(ErrorCode, String), ProtoError> {
    let (&code, rest) = input
        .split_first()
        .ok_or_else(|| malformed("error frame: code"))?;
    let code = ErrorCode::from_byte(code)
        .ok_or_else(|| malformed(format!("error frame: unknown code {code}")))?;
    let message = String::from_utf8_lossy(rest).into_owned();
    Ok((code, message))
}

/// A running FNV-1a 64-bit digest over prediction bytes — the
/// per-session result fingerprint reported by the load harness and
/// compared by the concurrency tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Digest {
    /// A fresh digest (the FNV-1a offset basis).
    pub fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// A digest whose running state is `value` — resumes accumulation
    /// exactly where a previous digest's [`value`](Self::value) left
    /// off (the FNV-1a state *is* the value), so a churn driver can
    /// carry one digest across reconnects.
    pub fn seeded(value: u64) -> Self {
        Digest(value)
    }

    /// Feeds bytes into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest value.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

/// Convenience: the canonical hash of a config, as exchanged in HELLO.
pub fn config_hash(config: &OnlineConfig) -> u64 {
    config.canon_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paco::PacoConfig;
    use paco_sim::EstimatorKind;
    use paco_types::Pc;

    fn sample_config() -> OnlineConfig {
        OnlineConfig::tiny(EstimatorKind::Paco(PacoConfig::paper()))
    }

    #[test]
    fn frame_round_trips() {
        let payload = b"hello frames".to_vec();
        let bytes = frame_bytes(FrameKind::Events, &payload);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::Events);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn clean_eof_is_none_mid_frame_is_error() {
        assert!(read_frame(&mut &b""[..]).unwrap().is_none());
        let bytes = frame_bytes(FrameKind::Bye, &[]);
        for cut in 1..bytes.len() {
            assert!(
                read_frame(&mut &bytes[..cut]).is_err(),
                "cut at {cut} must be an error, not silence"
            );
        }
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let bytes = frame_bytes(FrameKind::Events, b"payload-bytes");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                read_frame(&mut bad.as_slice()).is_err(),
                "flip at {i} must be detected"
            );
        }
    }

    #[test]
    fn hello_round_trips_all_resume_modes() {
        for resume in [
            Resume::Fresh,
            Resume::SessionId(42),
            Resume::State(vec![1, 2, 3, 4]),
        ] {
            for family in [None, Some("biased_bimodal".to_owned())] {
                let hello = Hello {
                    protocol_version: PROTOCOL_VERSION,
                    fingerprint: 0xdead_beef,
                    config: sample_config(),
                    config_hash: config_hash(&sample_config()),
                    resume: resume.clone(),
                    family,
                };
                let bytes = encode_hello(&hello);
                assert_eq!(decode_hello(&bytes).unwrap(), hello);
            }
        }
    }

    #[test]
    fn hello_rejects_oversized_family_names() {
        let hello = Hello {
            protocol_version: PROTOCOL_VERSION,
            fingerprint: 1,
            config: sample_config(),
            config_hash: config_hash(&sample_config()),
            resume: Resume::Fresh,
            family: Some("f".repeat(MAX_FAMILY_NAME + 1)),
        };
        assert!(decode_hello(&encode_hello(&hello)).is_err());
    }

    #[test]
    fn config_codec_round_trips_every_estimator() {
        use paco_sim::EstimatorKind as E;
        let kinds = [
            E::None,
            E::Paco(PacoConfig::paper()),
            E::ThresholdCount(paco::ThresholdCountConfig::paper_default()),
            E::StaticMrt,
            E::PerBranchMrt(paco::PerBranchMrtConfig::paper()),
            E::AdaptiveMrt(paco::AdaptiveMrtConfig::paper()),
            E::AdaptiveMrt(paco::AdaptiveMrtConfig::paper().with_blend(false)),
        ];
        for kind in kinds {
            let config = OnlineConfig::paper(kind);
            let mut buf = Vec::new();
            encode_config(&mut buf, &config);
            let mut input = buf.as_slice();
            let back = decode_config(&mut input).unwrap();
            assert!(input.is_empty());
            assert_eq!(back, config);
            // The round-tripped config canon-hashes identically — the
            // property the HELLO hash check relies on.
            assert_eq!(config_hash(&back), config_hash(&config));
        }
    }

    #[test]
    fn events_round_trip() {
        let instrs = vec![
            DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)),
            DynInstr::branch(Pc::new(0x2000), false, Pc::new(0x1000)),
            DynInstr::alu(Pc::new(0x2004)),
        ];
        let payload = encode_events(&instrs);
        assert_eq!(decode_events(&payload).unwrap(), instrs);
    }

    #[test]
    fn batched_event_decode_agrees_with_per_event_decode() {
        let instrs = vec![
            DynInstr::branch(Pc::new(0x1000), true, Pc::new(0x2000)),
            // Timing-only fields are parsed (the codec interleaves them
            // with the event fields) but not stored in the batch.
            DynInstr::alu(Pc::new(0x2000))
                .with_deps(1, 2)
                .with_mem(0xbeef),
            DynInstr::branch(Pc::new(0x2004), false, Pc::new(0x1000)),
        ];
        let payload = encode_events(&instrs);
        let reference = decode_events(&payload).unwrap();
        let mut batch = EventBatch::new();
        // Pre-dirty the batch: decode_events_into must clear it.
        batch.push(&DynInstr::alu(Pc::new(0xdead)));
        decode_events_into(&payload, &mut batch).unwrap();
        assert_eq!(batch.len(), reference.len());
        for (i, instr) in reference.iter().enumerate() {
            assert_eq!(batch.pc(i), instr.pc);
            assert_eq!(batch.class(i), instr.class);
            assert_eq!(batch.taken(i), instr.taken);
            assert_eq!(batch.target(i), instr.target);
        }
    }

    #[test]
    fn batched_event_decode_rejects_what_per_event_rejects() {
        let payload = encode_events(&[DynInstr::branch(Pc::new(0x10), true, Pc::new(0x20))]);
        let mut batch = EventBatch::new();
        for cut in 0..payload.len() {
            let per_event = decode_events(&payload[..cut]).is_err();
            let batched = decode_events_into(&payload[..cut], &mut batch).is_err();
            assert_eq!(per_event, batched, "divergent verdict at cut {cut}");
            assert!(per_event, "every truncation must be rejected");
        }
        // Trailing garbage.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_events(&long).is_err());
        assert!(decode_events_into(&long, &mut batch).is_err());
    }

    #[test]
    fn batched_outcome_encode_is_byte_identical() {
        let outcomes = vec![
            OnlineOutcome {
                score: 0,
                prob_bits: None,
                predicted_taken: true,
                mispredicted: false,
            },
            OnlineOutcome {
                score: 99999,
                prob_bits: Some(0.125f64.to_bits()),
                predicted_taken: false,
                mispredicted: true,
            },
            OnlineOutcome {
                score: 7,
                prob_bits: Some(0),
                predicted_taken: true,
                mispredicted: true,
            },
        ];
        let mut batch = OutcomeBatch::new();
        for o in &outcomes {
            batch.push(o);
        }
        let mut from_batch = Vec::new();
        encode_outcomes_into(&mut from_batch, &batch);
        assert_eq!(from_batch, encode_outcomes(&outcomes));
        assert_eq!(decode_outcomes(&from_batch).unwrap(), outcomes);
    }

    #[test]
    fn outcomes_round_trip() {
        let outcomes = vec![
            OnlineOutcome {
                score: 0,
                prob_bits: None,
                predicted_taken: true,
                mispredicted: false,
            },
            OnlineOutcome {
                score: 4096,
                prob_bits: Some(0.25f64.to_bits()),
                predicted_taken: false,
                mispredicted: true,
            },
        ];
        let payload = encode_outcomes(&outcomes);
        assert_eq!(decode_outcomes(&payload).unwrap(), outcomes);
    }

    #[test]
    fn welcome_snapshot_error_round_trip() {
        let w = Welcome {
            session_id: 7,
            fingerprint: 9,
            events: 1234,
        };
        assert_eq!(decode_welcome(&encode_welcome(&w)).unwrap(), w);

        let s = Snapshot {
            session_id: 7,
            events: 1234,
            state: vec![5; 100],
        };
        assert_eq!(decode_snapshot(&encode_snapshot(&s)).unwrap(), s);

        let (code, msg) = decode_error(&encode_error(ErrorCode::BadState, "nope")).unwrap();
        assert_eq!(code, ErrorCode::BadState);
        assert_eq!(msg, "nope");
    }

    fn sample_stats() -> Stats {
        Stats {
            session: SessionStats {
                session_id: 17,
                family: Some("biased_bimodal".to_owned()),
                events: 100_000,
                mispredicts: 2_200,
                with_prob: 99_000,
                windows: 48,
                window_len: 700,
                last_divergence_bits: 0.31f64.to_bits(),
                cusum_bits: 0.62f64.to_bits(),
                drift_flagged: true,
                drift_window: 45,
                bins: (0..21).map(|i| (i * 10, i * 9)).collect(),
            },
            fleet: FleetStats {
                sessions_active: 4,
                sessions_parked: 1,
                sessions_seen: 9,
                flagged_sessions: 2,
                events: 800_000,
                mispredicts: 31_000,
                events_per_sec_bits: 125_000.0f64.to_bits(),
                bins: (0..21).map(|i| (i * 100, i * 80)).collect(),
            },
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = sample_stats();
        assert_eq!(decode_stats(&encode_stats(&stats)).unwrap(), stats);

        // A minimal frame too: no family, empty bins, nothing flagged.
        let quiet = Stats {
            session: SessionStats {
                session_id: 1,
                family: None,
                events: 0,
                mispredicts: 0,
                with_prob: 0,
                windows: 0,
                window_len: 0,
                last_divergence_bits: 0.0f64.to_bits(),
                cusum_bits: 0.0f64.to_bits(),
                drift_flagged: false,
                drift_window: 0,
                bins: Vec::new(),
            },
            fleet: FleetStats {
                sessions_active: 1,
                sessions_parked: 0,
                sessions_seen: 1,
                flagged_sessions: 0,
                events: 0,
                mispredicts: 0,
                events_per_sec_bits: 0.0f64.to_bits(),
                bins: Vec::new(),
            },
        };
        assert_eq!(decode_stats(&encode_stats(&quiet)).unwrap(), quiet);
    }

    #[test]
    fn stats_rejects_truncation_and_trailing_bytes() {
        let payload = encode_stats(&sample_stats());
        for cut in 0..payload.len() {
            assert!(
                decode_stats(&payload[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_stats(&long).is_err());
    }

    #[test]
    fn stats_rejects_implausible_bin_counts() {
        let mut stats = sample_stats();
        stats.session.bins = vec![(0, 0); MAX_STATS_BINS + 1];
        assert!(decode_stats(&encode_stats(&stats)).is_err());
    }

    #[test]
    fn migrate_codecs_round_trip() {
        for req in [
            MigrateReq {
                session_id: 7,
                target_shard: None,
            },
            MigrateReq {
                session_id: u64::MAX,
                target_shard: Some(3),
            },
        ] {
            assert_eq!(decode_migrate_req(&encode_migrate_req(&req)).unwrap(), req);
        }
        let ack = MigrateAck {
            session_id: 42,
            from_shard: 1,
            to_shard: 6,
        };
        assert_eq!(decode_migrate_ack(&encode_migrate_ack(&ack)).unwrap(), ack);

        // Truncations and trailing garbage are rejected.
        let req_bytes = encode_migrate_req(&MigrateReq {
            session_id: 300,
            target_shard: Some(2),
        });
        for cut in 0..req_bytes.len() {
            assert!(decode_migrate_req(&req_bytes[..cut]).is_err());
        }
        let mut long = req_bytes.clone();
        long.push(0);
        assert!(decode_migrate_req(&long).is_err());
        assert!(decode_migrate_req(&[7, 9]).is_err(), "unknown target tag");
    }

    #[test]
    fn frame_decoder_matches_read_frame_over_chunked_stream() {
        // Three frames, fed one byte at a time, must come out identical
        // to blocking reads of the same stream.
        let frames = [
            (FrameKind::Hello, b"abc".to_vec()),
            (FrameKind::Events, Vec::new()),
            (FrameKind::Migrate, vec![0u8; 100]),
        ];
        let mut stream = Vec::new();
        for (kind, payload) in &frames {
            stream.extend_from_slice(&frame_bytes(*kind, payload));
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            decoder.feed(&[b]);
            while let Some(frame) = decoder.try_frame().unwrap() {
                got.push(frame);
            }
        }
        assert!(decoder.at_boundary());
        assert!(decoder.on_eof().is_ok());
        let mut cursor = stream.as_slice();
        for frame in &got {
            assert_eq!(read_frame(&mut cursor).unwrap().as_ref(), Some(frame));
        }
        assert!(read_frame(&mut cursor).unwrap().is_none());
        assert_eq!(got.len(), frames.len());
    }

    #[test]
    fn frame_decoder_rejects_what_read_frame_rejects() {
        // Unknown kind: rejected as soon as the header is complete.
        let mut decoder = FrameDecoder::new();
        decoder.feed(&[0xFF; 5]);
        assert!(matches!(
            decoder.try_frame(),
            Err(ProtoError::Malformed(m)) if m.contains("unknown frame kind")
        ));

        // Oversized payload: rejected from the header, no allocation.
        let mut decoder = FrameDecoder::new();
        let mut header = vec![FrameKind::Events as u8];
        header.extend_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        decoder.feed(&header);
        assert!(matches!(
            decoder.try_frame(),
            Err(ProtoError::Malformed(m)) if m.contains("cap")
        ));

        // Corruption anywhere in a frame is caught.
        let bytes = frame_bytes(FrameKind::Events, b"payload-bytes");
        for i in 1..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bad);
            let verdict: Result<(), ProtoError> = loop {
                match decoder.try_frame() {
                    Ok(Some(_)) => continue,
                    // The stream has ended: an incomplete frame takes
                    // its verdict from the EOF rule, like read_frame.
                    Ok(None) => break decoder.on_eof(),
                    Err(e) => break Err(e),
                }
            };
            let blocking = read_frame(&mut bad.as_slice());
            assert_eq!(
                verdict.is_err(),
                blocking.is_err(),
                "divergent verdict for flip at {i}"
            );
        }

        // EOF mid-frame reproduces read_frame's exact messages.
        let bytes = frame_bytes(FrameKind::Bye, b"xy");
        for cut in 1..bytes.len() {
            let mut decoder = FrameDecoder::new();
            decoder.feed(&bytes[..cut]);
            let incremental = match decoder.try_frame() {
                Ok(None) => decoder.on_eof().unwrap_err(),
                Ok(Some(_)) => panic!("truncated frame decoded at cut {cut}"),
                Err(e) => e,
            };
            let blocking = read_frame(&mut &bytes[..cut]).unwrap_err();
            let (ProtoError::Malformed(a), ProtoError::Malformed(b)) = (incremental, blocking)
            else {
                panic!("non-malformed verdict at cut {cut}");
            };
            assert_eq!(a, b, "divergent message at cut {cut}");
        }
    }

    #[test]
    fn digest_matches_one_shot_fnv() {
        let mut d = Digest::new();
        d.update(b"12345");
        d.update(b"6789");
        assert_eq!(d.value(), paco_types::canon::fnv1a64(b"123456789"));
    }
}
