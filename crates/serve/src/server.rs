//! `paco-served`: the sharded event-loop streaming prediction server.
//!
//! N pinned worker shards, each multiplexing its connections with a
//! non-blocking readiness loop over plain `std::net` — a small
//! hand-rolled reactor, no async runtime. A blocking accept thread
//! hands fresh connections to workers round-robin; once the HELLO
//! handshake assigns a session, the connection moves to the session's
//! *home worker* (`session_id % workers`), so sessions route by id
//! hash.
//!
//! Each worker sweep drains its inbox, flushes pending writes, drains
//! readable bytes into a per-connection [`FrameDecoder`] and processes
//! the complete frames — the hot path stays lock-free (the only locks
//! are the inbox mutex at sweep start and the fleet fold at batch
//! cadence). Idle workers back off from yielding to short sleeps to a
//! condvar wait, so an idle server burns almost no CPU.
//!
//! **Live migration**: a session moves between workers by saving its
//! pipeline SNAPSHOT blob on the source worker and restoring it on the
//! target — the same blob clients carry across reconnects, so the
//! migration path *is* the snapshot path and inherits its bit-exactness
//! proof. Exposed two ways: the operator `MIGRATE` control frame, and
//! an automatic load-threshold policy that sheds one session from a hot
//! worker to the least-loaded one (read from the
//! `paco_shard_connections` gauges). A [`FaultInjector`] seam lets the
//! test harness stall a shard, tear a migration snapshot mid-write, or
//! sever a connection mid-migration; every fault must leave surviving
//! sessions byte-identical to offline replay.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use paco_obs::FlightKind;
use paco_sim::{OnlineConfig, OnlinePipeline};
use paco_types::fingerprint::code_fingerprint;

use crate::metrics::{ServeMetrics, SessionMode};
use crate::proto::{
    decode_events_into, decode_hello, decode_migrate_req, encode_error, encode_migrate_ack,
    encode_outcomes_into, encode_snapshot, encode_stats, encode_welcome, frame_bytes, ErrorCode,
    FleetStats, Frame, FrameDecoder, FrameKind, Hello, MigrateAck, ProtoError, Resume, Snapshot,
    Stats, Welcome, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionTable};
use crate::watch::{FleetAggregator, WatchState};

/// How many EVENTS frames a session handles between folds of its watch
/// deltas into the fleet aggregator. Folding takes the fleet mutex, so
/// it happens at this cadence (plus on STATS_REQ and at session end),
/// never per frame.
const FOLD_EVERY_BATCHES: u64 = 32;

/// Bytes read from one connection per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// A connection whose decoder already buffers this much stops reading
/// until frames drain — keeps one fire-hose client from starving its
/// shard's siblings.
const READ_HIGH_WATER: usize = 2 * 1024 * 1024;

/// Idle sweeps a worker yields through before it starts sleeping. Kept
/// small: on few-core hosts a longer yield spin starves the peer
/// threads the workers are ping-ponging with (measured ~20% off
/// `serve_throughput` at 32 on one vCPU), while the first few yields
/// still catch the common back-to-back frame without a sleep.
const IDLE_SPINS: u32 = 4;

/// Sleep between sweeps once a worker with connections has gone idle.
const IDLE_SLEEP: Duration = Duration::from_micros(100);

/// How long a worker with no connections parks on its inbox condvar
/// before re-checking the shutdown flag.
const EMPTY_WAIT: Duration = Duration::from_millis(5);

/// Server construction knobs beyond the bind address.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker shards (event loops); also the session-table shard count.
    pub shards: usize,
    /// The automatic migration policy's load threshold: a worker owning
    /// more than this many connections sheds one session per sweep to
    /// the least-loaded worker (as long as that worker owns strictly
    /// fewer). `usize::MAX` disables the policy.
    pub policy_watermark: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: ServeMetrics::DEFAULT_SHARDS,
            policy_watermark: 64,
        }
    }
}

/// The in-process fault-injection seam the churn/fault harness drives.
///
/// Each fault is one-shot: armed by a test, consumed by the first
/// worker that reaches the corresponding seam, then disarmed. The
/// keystone requirement is that **no injected fault may corrupt a
/// surviving session** — predictions stay byte-identical to offline
/// replay whether a migration snapshot tore (the session keeps its
/// original pipeline), a connection died mid-migration (the session
/// parks for resume), or a shard stalled (its clients just wait).
#[derive(Debug)]
pub struct FaultInjector {
    stall_shard: AtomicU64,
    stall_ms: AtomicU64,
    tear_snapshot: AtomicBool,
    drop_migration: AtomicBool,
}

impl FaultInjector {
    fn new() -> Self {
        FaultInjector {
            stall_shard: AtomicU64::new(u64::MAX),
            stall_ms: AtomicU64::new(0),
            tear_snapshot: AtomicBool::new(false),
            drop_migration: AtomicBool::new(false),
        }
    }

    /// Arms a one-shot stall: worker `shard` sleeps `ms` milliseconds
    /// at the top of its next sweep (its connections see latency,
    /// nothing else changes).
    pub fn stall_shard(&self, shard: usize, ms: u64) {
        self.stall_ms.store(ms, Ordering::Relaxed);
        self.stall_shard.store(shard as u64, Ordering::Release);
    }

    /// Arms a one-shot torn snapshot write: the next migration's state
    /// blob is truncated to half before the target worker restores it.
    /// The restore must fail closed — the session keeps its original
    /// pipeline and the failure lands as a `migrate-fail` flight event.
    pub fn tear_next_migration_snapshot(&self) {
        self.tear_snapshot.store(true, Ordering::Release);
    }

    /// Arms a one-shot mid-migration disconnect: the next migrating
    /// connection is severed between snapshot save and restore. The
    /// target worker adopts a dead socket, observes EOF, and parks the
    /// session for a normal resume.
    pub fn drop_next_migration_conn(&self) {
        self.drop_migration.store(true, Ordering::Release);
    }

    fn take_stall(&self, shard: usize) -> Option<Duration> {
        if self.stall_shard.load(Ordering::Acquire) != shard as u64 {
            return None;
        }
        self.stall_shard
            .compare_exchange(shard as u64, u64::MAX, Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(|_| Duration::from_millis(self.stall_ms.load(Ordering::Relaxed)))
    }

    fn take_tear(&self) -> bool {
        self.tear_snapshot.swap(false, Ordering::AcqRel)
    }

    fn take_drop(&self) -> bool {
        self.drop_migration.swap(false, Ordering::AcqRel)
    }
}

/// A message into a worker's inbox.
enum ShardMsg {
    /// A freshly accepted, pre-handshake connection.
    Conn(TcpStream, u64),
    /// An established connection moving to its session's home worker.
    Adopt(Box<Conn>),
    /// A mid-flight migration: the connection, its session, and the
    /// pipeline snapshot the target must restore.
    Migrate(Box<Migration>),
}

/// The payload of [`ShardMsg::Migrate`].
struct Migration {
    conn: Conn,
    blob: Vec<u8>,
    from: u32,
    operator: bool,
}

/// One worker's inbox: a mutexed queue plus a condvar so an empty
/// worker can sleep instead of polling.
struct Inbox {
    queue: Mutex<Vec<ShardMsg>>,
    signal: Condvar,
}

impl Inbox {
    fn new() -> Self {
        Inbox {
            queue: Mutex::new(Vec::new()),
            signal: Condvar::new(),
        }
    }
}

/// State shared by the accept thread, every worker, and the
/// [`RunningServer`] handle.
struct Shared {
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    workers: usize,
    policy_watermark: usize,
    table: Arc<SessionTable>,
    fleet: Arc<FleetAggregator>,
    metrics: Arc<ServeMetrics>,
    faults: Arc<FaultInjector>,
    inboxes: Vec<Inbox>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.workers)
            .field("policy_watermark", &self.policy_watermark)
            .finish_non_exhaustive()
    }
}

impl Shared {
    fn send(&self, target: usize, msg: ShardMsg) {
        self.inboxes[target]
            .queue
            .lock()
            .expect("shard inbox poisoned")
            .push(msg);
        self.inboxes[target].signal.notify_one();
    }

    /// Parks a session that lost its connection (any non-BYE exit).
    fn park_exit(&self, mut ctx: SessionCtx) {
        ctx.session.watch.fold_into(&self.fleet);
        self.fleet.session_ended();
        self.metrics.session_parks.inc();
        self.metrics
            .recorder()
            .record(FlightKind::SessionPark, ctx.session.id, 0);
        self.table.park(ctx.session);
        self.metrics.sessions_parked.set(self.table.parked() as f64);
    }

    /// Closes a connection outside any worker (shutdown leftovers),
    /// parking its session if one is attached.
    fn close_leftover(&self, mut conn: Conn) {
        if let Some(ctx) = conn.session.take() {
            self.park_exit(ctx);
        }
        self.metrics
            .recorder()
            .record(FlightKind::ConnClose, conn.id, 0);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }

    /// Drains every inbox after the workers have exited: sessions
    /// inside in-flight adoptions or migrations must land in the table,
    /// not vanish.
    fn drain_leftovers(&self) {
        for inbox in &self.inboxes {
            let msgs = std::mem::take(&mut *inbox.queue.lock().expect("shard inbox poisoned"));
            for msg in msgs {
                match msg {
                    ShardMsg::Conn(stream, _) => {
                        let _ = stream.shutdown(Shutdown::Both);
                    }
                    ShardMsg::Adopt(conn) => self.close_leftover(*conn),
                    ShardMsg::Migrate(pkg) => self.close_leftover(pkg.conn),
                }
            }
        }
    }
}

/// A session attached to a live connection, plus the per-connection
/// bookkeeping the old thread-per-connection handler kept on its stack.
struct SessionCtx {
    session: Session,
    /// The negotiated pipeline config — what a migration target feeds
    /// `OnlinePipeline::new` before restoring the snapshot blob.
    config: OnlineConfig,
    batches: u64,
    drift_noted: bool,
}

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    id: u64,
    decoder: FrameDecoder,
    out: Vec<u8>,
    out_pos: usize,
    /// Set once the connection is done (refusal sent, BYE handled, or
    /// EOF observed): stop reading, flush what remains, then close.
    closing: bool,
    session: Option<SessionCtx>,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Self {
        Conn {
            stream,
            id,
            decoder: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            closing: false,
            session: None,
        }
    }

    fn out_done(&self) -> bool {
        self.out_pos == self.out.len()
    }

    /// Writes as much pending output as the socket accepts right now.
    /// `Ok(true)` if any bytes moved.
    fn flush(&mut self) -> std::io::Result<bool> {
        let mut progress = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.out_done() {
            self.out.clear();
            self.out_pos = 0;
        }
        Ok(progress)
    }
}

/// Queues one frame on a connection's output buffer.
fn queue_frame(out: &mut Vec<u8>, kind: FrameKind, payload: &[u8]) {
    out.extend_from_slice(&frame_bytes(kind, payload));
}

/// Packs a migration's shard pair into a flight event's `b` detail
/// (`from` in the high 32 bits, `to` in the low).
fn shard_pair(from: u32, to: u32) -> u64 {
    ((from as u64) << 32) | to as u64
}

/// The human-facing message of a framing error (decode errors are
/// always `Malformed`; a transport error inside the decoder cannot
/// happen but renders sanely anyway).
fn proto_msg(e: ProtoError) -> String {
    match e {
        ProtoError::Malformed(m) => m,
        ProtoError::Io(e) => e.to_string(),
    }
}

/// Per-worker scratch buffers, reused across every connection and frame
/// the worker handles — a steady-state sweep allocates nothing.
struct Scratch {
    events: paco_types::EventBatch,
    outcomes: paco_sim::OutcomeBatch,
    predictions: Vec<u8>,
    read_buf: Vec<u8>,
}

impl Scratch {
    fn new() -> Self {
        Scratch {
            events: paco_types::EventBatch::new(),
            outcomes: paco_sim::OutcomeBatch::new(),
            predictions: Vec::new(),
            read_buf: vec![0u8; READ_CHUNK],
        }
    }
}

/// What a sweep decided about one connection.
enum Sweep {
    Keep { active: bool },
    Close,
    Handoff { target: usize },
    Migrate { target: usize, operator: bool },
}

/// What one frame's dispatch decided.
enum Flow {
    Continue,
    Refuse(ErrorCode, String),
    Bye,
    Handoff(usize),
    Migrate { target: usize, operator: bool },
}

/// One pinned worker shard: an event loop over the connections it owns.
struct Worker {
    index: usize,
    shared: Arc<Shared>,
}

impl Worker {
    fn run(&self) {
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut scratch = Scratch::new();
        let mut idle = 0u32;
        loop {
            if let Some(wait) = self.shared.faults.take_stall(self.index) {
                thread::sleep(wait);
            }
            let msgs = std::mem::take(
                &mut *self.shared.inboxes[self.index]
                    .queue
                    .lock()
                    .expect("shard inbox poisoned"),
            );
            let mut active = !msgs.is_empty();
            for msg in msgs {
                self.admit(&mut conns, msg);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                for (_, conn) in conns.drain() {
                    self.close_conn(conn);
                }
                self.shared.metrics.shard_connections[self.index].set(0.0);
                return;
            }
            let mut ids: Vec<u64> = conns.keys().copied().collect();
            ids.sort_unstable();
            for id in ids {
                let verdict = {
                    let conn = conns.get_mut(&id).expect("conn vanished mid-sweep");
                    self.sweep_conn(conn, &mut scratch)
                };
                match verdict {
                    Sweep::Keep { active: a } => active |= a,
                    Sweep::Close => {
                        let conn = conns.remove(&id).expect("conn vanished mid-sweep");
                        self.close_conn(conn);
                        active = true;
                    }
                    Sweep::Handoff { target } => {
                        let conn = conns.remove(&id).expect("conn vanished mid-sweep");
                        self.shared.send(target, ShardMsg::Adopt(Box::new(conn)));
                        active = true;
                    }
                    Sweep::Migrate { target, operator } => {
                        let conn = conns.remove(&id).expect("conn vanished mid-sweep");
                        self.start_migration(conn, target, operator);
                        active = true;
                    }
                }
            }
            active |= self.try_policy_migration(&mut conns);
            self.shared.metrics.shard_connections[self.index].set(conns.len() as f64);
            if active {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                self.backoff(idle, !conns.is_empty());
            }
        }
    }

    fn admit(&self, conns: &mut HashMap<u64, Conn>, msg: ShardMsg) {
        match msg {
            ShardMsg::Conn(stream, id) => {
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    // A socket that can't join the readiness loop is
                    // refused (the close balances the open event).
                    self.shared
                        .metrics
                        .recorder()
                        .record(FlightKind::ConnClose, id, 0);
                    return;
                }
                conns.insert(id, Conn::new(stream, id));
            }
            ShardMsg::Adopt(conn) => {
                conns.insert(conn.id, *conn);
            }
            ShardMsg::Migrate(pkg) => {
                let conn = self.finish_migration(*pkg);
                conns.insert(conn.id, conn);
            }
        }
    }

    /// One readiness pass over one connection: flush, read, decode,
    /// dispatch, flush.
    fn sweep_conn(&self, conn: &mut Conn, scratch: &mut Scratch) -> Sweep {
        let mut active = match conn.flush() {
            Ok(progress) => progress,
            Err(_) => return Sweep::Close,
        };
        if conn.closing {
            return if conn.out_done() {
                Sweep::Close
            } else {
                Sweep::Keep { active }
            };
        }

        let mut saw_eof = false;
        while conn.decoder.buffered() < READ_HIGH_WATER {
            match conn.stream.read(&mut scratch.read_buf) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => {
                    active = true;
                    conn.decoder.feed(&scratch.read_buf[..n]);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // A hard transport error ends the stream like an EOF;
                // the decoder's boundary state decides the verdict.
                Err(_) => {
                    saw_eof = true;
                    break;
                }
            }
        }

        loop {
            match conn.decoder.try_frame() {
                Ok(Some(frame)) => {
                    active = true;
                    match self.on_frame(conn, frame, scratch) {
                        Flow::Continue => {}
                        Flow::Refuse(code, msg) => {
                            self.refuse(conn, code, &msg);
                            break;
                        }
                        Flow::Bye => {
                            let ctx = conn.session.take().expect("BYE without a session");
                            self.bye_exit(ctx);
                            conn.closing = true;
                            break;
                        }
                        Flow::Handoff(target) => return Sweep::Handoff { target },
                        Flow::Migrate { target, operator } => {
                            return Sweep::Migrate { target, operator }
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.refuse(conn, ErrorCode::Malformed, &proto_msg(e));
                    break;
                }
            }
        }

        if saw_eof && !conn.closing {
            match conn.decoder.on_eof() {
                Ok(()) => {
                    // Clean close at a frame boundary: a non-BYE exit,
                    // so the session parks for resume.
                    if let Some(ctx) = conn.session.take() {
                        self.shared.park_exit(ctx);
                    }
                    conn.closing = true;
                }
                Err(e) => self.refuse(conn, ErrorCode::Malformed, &proto_msg(e)),
            }
        }

        if !conn.out_done() {
            match conn.flush() {
                Ok(progress) => active |= progress,
                Err(_) => return Sweep::Close,
            }
        }
        if conn.closing && conn.out_done() {
            return Sweep::Close;
        }
        Sweep::Keep { active }
    }

    fn on_frame(&self, conn: &mut Conn, frame: Frame, scratch: &mut Scratch) -> Flow {
        if conn.session.is_none() {
            self.on_handshake_frame(conn, frame)
        } else {
            self.on_session_frame(conn, frame, scratch)
        }
    }

    /// The first frame must be a valid HELLO; a good one establishes
    /// the session and (usually) hands the connection to its home
    /// worker.
    fn on_handshake_frame(&self, conn: &mut Conn, frame: Frame) -> Flow {
        if frame.kind != FrameKind::Hello {
            return Flow::Refuse(
                ErrorCode::Malformed,
                "expected HELLO as the first frame".into(),
            );
        }
        let hello = match decode_hello(&frame.payload) {
            Ok(hello) => hello,
            Err(e) => return Flow::Refuse(ErrorCode::Malformed, e.to_string()),
        };
        self.shared.metrics.frame(FrameKind::Hello).inc();
        let session = match establish(&hello, &self.shared.table) {
            Ok(session) => session,
            Err((code, msg)) => return Flow::Refuse(code, msg),
        };
        let (mode, flight_kind) = match &hello.resume {
            Resume::Fresh => (SessionMode::Fresh, FlightKind::SessionFresh),
            Resume::SessionId(_) => (SessionMode::Resumed, FlightKind::SessionResume),
            Resume::State(_) => (SessionMode::Restored, FlightKind::SessionRestore),
        };
        self.shared.fleet.session_started(mode);
        self.shared
            .metrics
            .recorder()
            .record(flight_kind, session.id, 0);
        // A resume just removed a parked session; keep the gauge
        // current.
        self.shared
            .metrics
            .sessions_parked
            .set(self.shared.table.parked() as f64);
        // A reclaimed session may come back already drift-flagged; only
        // a latch that happens on THIS connection records a flight
        // event.
        let drift_noted = session.watch.drift_flagged();
        let welcome = Welcome {
            session_id: session.id,
            fingerprint: code_fingerprint(),
            events: session.pipeline.events(),
        };
        queue_frame(&mut conn.out, FrameKind::Welcome, &encode_welcome(&welcome));
        let home = (session.id % self.shared.workers as u64) as usize;
        conn.session = Some(SessionCtx {
            session,
            config: hello.config,
            batches: 0,
            drift_noted,
        });
        if home == self.index {
            Flow::Continue
        } else {
            Flow::Handoff(home)
        }
    }

    fn on_session_frame(&self, conn: &mut Conn, frame: Frame, scratch: &mut Scratch) -> Flow {
        let shared = &self.shared;
        let metrics = &shared.metrics;
        metrics.frame(frame.kind).inc();
        let Conn { session, out, .. } = conn;
        let ctx = session.as_mut().expect("session frame without a session");
        match frame.kind {
            FrameKind::Events => {
                let started = Instant::now();
                if let Err(e) = decode_events_into(&frame.payload, &mut scratch.events) {
                    return Flow::Refuse(ErrorCode::Malformed, e.to_string());
                }
                scratch.outcomes.clear();
                ctx.session
                    .pipeline
                    .run_batch(&scratch.events, &mut scratch.outcomes);
                scratch.predictions.clear();
                encode_outcomes_into(&mut scratch.predictions, &scratch.outcomes);
                queue_frame(out, FrameKind::Predictions, &scratch.predictions);
                // Watch telemetry rides the hot loop allocation-free;
                // the fleet fold (which locks) runs at a batch cadence.
                ctx.session.watch.observe_batch(&scratch.outcomes);
                metrics.batch_events.record(scratch.events.len() as u64);
                metrics
                    .batch_handle_ns
                    .record(started.elapsed().as_nanos() as u64);
                if !ctx.drift_noted && ctx.session.watch.drift_flagged() {
                    ctx.drift_noted = true;
                    metrics.recorder().record(
                        FlightKind::DriftLatch,
                        ctx.session.id,
                        ctx.session.watch.drift_window(),
                    );
                }
                ctx.batches += 1;
                if ctx.batches % FOLD_EVERY_BATCHES == 0 {
                    ctx.session.watch.fold_into(&shared.fleet);
                }
                Flow::Continue
            }
            FrameKind::StatsReq => {
                ctx.session.watch.fold_into(&shared.fleet);
                let stats = Stats {
                    session: ctx.session.watch.session_stats(ctx.session.id),
                    fleet: shared.fleet.snapshot(shared.table.parked()),
                };
                queue_frame(out, FrameKind::Stats, &encode_stats(&stats));
                Flow::Continue
            }
            FrameKind::SnapshotReq => {
                let mut state = Vec::new();
                ctx.session.pipeline.save_state(&mut state);
                let snapshot = Snapshot {
                    session_id: ctx.session.id,
                    events: ctx.session.pipeline.events(),
                    state,
                };
                queue_frame(out, FrameKind::Snapshot, &encode_snapshot(&snapshot));
                Flow::Continue
            }
            FrameKind::Bye => Flow::Bye,
            FrameKind::Migrate => {
                let req = match decode_migrate_req(&frame.payload) {
                    Ok(req) => req,
                    Err(e) => return Flow::Refuse(ErrorCode::Malformed, e.to_string()),
                };
                if req.session_id != ctx.session.id {
                    return Flow::Refuse(
                        ErrorCode::BadState,
                        format!(
                            "MIGRATE names session {} but this connection owns session {}",
                            req.session_id, ctx.session.id
                        ),
                    );
                }
                let target = match req.target_shard {
                    Some(t) if (t as usize) >= shared.workers => {
                        return Flow::Refuse(
                            ErrorCode::BadState,
                            format!("target shard {t} out of range ({} workers)", shared.workers),
                        );
                    }
                    Some(t) => t as usize,
                    None => self.least_loaded_other(),
                };
                if target == self.index {
                    // Already there (or a single-worker server):
                    // acknowledge without moving anything.
                    let ack = MigrateAck {
                        session_id: ctx.session.id,
                        from_shard: self.index as u32,
                        to_shard: self.index as u32,
                    };
                    queue_frame(out, FrameKind::Migrate, &encode_migrate_ack(&ack));
                    return Flow::Continue;
                }
                Flow::Migrate {
                    target,
                    operator: true,
                }
            }
            _ => Flow::Refuse(
                ErrorCode::Malformed,
                "unexpected frame kind from client".into(),
            ),
        }
    }

    /// The least-loaded worker other than this one, read from the
    /// `paco_shard_connections` gauges (peers update theirs at sweep
    /// cadence, so the reading may lag a sweep — good enough for load
    /// shedding).
    fn least_loaded_other(&self) -> usize {
        let gauges = &self.shared.metrics.shard_connections;
        (0..self.shared.workers)
            .filter(|&j| j != self.index)
            .min_by(|&a, &b| {
                gauges[a]
                    .value()
                    .partial_cmp(&gauges[b].value())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(self.index)
    }

    /// The automatic rebalancing policy: a worker above the watermark
    /// sheds its lowest-id session to the least-loaded worker, at most
    /// one per sweep.
    fn try_policy_migration(&self, conns: &mut HashMap<u64, Conn>) -> bool {
        let shared = &self.shared;
        if shared.workers < 2
            || shared.shutdown.load(Ordering::Relaxed)
            || conns.len() <= shared.policy_watermark
        {
            return false;
        }
        let target = self.least_loaded_other();
        if shared.metrics.shard_connections[target].value() >= conns.len() as f64 {
            return false;
        }
        let victim = conns
            .iter()
            .filter(|(_, c)| c.session.is_some() && !c.closing)
            .min_by_key(|(_, c)| c.session.as_ref().map_or(u64::MAX, |s| s.session.id))
            .map(|(&id, _)| id);
        let Some(id) = victim else {
            return false;
        };
        let conn = conns.remove(&id).expect("policy victim vanished");
        self.start_migration(conn, target, false);
        true
    }

    /// Source half of a migration: snapshot the pipeline (the tear
    /// fault corrupts the blob here; the drop fault severs the stream
    /// here) and ship the package to the target's inbox.
    fn start_migration(&self, mut conn: Conn, target: usize, operator: bool) {
        let mut blob = Vec::new();
        {
            let ctx = conn
                .session
                .as_mut()
                .expect("migrating conn without session");
            ctx.session.pipeline.save_state(&mut blob);
        }
        if self.shared.faults.take_tear() {
            let keep = blob.len() / 2;
            blob.truncate(keep);
        }
        if self.shared.faults.take_drop() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        self.shared.send(
            target,
            ShardMsg::Migrate(Box::new(Migration {
                conn,
                blob,
                from: self.index as u32,
                operator,
            })),
        );
    }

    /// Target half of a migration: restore the snapshot into a fresh
    /// pipeline. A torn blob fails closed — the session keeps the
    /// pipeline it arrived with (still byte-identical) and the failure
    /// is recorded as `migrate-fail`.
    fn finish_migration(&self, pkg: Migration) -> Conn {
        let Migration {
            mut conn,
            blob,
            from,
            operator,
        } = pkg;
        let metrics = &self.shared.metrics;
        let to = self.index as u32;
        let ctx = conn.session.as_mut().expect("migration without session");
        let mut restored = OnlinePipeline::new(&ctx.config);
        let mut input = blob.as_slice();
        if restored.load_state(&mut input) && input.is_empty() {
            ctx.session.pipeline = restored;
            metrics.recorder().record(
                FlightKind::SessionMigrate,
                ctx.session.id,
                shard_pair(from, to),
            );
            metrics.migrations(operator).inc();
        } else {
            metrics.recorder().record(
                FlightKind::MigrateFail,
                ctx.session.id,
                shard_pair(from, to),
            );
        }
        if operator {
            let ack = MigrateAck {
                session_id: ctx.session.id,
                from_shard: from,
                to_shard: to,
            };
            queue_frame(&mut conn.out, FrameKind::Migrate, &encode_migrate_ack(&ack));
        }
        conn
    }

    /// Counts a refusal, answers with an ERROR frame, and finishes the
    /// connection. A *malformed* refusal additionally lands in the
    /// flight recorder and dumps it — the "something impossible arrived
    /// on the wire" diagnostic path. A refused streaming connection
    /// parks its session (the client may resume with correct framing).
    fn refuse(&self, conn: &mut Conn, code: ErrorCode, msg: &str) {
        let metrics = &self.shared.metrics;
        let session_id = conn.session.as_ref().map_or(0, |c| c.session.id);
        metrics.protocol_errors.inc();
        if code == ErrorCode::Malformed {
            metrics
                .recorder()
                .record(FlightKind::FrameError, conn.id, session_id);
            metrics.recorder().dump("protocol error");
        }
        queue_frame(&mut conn.out, FrameKind::Error, &encode_error(code, msg));
        conn.closing = true;
        if let Some(ctx) = conn.session.take() {
            self.shared.park_exit(ctx);
        }
    }

    /// Clean close: the session is discarded, but its telemetry still
    /// counts toward the fleet totals.
    fn bye_exit(&self, mut ctx: SessionCtx) {
        ctx.session.watch.fold_into(&self.shared.fleet);
        self.shared.fleet.session_ended();
        self.shared
            .metrics
            .recorder()
            .record(FlightKind::SessionBye, ctx.session.id, 0);
    }

    /// Final teardown of one connection: best-effort flush, park any
    /// still-attached session, record the close.
    fn close_conn(&self, mut conn: Conn) {
        let _ = conn.flush();
        if let Some(ctx) = conn.session.take() {
            self.shared.park_exit(ctx);
        }
        self.shared
            .metrics
            .recorder()
            .record(FlightKind::ConnClose, conn.id, 0);
        let _ = conn.stream.shutdown(Shutdown::Both);
    }

    /// Idle backoff: yield for the first [`IDLE_SPINS`] sweeps, then
    /// short sleeps while connections exist, then a condvar wait once
    /// the worker owns nothing at all.
    fn backoff(&self, idle: u32, has_conns: bool) {
        if idle < IDLE_SPINS {
            thread::yield_now();
            return;
        }
        if has_conns {
            thread::sleep(IDLE_SLEEP);
            return;
        }
        let inbox = &self.shared.inboxes[self.index];
        let guard = inbox.queue.lock().expect("shard inbox poisoned");
        if guard.is_empty() && !self.shared.shutdown.load(Ordering::SeqCst) {
            let _ = inbox
                .signal
                .wait_timeout(guard, EMPTY_WAIT)
                .expect("shard inbox poisoned");
        }
    }
}

/// The blocking accept loop: counts and stamps each connection, then
/// deals it to a worker round-robin (session-id routing takes over
/// after the handshake).
fn accept_loop(listener: TcpListener, shared: &Shared) {
    let mut next = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept errors (aborted handshakes etc.); keep
            // serving.
            continue;
        };
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.metrics.connections.inc();
        shared
            .metrics
            .recorder()
            .record(FlightKind::ConnOpen, conn_id, 0);
        shared.send(next % shared.workers, ShardMsg::Conn(stream, conn_id));
        next = next.wrapping_add(1);
    }
}

/// A server running on background threads (one accept loop, N worker
/// shards). Dropping it (or calling [`stop`](Self::stop)) shuts the
/// listener and every worker down and joins all threads.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
    worker_threads: Vec<thread::JoinHandle<()>>,
}

impl RunningServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving with `shards` worker shards and the default
    /// migration policy.
    pub fn bind(addr: impl ToSocketAddrs, shards: usize) -> std::io::Result<RunningServer> {
        RunningServer::bind_with(
            addr,
            ServeOptions {
                shards,
                ..ServeOptions::default()
            },
        )
    }

    /// Binds `addr` with explicit [`ServeOptions`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        options: ServeOptions,
    ) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = options.shards.max(1);
        let metrics = Arc::new(ServeMetrics::with_shards(workers));
        // The aggregator's scalar counters ARE the registry's cells:
        // fleet log, STATS frames and /metrics scrapes read one source.
        let fleet = Arc::new(FleetAggregator::with_counters(metrics.fleet.clone()));
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            workers,
            policy_watermark: options.policy_watermark,
            table: Arc::new(SessionTable::new(workers)),
            fleet,
            metrics,
            faults: Arc::new(FaultInjector::new()),
            inboxes: (0..workers).map(|_| Inbox::new()).collect(),
        });
        let mut worker_threads = Vec::with_capacity(workers);
        for index in 0..workers {
            let worker = Worker {
                index,
                shared: Arc::clone(&shared),
            };
            worker_threads.push(
                thread::Builder::new()
                    .name(format!("paco-shard-{index}"))
                    .spawn(move || worker.run())?,
            );
        }
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("paco-served-accept".into())
            .spawn(move || accept_loop(listener, &accept_shared))?;
        Ok(RunningServer {
            addr,
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric plane (registry + flight recorder) — what
    /// `--metrics-addr` exposes and tests scrape.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.shared.metrics
    }

    /// The fault-injection seam the churn/fault harness arms.
    pub fn faults(&self) -> &Arc<FaultInjector> {
        &self.shared.faults
    }

    /// Sessions currently parked (detached, resumable).
    pub fn parked_sessions(&self) -> usize {
        self.shared.table.parked()
    }

    /// The current fleet-wide watch snapshot (what a STATS frame's
    /// fleet half would report) — for the binary's periodic fleet log.
    pub fn fleet_snapshot(&self) -> FleetStats {
        self.shared.fleet.snapshot(self.shared.table.parked())
    }

    /// A `'static` snapshot closure over the same aggregate as
    /// [`fleet_snapshot`](Self::fleet_snapshot) — for detached logger
    /// threads that must outlive the borrow of `self`.
    pub fn fleet_handle(&self) -> impl Fn() -> FleetStats + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.fleet.snapshot(shared.table.parked())
    }

    /// Shuts down: stops accepting, severs live connections (parking
    /// their sessions), joins all threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(accept) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        for inbox in &self.shared.inboxes {
            inbox.signal.notify_one();
        }
        let _ = accept.join();
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        // Anything still queued in an inbox (say, a migration in flight
        // at shutdown) must park its session, not leak it.
        self.shared.drain_leftovers();
    }

    /// Blocks until the accept loop exits (for the foreground binary);
    /// the loop only exits via [`stop`](Self::stop) or process signals.
    pub fn join(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for inbox in &self.shared.inboxes {
            inbox.signal.notify_one();
        }
        for handle in self.worker_threads.drain(..) {
            let _ = handle.join();
        }
        self.shared.drain_leftovers();
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

type Refusal = (ErrorCode, String);

/// Validates a HELLO and produces the session it asks for.
fn establish(hello: &Hello, table: &SessionTable) -> Result<Session, Refusal> {
    if hello.protocol_version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::ProtocolMismatch,
            format!(
                "server speaks protocol {PROTOCOL_VERSION}, client sent {}",
                hello.protocol_version
            ),
        ));
    }
    if let Err(reason) = hello.config.validate() {
        return Err((ErrorCode::ConfigInvalid, reason));
    }
    let server_hash = crate::proto::config_hash(&hello.config);
    if server_hash != hello.config_hash {
        return Err((
            ErrorCode::ConfigHashMismatch,
            format!(
                "decoded config canon-hashes to {server_hash:016x}, client claims {:016x} \
                 (incompatible builds?)",
                hello.config_hash
            ),
        ));
    }
    // Resolve the declared workload family (if any) to its shipped
    // reference profile before touching any session state, so an
    // unknown name refuses cleanly.
    let declared = match &hello.family {
        None => None,
        Some(name) => match paco_corpus::reference_profile(name) {
            Some(profile) => Some((name.clone(), *profile)),
            None => {
                let known: Vec<&str> = paco_corpus::CORPUS.iter().map(|e| e.name).collect();
                return Err((
                    ErrorCode::UnknownFamily,
                    format!(
                        "no reference profile for family `{name}` (known: {})",
                        known.join(" ")
                    ),
                ));
            }
        },
    };
    let fresh_watch = |declared: Option<(String, paco_corpus::CalibrationProfile)>| match declared {
        Some((name, profile)) => WatchState::new(Some(name), Some(profile)),
        None => WatchState::default(),
    };
    match &hello.resume {
        Resume::Fresh => Ok(Session {
            id: table.allocate_id(),
            pipeline: OnlinePipeline::new(&hello.config),
            watch: fresh_watch(declared),
        }),
        Resume::SessionId(id) => {
            let mut session = table.claim(*id).ok_or_else(|| {
                (
                    ErrorCode::UnknownSession,
                    format!("session {id} is unknown, expired or already claimed"),
                )
            })?;
            if session.pipeline.config_hash() != server_hash {
                // Hand the session back before refusing: the rightful
                // owner may still reclaim it with the right config.
                table.park(session);
                return Err((
                    ErrorCode::ConfigHashMismatch,
                    format!("session {id} was created under a different configuration"),
                ));
            }
            // A reclaimed session keeps its accumulated telemetry; a
            // declaring HELLO can pin a family onto a session that never
            // had one (WatchState::declare is first-writer-wins).
            if let Some((name, profile)) = declared {
                session.watch.declare(name, profile);
            }
            Ok(session)
        }
        Resume::State(blob) => {
            let mut pipeline = OnlinePipeline::new(&hello.config);
            let mut input = blob.as_slice();
            if !pipeline.load_state(&mut input) || !input.is_empty() {
                return Err((
                    ErrorCode::BadState,
                    "state blob failed to restore (wrong config or corrupt)".into(),
                ));
            }
            // Snapshot blobs carry pipeline state only; telemetry
            // restarts (a restored session is a new observation stream).
            Ok(Session {
                id: table.allocate_id(),
                pipeline,
                watch: fresh_watch(declared),
            })
        }
    }
}
