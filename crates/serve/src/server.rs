//! `paco-served`: the multi-threaded streaming prediction server.
//!
//! Plain `std::net` blocking I/O with scoped threads — one accept loop,
//! one handler thread per connection, no async runtime. Each connection
//! negotiates a session (fresh, reclaimed by id, or restored from a
//! client-held snapshot), then streams EVENTS frames and receives one
//! PREDICTIONS frame per batch. Sessions left behind by a dropped
//! connection are parked in the sharded [`SessionTable`] for resume.

use std::io::{BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use paco_obs::FlightKind;
use paco_sim::OnlinePipeline;
use paco_types::fingerprint::code_fingerprint;

use crate::metrics::{ServeMetrics, SessionMode};
use crate::proto::{
    decode_events_into, decode_hello, encode_error, encode_outcomes_into, encode_snapshot,
    encode_stats, encode_welcome, write_frame, ErrorCode, FleetStats, FrameKind, Hello, ProtoError,
    Resume, Snapshot, Stats, Welcome, PROTOCOL_VERSION,
};
use crate::session::{Session, SessionTable};
use crate::watch::{FleetAggregator, WatchState};

/// How many EVENTS frames a connection handles between folds of its
/// watch deltas into the fleet aggregator. Folding takes the fleet
/// mutex, so it happens at this cadence (plus on STATS_REQ and at
/// connection end), never per frame.
const FOLD_EVERY_BATCHES: u64 = 32;

/// Shared server control state: the shutdown flag plus handles to every
/// live connection (so shutdown can unblock handler reads).
#[derive(Debug, Default)]
struct ServerShared {
    shutdown: AtomicBool,
    next_conn: std::sync::atomic::AtomicU64,
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
}

impl ServerShared {
    /// Registers a live connection; the returned id must be passed to
    /// [`unregister`](Self::unregister) when the handler finishes, or
    /// the duplicated fd would outlive the connection. `None` (the
    /// connection must be dropped, not served) when the stream cannot be
    /// tracked — an untracked connection would be unkillable at
    /// shutdown, and its handler could block a scoped join forever.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let id = self
            .next_conn
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let clone = stream.try_clone().ok()?;
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .insert(id, clone);
        // Close the race with shutdown_all(): if the flag was set while
        // we were inserting, our entry may have missed the drain — sever
        // the stream ourselves so the handler sees EOF immediately.
        if self.shutdown.load(Ordering::SeqCst) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.conns
            .lock()
            .expect("conn registry poisoned")
            .remove(&id);
    }

    fn shutdown_all(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for (_, conn) in self.conns.lock().expect("conn registry poisoned").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Runs the accept loop until `shared` is shut down. Connection handlers
/// run on scoped threads, so this function returns only after every
/// handler has finished.
fn serve(
    listener: TcpListener,
    table: &SessionTable,
    shared: &ServerShared,
    fleet: &FleetAggregator,
    metrics: &ServeMetrics,
) {
    thread::scope(|scope| {
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else {
                // Transient accept errors (aborted handshakes etc.);
                // keep serving.
                continue;
            };
            let Some(conn_id) = shared.register(&stream) else {
                continue; // untrackable connection: refuse, don't serve
            };
            metrics.connections.inc();
            metrics.recorder().record(FlightKind::ConnOpen, conn_id, 0);
            scope.spawn(move || {
                handle_conn(stream, conn_id, table, fleet, metrics);
                metrics.recorder().record(FlightKind::ConnClose, conn_id, 0);
                shared.unregister(conn_id);
            });
        }
    });
}

/// A server running on a background thread. Dropping it (or calling
/// [`stop`](Self::stop)) shuts the listener and every connection down and
/// joins all threads.
#[derive(Debug)]
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    table: Arc<SessionTable>,
    fleet: Arc<FleetAggregator>,
    metrics: Arc<ServeMetrics>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl RunningServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving with a session table of `shards` shards.
    pub fn bind(addr: impl ToSocketAddrs, shards: usize) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared::default());
        let table = Arc::new(SessionTable::new(shards));
        let metrics = Arc::new(ServeMetrics::new());
        // The aggregator's scalar counters ARE the registry's cells:
        // fleet log, STATS frames and /metrics scrapes read one source.
        let fleet = Arc::new(FleetAggregator::with_counters(metrics.fleet.clone()));
        let accept_shared = Arc::clone(&shared);
        let accept_table = Arc::clone(&table);
        let accept_fleet = Arc::clone(&fleet);
        let accept_metrics = Arc::clone(&metrics);
        let accept_thread = thread::Builder::new()
            .name("paco-served-accept".into())
            .spawn(move || {
                serve(
                    listener,
                    &accept_table,
                    &accept_shared,
                    &accept_fleet,
                    &accept_metrics,
                )
            })?;
        Ok(RunningServer {
            addr,
            shared,
            table,
            fleet,
            metrics,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's metric plane (registry + flight recorder) — what
    /// `--metrics-addr` exposes and tests scrape.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Sessions currently parked (detached, resumable).
    pub fn parked_sessions(&self) -> usize {
        self.table.parked()
    }

    /// The current fleet-wide watch snapshot (what a STATS frame's fleet
    /// half would report) — for the binary's periodic fleet log.
    pub fn fleet_snapshot(&self) -> FleetStats {
        self.fleet.snapshot(self.table.parked())
    }

    /// A `'static` snapshot closure over the same aggregate as
    /// [`fleet_snapshot`](Self::fleet_snapshot) — for detached logger
    /// threads that must outlive the borrow of `self`.
    pub fn fleet_handle(&self) -> impl Fn() -> FleetStats + Send + 'static {
        let fleet = Arc::clone(&self.fleet);
        let table = Arc::clone(&self.table);
        move || fleet.snapshot(table.parked())
    }

    /// Shuts down: stops accepting, severs live connections, joins all
    /// threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutdown_all();
        // Unblock the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }

    /// Blocks until the accept loop exits (for the foreground binary);
    /// the loop only exits via [`stop`](Self::stop) or process signals.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

type Refusal = (ErrorCode, String);

/// Validates a HELLO and produces the session it asks for.
fn establish(hello: &Hello, table: &SessionTable) -> Result<Session, Refusal> {
    if hello.protocol_version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::ProtocolMismatch,
            format!(
                "server speaks protocol {PROTOCOL_VERSION}, client sent {}",
                hello.protocol_version
            ),
        ));
    }
    if let Err(reason) = hello.config.validate() {
        return Err((ErrorCode::ConfigInvalid, reason));
    }
    let server_hash = crate::proto::config_hash(&hello.config);
    if server_hash != hello.config_hash {
        return Err((
            ErrorCode::ConfigHashMismatch,
            format!(
                "decoded config canon-hashes to {server_hash:016x}, client claims {:016x} \
                 (incompatible builds?)",
                hello.config_hash
            ),
        ));
    }
    // Resolve the declared workload family (if any) to its shipped
    // reference profile before touching any session state, so an
    // unknown name refuses cleanly.
    let declared = match &hello.family {
        None => None,
        Some(name) => match paco_corpus::reference_profile(name) {
            Some(profile) => Some((name.clone(), *profile)),
            None => {
                let known: Vec<&str> = paco_corpus::CORPUS.iter().map(|e| e.name).collect();
                return Err((
                    ErrorCode::UnknownFamily,
                    format!(
                        "no reference profile for family `{name}` (known: {})",
                        known.join(" ")
                    ),
                ));
            }
        },
    };
    let fresh_watch = |declared: Option<(String, paco_corpus::CalibrationProfile)>| match declared {
        Some((name, profile)) => WatchState::new(Some(name), Some(profile)),
        None => WatchState::default(),
    };
    match &hello.resume {
        Resume::Fresh => Ok(Session {
            id: table.allocate_id(),
            pipeline: OnlinePipeline::new(&hello.config),
            watch: fresh_watch(declared),
        }),
        Resume::SessionId(id) => {
            let mut session = table.claim(*id).ok_or_else(|| {
                (
                    ErrorCode::UnknownSession,
                    format!("session {id} is unknown, expired or already claimed"),
                )
            })?;
            if session.pipeline.config_hash() != server_hash {
                // Hand the session back before refusing: the rightful
                // owner may still reclaim it with the right config.
                table.park(session);
                return Err((
                    ErrorCode::ConfigHashMismatch,
                    format!("session {id} was created under a different configuration"),
                ));
            }
            // A reclaimed session keeps its accumulated telemetry; a
            // declaring HELLO can pin a family onto a session that never
            // had one (WatchState::declare is first-writer-wins).
            if let Some((name, profile)) = declared {
                session.watch.declare(name, profile);
            }
            Ok(session)
        }
        Resume::State(blob) => {
            let mut pipeline = OnlinePipeline::new(&hello.config);
            let mut input = blob.as_slice();
            if !pipeline.load_state(&mut input) || !input.is_empty() {
                return Err((
                    ErrorCode::BadState,
                    "state blob failed to restore (wrong config or corrupt)".into(),
                ));
            }
            // Snapshot blobs carry pipeline state only; telemetry
            // restarts (a restored session is a new observation stream).
            Ok(Session {
                id: table.allocate_id(),
                pipeline,
                watch: fresh_watch(declared),
            })
        }
    }
}

/// Serves one connection to completion. Never panics on client input;
/// protocol violations answer with an ERROR frame and close.
fn handle_conn(
    stream: TcpStream,
    conn_id: u64,
    table: &SessionTable,
    fleet: &FleetAggregator,
    metrics: &ServeMetrics,
) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    // Every refusal counts; a *malformed* refusal is a protocol error,
    // which additionally lands in the flight recorder and dumps it —
    // the "something impossible arrived on the wire" diagnostic path.
    let refuse = |writer: &mut BufWriter<TcpStream>, code: ErrorCode, msg: &str, session: u64| {
        metrics.protocol_errors.inc();
        if code == ErrorCode::Malformed {
            metrics
                .recorder()
                .record(FlightKind::FrameError, conn_id, session);
            metrics.recorder().dump("protocol error");
        }
        let _ = write_frame(writer, FrameKind::Error, &encode_error(code, msg));
    };
    let park = |session: Session| {
        metrics.session_parks.inc();
        metrics
            .recorder()
            .record(FlightKind::SessionPark, session.id, 0);
        table.park(session);
        metrics.sessions_parked.set(table.parked() as f64);
    };

    // --- Handshake ---------------------------------------------------
    let hello = match crate::proto::read_frame(&mut reader) {
        Ok(Some(frame)) if frame.kind == FrameKind::Hello => match decode_hello(&frame.payload) {
            Ok(hello) => hello,
            Err(e) => return refuse(&mut writer, ErrorCode::Malformed, &e.to_string(), 0),
        },
        Ok(Some(_)) => {
            return refuse(
                &mut writer,
                ErrorCode::Malformed,
                "expected HELLO as the first frame",
                0,
            )
        }
        Ok(None) => return,
        Err(ProtoError::Malformed(m)) => return refuse(&mut writer, ErrorCode::Malformed, &m, 0),
        Err(ProtoError::Io(_)) => return,
    };
    metrics.frame(FrameKind::Hello).inc();
    let mut session = match establish(&hello, table) {
        Ok(session) => session,
        Err((code, msg)) => return refuse(&mut writer, code, &msg, 0),
    };
    let (mode, flight_kind) = match &hello.resume {
        Resume::Fresh => (SessionMode::Fresh, FlightKind::SessionFresh),
        Resume::SessionId(_) => (SessionMode::Resumed, FlightKind::SessionResume),
        Resume::State(_) => (SessionMode::Restored, FlightKind::SessionRestore),
    };
    fleet.session_started(mode);
    metrics.recorder().record(flight_kind, session.id, 0);
    // A resume just removed a parked session; keep the gauge current.
    metrics.sessions_parked.set(table.parked() as f64);
    // A reclaimed session may come back already drift-flagged; only a
    // latch that happens on THIS connection records a flight event.
    let mut drift_noted = session.watch.drift_flagged();
    let welcome = Welcome {
        session_id: session.id,
        fingerprint: code_fingerprint(),
        events: session.pipeline.events(),
    };
    if write_frame(&mut writer, FrameKind::Welcome, &encode_welcome(&welcome)).is_err() {
        // The connection died before the handshake completed. The
        // session (possibly a just-claimed resume with accumulated
        // state) must survive the transient failure like any post-
        // handshake disconnect does.
        session.watch.fold_into(fleet);
        fleet.session_ended();
        park(session);
        return;
    }

    // --- Event stream ------------------------------------------------
    // Sessions are parked (kept resumable) on any non-BYE exit; a clean
    // BYE discards the session.
    //
    // The hot path is fully batched: EVENTS payloads decode straight
    // into a struct-of-arrays EventBatch, run through the pipeline's
    // monomorphized batch lane, and encode to the wire from an
    // OutcomeBatch — all three buffers reused across frames, so a
    // steady-state connection allocates nothing per frame. The bytes
    // produced are identical to the per-event path (the parity suite
    // replays the same traces through per-event pipelines and compares
    // to the last bit).
    let mut events = paco_types::EventBatch::new();
    let mut outcomes = paco_sim::OutcomeBatch::new();
    let mut predictions = Vec::new();
    let mut batches = 0u64;
    loop {
        let frame = match crate::proto::read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(ProtoError::Io(_)) => break,
            Err(ProtoError::Malformed(m)) => {
                refuse(&mut writer, ErrorCode::Malformed, &m, session.id);
                break;
            }
        };
        metrics.frame(frame.kind).inc();
        match frame.kind {
            FrameKind::Events => {
                let started = Instant::now();
                if let Err(e) = decode_events_into(&frame.payload, &mut events) {
                    refuse(
                        &mut writer,
                        ErrorCode::Malformed,
                        &e.to_string(),
                        session.id,
                    );
                    break;
                }
                outcomes.clear();
                session.pipeline.run_batch(&events, &mut outcomes);
                predictions.clear();
                encode_outcomes_into(&mut predictions, &outcomes);
                if write_frame(&mut writer, FrameKind::Predictions, &predictions).is_err() {
                    break;
                }
                // Watch telemetry rides the hot loop allocation-free;
                // the fleet fold (which locks) runs at a batch cadence.
                session.watch.observe_batch(&outcomes);
                metrics.batch_events.record(events.len() as u64);
                metrics
                    .batch_handle_ns
                    .record(started.elapsed().as_nanos() as u64);
                if !drift_noted && session.watch.drift_flagged() {
                    drift_noted = true;
                    metrics.recorder().record(
                        FlightKind::DriftLatch,
                        session.id,
                        session.watch.drift_window(),
                    );
                }
                batches += 1;
                if batches % FOLD_EVERY_BATCHES == 0 {
                    session.watch.fold_into(fleet);
                }
            }
            FrameKind::StatsReq => {
                session.watch.fold_into(fleet);
                let stats = Stats {
                    session: session.watch.session_stats(session.id),
                    fleet: fleet.snapshot(table.parked()),
                };
                if write_frame(&mut writer, FrameKind::Stats, &encode_stats(&stats)).is_err() {
                    break;
                }
            }
            FrameKind::SnapshotReq => {
                let mut state = Vec::new();
                session.pipeline.save_state(&mut state);
                let snapshot = Snapshot {
                    session_id: session.id,
                    events: session.pipeline.events(),
                    state,
                };
                if write_frame(
                    &mut writer,
                    FrameKind::Snapshot,
                    &encode_snapshot(&snapshot),
                )
                .is_err()
                {
                    break;
                }
            }
            FrameKind::Bye => {
                // Clean close: the session is discarded, but its
                // telemetry still counts toward the fleet totals.
                session.watch.fold_into(fleet);
                fleet.session_ended();
                metrics
                    .recorder()
                    .record(FlightKind::SessionBye, session.id, 0);
                return;
            }
            _ => {
                refuse(
                    &mut writer,
                    ErrorCode::Malformed,
                    "unexpected frame kind from client",
                    session.id,
                );
                break;
            }
        }
    }
    session.watch.fold_into(fleet);
    fleet.session_ended();
    park(session);
}
