//! Blocking client for the `paco-serve` protocol, used by `paco-load`,
//! the integration suite, and anything else that wants online
//! predictions from a `paco-served` instance.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use paco_sim::{OnlineConfig, OnlineOutcome};
use paco_types::fingerprint::code_fingerprint;
use paco_types::DynInstr;

use crate::proto::{
    decode_error, decode_migrate_ack, decode_outcomes, decode_snapshot, decode_stats,
    decode_welcome, encode_events, encode_hello, encode_migrate_req, encode_outcomes, read_frame,
    write_frame, Digest, ErrorCode, Frame, FrameKind, Hello, MigrateAck, MigrateReq, ProtoError,
    Resume, Snapshot, Stats, PROTOCOL_VERSION,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server refused with an ERROR frame.
    Server(ErrorCode, String),
    /// The server closed or answered with an unexpected frame.
    Unexpected(String),
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Server(code, msg) => write!(f, "server refused ({code:?}): {msg}"),
            ClientError::Unexpected(msg) => write!(f, "unexpected server behavior: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected session.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_id: u64,
    server_fingerprint: u64,
    resumed_events: u64,
    digest: Digest,
}

impl Client {
    /// Opens a fresh session.
    pub fn connect(addr: impl ToSocketAddrs, config: &OnlineConfig) -> Result<Self, ClientError> {
        Self::handshake(addr, config, Resume::Fresh, None)
    }

    /// Opens a fresh session declaring a workload family: the server
    /// pins the session's drift detector against that family's
    /// reference calibration profile (see the STATS frame). Unknown
    /// names are refused with
    /// [`ErrorCode::UnknownFamily`](crate::proto::ErrorCode).
    pub fn connect_declaring(
        addr: impl ToSocketAddrs,
        config: &OnlineConfig,
        family: &str,
    ) -> Result<Self, ClientError> {
        Self::handshake(addr, config, Resume::Fresh, Some(family.to_owned()))
    }

    /// Reclaims a session the server parked when a previous connection
    /// dropped; streaming resumes exactly where it stopped.
    pub fn resume_by_id(
        addr: impl ToSocketAddrs,
        config: &OnlineConfig,
        session_id: u64,
    ) -> Result<Self, ClientError> {
        Self::handshake(addr, config, Resume::SessionId(session_id), None)
    }

    /// Opens a session restored from a snapshot blob the client carried
    /// across the disconnect (survives even a server restart).
    pub fn resume_with_state(
        addr: impl ToSocketAddrs,
        config: &OnlineConfig,
        state: Vec<u8>,
    ) -> Result<Self, ClientError> {
        Self::handshake(addr, config, Resume::State(state), None)
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        config: &OnlineConfig,
        resume: Resume,
        family: Option<String>,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            reader,
            writer: BufWriter::new(stream),
            session_id: 0,
            server_fingerprint: 0,
            resumed_events: 0,
            digest: Digest::new(),
        };
        let hello = Hello {
            protocol_version: PROTOCOL_VERSION,
            fingerprint: code_fingerprint(),
            config: *config,
            config_hash: crate::proto::config_hash(config),
            resume,
            family,
        };
        write_frame(&mut client.writer, FrameKind::Hello, &encode_hello(&hello))
            .map_err(ProtoError::Io)?;
        let frame = client.expect_frame(FrameKind::Welcome)?;
        let welcome = decode_welcome(&frame.payload)?;
        client.session_id = welcome.session_id;
        client.server_fingerprint = welcome.fingerprint;
        client.resumed_events = welcome.events;
        Ok(client)
    }

    /// Reads one frame, translating ERROR frames and surprises.
    fn expect_frame(&mut self, kind: FrameKind) -> Result<Frame, ClientError> {
        match read_frame(&mut self.reader)? {
            Some(frame) if frame.kind == kind => Ok(frame),
            Some(frame) if frame.kind == FrameKind::Error => {
                let (code, msg) = decode_error(&frame.payload)?;
                Err(ClientError::Server(code, msg))
            }
            Some(frame) => Err(ClientError::Unexpected(format!(
                "wanted {kind:?}, got {:?}",
                frame.kind
            ))),
            None => Err(ClientError::Unexpected(
                "connection closed mid-exchange".into(),
            )),
        }
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The server executable's fingerprint (compare with your own
    /// `code_fingerprint()` to detect build mismatches).
    pub fn server_fingerprint(&self) -> u64 {
        self.server_fingerprint
    }

    /// Events the session had already processed when this connection
    /// opened (0 for a fresh session).
    pub fn resumed_events(&self) -> u64 {
        self.resumed_events
    }

    /// Running FNV-1a digest over every PREDICTIONS payload received on
    /// this connection — the session's result fingerprint.
    pub fn digest(&self) -> u64 {
        self.digest.value()
    }

    /// Seeds the running digest with a prior connection's final
    /// [`digest`](Self::digest) value, so one fingerprint spans a
    /// session's whole life across drops, resumes and migrations.
    pub fn seed_digest(&mut self, value: u64) {
        self.digest = Digest::seeded(value);
    }

    /// Asks the server to migrate this session to another worker shard
    /// (`None` lets the server pick the least-loaded one); blocks for
    /// the MIGRATE acknowledgement naming the shard pair. Predictions
    /// before and after the ack are part of one byte-identical stream.
    pub fn migrate(&mut self, target_shard: Option<u32>) -> Result<MigrateAck, ClientError> {
        let req = MigrateReq {
            session_id: self.session_id,
            target_shard,
        };
        write_frame(
            &mut self.writer,
            FrameKind::Migrate,
            &encode_migrate_req(&req),
        )
        .map_err(ProtoError::Io)?;
        let frame = self.expect_frame(FrameKind::Migrate)?;
        Ok(decode_migrate_ack(&frame.payload)?)
    }

    /// Streams a batch of events; blocks for and returns the
    /// predictions (one per control instruction in the batch).
    pub fn send_events(&mut self, instrs: &[DynInstr]) -> Result<Vec<OnlineOutcome>, ClientError> {
        write_frame(&mut self.writer, FrameKind::Events, &encode_events(instrs))
            .map_err(ProtoError::Io)?;
        let frame = self.expect_frame(FrameKind::Predictions)?;
        self.digest.update(&frame.payload);
        Ok(decode_outcomes(&frame.payload)?)
    }

    /// Requests a snapshot of the session's full pipeline state.
    pub fn snapshot(&mut self) -> Result<Snapshot, ClientError> {
        write_frame(&mut self.writer, FrameKind::SnapshotReq, &[]).map_err(ProtoError::Io)?;
        let frame = self.expect_frame(FrameKind::Snapshot)?;
        Ok(decode_snapshot(&frame.payload)?)
    }

    /// Requests the session's watch telemetry plus the fleet snapshot.
    /// Stats polling never touches the prediction [`digest`](Self::digest)
    /// — parity checks are unaffected by how often a client watches.
    pub fn stats(&mut self) -> Result<Stats, ClientError> {
        write_frame(&mut self.writer, FrameKind::StatsReq, &[]).map_err(ProtoError::Io)?;
        let frame = self.expect_frame(FrameKind::Stats)?;
        Ok(decode_stats(&frame.payload)?)
    }

    /// Closes the session cleanly; the server discards it (it will not
    /// be resumable). Dropping a `Client` without `bye` leaves the
    /// session parked server-side for [`Client::resume_by_id`].
    pub fn bye(mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, FrameKind::Bye, &[]).map_err(ProtoError::Io)?;
        Ok(())
    }
}

/// Feeds the same events through a local
/// [`OnlinePipeline`](paco_sim::OnlinePipeline) (`paco-sim`'s offline
/// semantics) and digests the outcome encodings exactly as the server
/// would — the reference value for parity checks.
///
/// Deliberately uses the **per-event** lane (`on_instr`) while
/// `paco-served` answers from the batched lane (`run_batch`): every
/// parity check against this digest is therefore also a cross-lane
/// byte-identity proof, not just a loopback echo test.
pub fn offline_digest(config: &OnlineConfig, instrs: &[DynInstr], batch: usize) -> u64 {
    let mut pipeline = paco_sim::OnlinePipeline::new(config);
    let mut digest = Digest::new();
    for chunk in instrs.chunks(batch.max(1)) {
        let outcomes: Vec<_> = chunk.iter().filter_map(|i| pipeline.on_instr(i)).collect();
        digest.update(&encode_outcomes(&outcomes));
    }
    digest.value()
}
