//! `paco-watch`: per-session calibration telemetry, fleet aggregation
//! and online drift detection for the serving layer.
//!
//! Every session carries a [`WatchState`]: lifetime calibration counters
//! plus a rolling [`WATCH_WINDOW`]-event window of the same shape. The
//! state is updated inline in the `run_batch` hot loop with a strict
//! zero-allocation budget — both profiles are fixed-size
//! [`CalibrationProfile`]s and the update is pure counter arithmetic.
//!
//! When a session declares a workload family (HELLO's `family` field),
//! each completed window is scored against the family's shipped
//! reference profile ([`paco_corpus::reference_profile`]): the
//! divergence is the larger of the total-variation distance between
//! bin-occupancy distributions and the absolute mispredict-rate delta,
//! fed to a one-sided [`CusumDetector`]. A stream that departs its
//! family — the acceptance demo splices `mispredict_storm` into a
//! `biased_bimodal` session — accumulates divergence and latches the
//! drift flag within a few windows, while an on-profile stream bleeds
//! the accumulator back to zero.
//!
//! Sessions fold their counter *deltas* into the shared
//! [`FleetAggregator`] at batch-count checkpoints (not per batch — the
//! hot loop takes no locks), on STATS_REQ, and when the connection
//! ends; the aggregator pools calibration bins across sessions via
//! [`paco_analysis::merge_bin_pairs`] and tracks a smoothed fleet event
//! rate.
//!
//! Everything in a session's telemetry is a deterministic function of
//! its event stream: no clocks, no randomness. The lane-determinism
//! test encodes [`SessionStats`] from a per-event and a batched replay
//! of the same events and requires identical bytes.

use std::sync::Mutex;
use std::time::Instant;

use paco_analysis::{merge_bin_pairs, occupancy_distance, CusumDetector};
use paco_corpus::{prob_bin, CalibrationProfile, ProbBinner, PROFILE_BINS, PROFILE_WINDOW};
use paco_sim::{OnlineOutcome, OutcomeBatch};

use crate::metrics::{FleetCounters, SessionMode};
use crate::proto::{FleetStats, SessionStats};

/// Rolling-window length, in control events, between drift scorings.
/// Shared with the reference-profile generator so windows and baselines
/// describe the same timescale.
pub const WATCH_WINDOW: u64 = PROFILE_WINDOW;

/// Completed windows skipped before drift scoring starts, absorbing the
/// predictor's cold-start transient (the reference profiles skip the
/// same span).
pub const WATCH_WARMUP_WINDOWS: u64 = 2;

/// Per-window divergence at or below this level bleeds the CUSUM
/// accumulator; above it, the excess accumulates. Sits above the
/// sampling noise of a [`WATCH_WINDOW`]-event window measured against
/// its own family (see the steady-state watch tests).
pub const DRIFT_THRESHOLD: f64 = 0.12;

/// CUSUM accumulator level that latches the drift flag: a sustained
/// shift must exceed [`DRIFT_THRESHOLD`] by this much in total before a
/// session is flagged.
pub const DRIFT_LIMIT: f64 = 0.25;

/// Per-session watch telemetry: lifetime calibration, a rolling window,
/// and the drift detector. Fixed-size — attaching one to every session
/// costs no allocation, and updating it in the hot loop allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct WatchState {
    /// Calibration counters of every *completed* window. The hot loop
    /// touches only [`window`](Self::window); each completed window is
    /// absorbed here at roll time, and readers merge the live window
    /// back in via [`lifetime`](Self::lifetime).
    cum: CalibrationProfile,
    /// The current rolling window (reset every [`WATCH_WINDOW`] events).
    window: CalibrationProfile,
    detector: CusumDetector,
    /// The declared family's reference profile, when one was declared.
    reference: Option<CalibrationProfile>,
    family: Option<String>,
    /// Completed rolling windows (including warmup windows the detector
    /// never saw).
    windows: u64,
    /// The 1-based completed-window index at which the drift flag
    /// latched; 0 = never.
    drift_window: u64,
    // Fold marks: the portion of the counters already delta-folded into
    // the fleet aggregator.
    folded_events: u64,
    folded_mispredicts: u64,
    folded_windows: u64,
    folded_bins: [(u64, u64); PROFILE_BINS],
    folded_flag: bool,
}

impl WatchState {
    /// A fresh watch state, optionally pinned to a declared workload
    /// family and its reference profile.
    pub fn new(family: Option<String>, reference: Option<CalibrationProfile>) -> Self {
        WatchState {
            cum: CalibrationProfile::new(),
            window: CalibrationProfile::new(),
            detector: CusumDetector::new(DRIFT_THRESHOLD, DRIFT_LIMIT),
            reference,
            family,
            windows: 0,
            drift_window: 0,
            folded_events: 0,
            folded_mispredicts: 0,
            folded_windows: 0,
            folded_bins: [(0, 0); PROFILE_BINS],
            folded_flag: false,
        }
    }

    /// Pins a declared family onto a session that does not have one yet
    /// (reclaiming a parked session with a declaring HELLO). A session
    /// that already has a family keeps it — telemetry stays a
    /// deterministic function of the original declaration.
    pub fn declare(&mut self, family: String, reference: CalibrationProfile) {
        if self.family.is_none() {
            self.family = Some(family);
            self.reference = Some(reference);
        }
    }

    /// Records one outcome (the per-event reference lane).
    #[inline]
    pub fn observe(&mut self, outcome: &OnlineOutcome) {
        self.record(outcome.probability(), outcome.mispredicted);
    }

    /// Records a whole outcome batch (the server hot loop). Reads the
    /// struct-of-arrays columns directly and allocates nothing. The
    /// batch is processed in chunks that stop exactly at window
    /// boundaries, so the inner loop carries no per-event rollover
    /// check and settles the event/mispredict counters once per chunk;
    /// window rolls happen at the same event index as in the per-event
    /// lane (the lane-determinism test holds the two to identical
    /// bytes).
    pub fn observe_batch(&mut self, outcomes: &OutcomeBatch) {
        // Binning stays in integer bit-pattern form end to end: the
        // wire already carries raw probability bits, and
        // `ProbBinner::bin_bits` is bit-identical to `prob_bin` on the
        // decoded value (pinned by paco-corpus' oracle sweep), so the
        // float round-trip the per-event lane does is skipped entirely.
        let binner = ProbBinner::new();
        let (mut flags, mut probs) = (outcomes.flags(), outcomes.prob_bits());
        while !flags.is_empty() {
            let take = ((WATCH_WINDOW - self.window.events()) as usize).min(flags.len());
            let (chunk_flags, rest_flags) = flags.split_at(take);
            let (chunk_probs, rest_probs) = probs.split_at(take);
            let mut mispredicts = 0u64;
            for (&f, &p) in chunk_flags.iter().zip(chunk_probs) {
                mispredicts += u64::from(f & OutcomeBatch::FLAG_MISPREDICTED != 0);
                if f & OutcomeBatch::FLAG_HAS_PROB != 0 {
                    let correct = u64::from(f & OutcomeBatch::FLAG_MISPREDICTED == 0);
                    self.window.add_bin(binner.bin_bits(p), 1, correct);
                }
            }
            self.window.add_counts(take as u64, mispredicts);
            if self.window.events() >= WATCH_WINDOW {
                self.roll_window();
            }
            (flags, probs) = (rest_flags, rest_probs);
        }
    }

    #[inline]
    fn record(&mut self, prob: Option<f64>, mispredicted: bool) {
        self.record_bin(prob.map(prob_bin), mispredicted);
    }

    /// The shared recording core. Only the window profile is touched
    /// per event; lifetime counters are maintained by absorbing each
    /// completed window in [`roll_window`](Self::roll_window), which
    /// halves the counter traffic on the hot path.
    #[inline]
    fn record_bin(&mut self, bin: Option<usize>, mispredicted: bool) {
        self.window.record_bin(bin, mispredicted);
        if self.window.events() >= WATCH_WINDOW {
            self.roll_window();
        }
    }

    /// Closes the current window: score it against the reference (past
    /// warmup), absorb it into the lifetime counters, and reset it.
    fn roll_window(&mut self) {
        self.windows += 1;
        if self.windows > WATCH_WARMUP_WINDOWS {
            if let Some(reference) = &self.reference {
                let divergence = occupancy_distance(self.window.bins(), reference.bins())
                    .max((self.window.mispredict_rate() - reference.mispredict_rate()).abs());
                let was = self.detector.is_flagged();
                if self.detector.observe(divergence) && !was {
                    self.drift_window = self.windows;
                }
            }
        }
        self.cum.absorb(&self.window);
        self.window.clear();
    }

    /// Lifetime counters: completed windows plus the live window.
    fn lifetime(&self) -> CalibrationProfile {
        let mut total = self.cum;
        total.absorb(&self.window);
        total
    }

    /// Whether the drift flag has latched.
    pub fn drift_flagged(&self) -> bool {
        self.detector.is_flagged()
    }

    /// The 1-based completed-window index at which the drift flag
    /// latched (0 = never) — the flight recorder stamps this into
    /// drift-latch events.
    pub fn drift_window(&self) -> u64 {
        self.drift_window
    }

    /// The declared family, if any.
    pub fn family(&self) -> Option<&str> {
        self.family.as_deref()
    }

    /// Control events observed.
    pub fn events(&self) -> u64 {
        self.cum.events() + self.window.events()
    }

    /// The session's telemetry as a wire-ready [`SessionStats`].
    pub fn session_stats(&self, session_id: u64) -> SessionStats {
        let lifetime = self.lifetime();
        SessionStats {
            session_id,
            family: self.family.clone(),
            events: lifetime.events(),
            mispredicts: lifetime.mispredicts(),
            with_prob: lifetime.with_prob(),
            windows: self.windows,
            window_len: self.window.events(),
            last_divergence_bits: self.detector.last_divergence().to_bits(),
            cusum_bits: self.detector.cusum().to_bits(),
            drift_flagged: self.detector.is_flagged(),
            drift_window: self.drift_window,
            bins: lifetime.bins().to_vec(),
        }
    }

    /// Folds this session's counter growth since the last fold into the
    /// fleet aggregator (one lock acquisition; called at batch-count
    /// checkpoints, on STATS_REQ and at connection end — never per
    /// event).
    pub fn fold_into(&mut self, fleet: &FleetAggregator) {
        let lifetime = self.lifetime();
        let delta_events = lifetime.events() - self.folded_events;
        let delta_mispredicts = lifetime.mispredicts() - self.folded_mispredicts;
        let delta_windows = self.windows - self.folded_windows;
        let mut delta_bins = [(0u64, 0u64); PROFILE_BINS];
        for (delta, (&now, &folded)) in delta_bins
            .iter_mut()
            .zip(lifetime.bins().iter().zip(&self.folded_bins))
        {
            *delta = (now.0 - folded.0, now.1 - folded.1);
        }
        let newly_flagged = self.detector.is_flagged() && !self.folded_flag;
        if delta_events == 0 && !newly_flagged {
            return;
        }
        fleet.fold(
            delta_events,
            delta_mispredicts,
            delta_windows,
            &delta_bins,
            newly_flagged,
        );
        self.folded_events = lifetime.events();
        self.folded_mispredicts = lifetime.mispredicts();
        self.folded_windows = self.windows;
        self.folded_bins.copy_from_slice(lifetime.bins());
        self.folded_flag = self.detector.is_flagged();
    }
}

impl Default for WatchState {
    fn default() -> Self {
        WatchState::new(None, None)
    }
}

/// Fleet-wide pooled telemetry, shared by every connection handler.
/// Sessions fold counter deltas in; STATS_REQ, the server's periodic
/// log and `/metrics` scrapes read the same cells out — the scalar
/// counters *are* registry handles ([`FleetCounters`]), so there is no
/// parallel bookkeeping to keep in sync. Only the calibration bins and
/// the rate-smoothing state (protocol-level data with no Prometheus
/// shape) stay under the mutex.
#[derive(Debug)]
pub struct FleetAggregator {
    counters: FleetCounters,
    inner: Mutex<FleetInner>,
}

#[derive(Debug)]
struct FleetInner {
    bins: [(u64, u64); PROFILE_BINS],
    rate_at: Instant,
    rate_events: u64,
    rate: f64,
}

impl FleetAggregator {
    /// A fresh aggregator with detached (unregistered) counters — unit
    /// tests and ad-hoc tooling. Servers use
    /// [`with_counters`](Self::with_counters) so the same cells feed
    /// the exposition endpoint.
    pub fn new() -> Self {
        FleetAggregator::with_counters(FleetCounters::detached())
    }

    /// An aggregator recording into `counters` (registry handles).
    pub fn with_counters(counters: FleetCounters) -> Self {
        FleetAggregator {
            counters,
            inner: Mutex::new(FleetInner {
                bins: [(0, 0); PROFILE_BINS],
                rate_at: Instant::now(),
                rate_events: 0,
                rate: 0.0,
            }),
        }
    }

    /// A connection established a session.
    pub fn session_started(&self, mode: SessionMode) {
        self.counters.active.add(1.0);
        self.counters.established[mode as usize].inc();
    }

    /// A connection released its session (parked or discarded).
    pub fn session_ended(&self) {
        self.counters.active.sub(1.0);
    }

    /// Absorbs one session's counter deltas; `newly_flagged` marks the
    /// first fold after that session's drift flag latched.
    fn fold(
        &self,
        delta_events: u64,
        delta_mispredicts: u64,
        delta_windows: u64,
        delta_bins: &[(u64, u64); PROFILE_BINS],
        newly_flagged: bool,
    ) {
        self.counters.events.add(delta_events);
        self.counters.mispredicts.add(delta_mispredicts);
        self.counters.windows.add(delta_windows);
        self.counters.drift_latches.add(newly_flagged as u64);
        let mut inner = self.inner.lock().unwrap();
        merge_bin_pairs(&mut inner.bins, delta_bins);
    }

    /// The fleet snapshot as a wire-ready [`FleetStats`]. `parked` is
    /// the session table's current parked count (the aggregator does not
    /// own the table). The event rate is re-measured when at least 50 ms
    /// passed since the previous measurement, smoothed across snapshots,
    /// and written through to the `paco_fleet_events_per_sec` gauge.
    pub fn snapshot(&self, parked: usize) -> FleetStats {
        let events = self.counters.events.value();
        let mut inner = self.inner.lock().unwrap();
        let elapsed = inner.rate_at.elapsed();
        if elapsed.as_millis() >= 50 {
            let fresh = (events - inner.rate_events) as f64 / elapsed.as_secs_f64();
            inner.rate = if inner.rate == 0.0 {
                fresh
            } else {
                0.5 * inner.rate + 0.5 * fresh
            };
            inner.rate_at = Instant::now();
            inner.rate_events = events;
            self.counters.events_per_sec.set(inner.rate);
        }
        FleetStats {
            sessions_active: self.counters.active.value() as u64,
            sessions_parked: parked as u64,
            sessions_seen: self.counters.established.iter().map(|c| c.value()).sum(),
            flagged_sessions: self.counters.drift_latches.value(),
            events,
            mispredicts: self.counters.mispredicts.value(),
            events_per_sec_bits: inner.rate.to_bits(),
            bins: inner.bins.to_vec(),
        }
    }
}

impl Default for FleetAggregator {
    fn default() -> Self {
        FleetAggregator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(prob: f64, mispredicted: bool) -> OnlineOutcome {
        OnlineOutcome {
            score: 1,
            prob_bits: Some(prob.to_bits()),
            predicted_taken: true,
            mispredicted,
        }
    }

    /// Feeds `windows` full windows drawn from a fixed (prob, mispredict)
    /// mix.
    fn feed(watch: &mut WatchState, windows: u64, mix: &[(f64, bool)]) {
        let total = windows * WATCH_WINDOW;
        for i in 0..total {
            let (p, m) = mix[i as usize % mix.len()];
            watch.observe(&outcome(p, m));
        }
    }

    fn reference_like(mix: &[(f64, bool)]) -> CalibrationProfile {
        let mut profile = CalibrationProfile::new();
        for i in 0..(4 * WATCH_WINDOW) {
            let (p, m) = mix[i as usize % mix.len()];
            profile.record(Some(p), m);
        }
        profile
    }

    const STEADY: &[(f64, bool)] = &[
        (0.97, false),
        (0.97, false),
        (0.92, false),
        (0.97, false),
        (0.80, true),
    ];
    const STORMY: &[(f64, bool)] = &[(0.55, true), (0.60, false), (0.55, true), (0.90, false)];

    #[test]
    fn on_profile_stream_stays_quiet() {
        let mut watch = WatchState::new(Some("steady".into()), Some(reference_like(STEADY)));
        feed(&mut watch, 12, STEADY);
        assert!(!watch.drift_flagged());
        let stats = watch.session_stats(1);
        assert_eq!(stats.windows, 12);
        assert_eq!(stats.events, 12 * WATCH_WINDOW);
        assert_eq!(stats.drift_window, 0);
        assert_eq!(stats.family.as_deref(), Some("steady"));
    }

    #[test]
    fn regime_switch_latches_the_flag_after_the_splice() {
        let mut watch = WatchState::new(Some("steady".into()), Some(reference_like(STEADY)));
        feed(&mut watch, 8, STEADY);
        assert!(!watch.drift_flagged(), "quiet before the splice");
        feed(&mut watch, 6, STORMY);
        assert!(watch.drift_flagged(), "stormy windows must latch the flag");
        let stats = watch.session_stats(1);
        assert!(
            stats.drift_window > 8,
            "flag must latch after the splice window, got {}",
            stats.drift_window
        );
        assert!(stats.drift_flagged);
    }

    #[test]
    fn undeclared_sessions_never_flag() {
        let mut watch = WatchState::new(None, None);
        feed(&mut watch, 4, STEADY);
        feed(&mut watch, 8, STORMY);
        assert!(!watch.drift_flagged());
        let stats = watch.session_stats(9);
        assert_eq!(stats.windows, 12);
        assert_eq!(stats.family, None);
        assert_eq!(stats.last_divergence_bits, 0.0f64.to_bits());
    }

    #[test]
    fn batched_and_per_event_observation_agree() {
        let outcomes: Vec<OnlineOutcome> = (0..(3 * WATCH_WINDOW + 17))
            .map(|i| {
                let p = (i % 100) as f64 / 100.0;
                OnlineOutcome {
                    score: i,
                    prob_bits: (i % 7 != 0).then(|| p.to_bits()),
                    predicted_taken: i % 2 == 0,
                    mispredicted: i % 5 == 0,
                }
            })
            .collect();
        let reference = reference_like(STEADY);

        let mut per_event = WatchState::new(Some("steady".into()), Some(reference));
        for o in &outcomes {
            per_event.observe(o);
        }

        let mut batched = WatchState::new(Some("steady".into()), Some(reference));
        for chunk in outcomes.chunks(512) {
            let mut batch = OutcomeBatch::new();
            for o in chunk {
                batch.push(o);
            }
            batched.observe_batch(&batch);
        }

        let mut a = Vec::new();
        crate::proto::encode_session_stats(&mut a, &per_event.session_stats(3));
        let mut b = Vec::new();
        crate::proto::encode_session_stats(&mut b, &batched.session_stats(3));
        assert_eq!(a, b, "lanes must produce byte-identical telemetry");
    }

    #[test]
    fn fold_into_accumulates_deltas_once() {
        let fleet = FleetAggregator::new();
        fleet.session_started(SessionMode::Fresh);
        let mut watch = WatchState::new(Some("steady".into()), Some(reference_like(STEADY)));
        feed(&mut watch, 2, STEADY);
        watch.fold_into(&fleet);
        watch.fold_into(&fleet); // no growth: must be a no-op
        let snap = fleet.snapshot(0);
        assert_eq!(snap.events, 2 * WATCH_WINDOW);
        assert_eq!(snap.sessions_active, 1);
        assert_eq!(snap.sessions_seen, 1);
        assert_eq!(snap.flagged_sessions, 0);
        assert_eq!(
            snap.bins.iter().map(|&(n, _)| n).sum::<u64>(),
            2 * WATCH_WINDOW
        );

        feed(&mut watch, 10, STORMY);
        watch.fold_into(&fleet);
        watch.fold_into(&fleet);
        fleet.session_ended();
        let snap = fleet.snapshot(4);
        assert_eq!(snap.events, 12 * WATCH_WINDOW);
        assert_eq!(
            snap.flagged_sessions, 1,
            "a latched flag folds exactly once"
        );
        assert_eq!(snap.sessions_active, 0);
        assert_eq!(snap.sessions_parked, 4);
    }

    #[test]
    fn declare_pins_only_once() {
        let mut watch = WatchState::default();
        assert_eq!(watch.family(), None);
        watch.declare("a".into(), reference_like(STEADY));
        watch.declare("b".into(), reference_like(STORMY));
        assert_eq!(watch.family(), Some("a"));
    }
}
