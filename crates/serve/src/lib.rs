//! `paco-serve`: the PaCo estimator as an online streaming service.
//!
//! Everything else in this workspace runs offline inside one simulator
//! process; this crate gives the paper's *online, per-event, fetch-time*
//! confidence estimation its natural deployment shape — a long-running
//! service under throughput pressure:
//!
//! * **`paco-served`** ([`server`]): a sharded event-loop TCP server —
//!   N pinned worker shards, each multiplexing its connections with a
//!   hand-rolled non-blocking reactor over `std::net` (no async
//!   runtime) — exposing every
//!   [`EstimatorKind`](paco_sim::EstimatorKind) as a session-oriented
//!   prediction service. Each session owns a private
//!   [`OnlinePipeline`](paco_sim::OnlinePipeline) and routes to its
//!   home shard by id hash; detached sessions park in a sharded table
//!   for bit-identical resume, clients can carry opaque state snapshots
//!   across reconnects (even across server restarts), and live sessions
//!   migrate between shards — by operator `MIGRATE` frame or the
//!   automatic load-threshold policy — with the same byte-identity
//!   guarantee.
//! * **`paco-load`** ([`load`]): a trace-replay load generator that
//!   hammers a server with the control-flow events of a recorded
//!   `.paco` trace from M concurrent sessions and reports throughput
//!   plus p50/p90/p99 batch round-trip latency via `paco_analysis`.
//! * **the protocol** ([`proto`]): length-prefixed CRC-32-guarded binary
//!   frames built from the same [`paco_types::wire`] codec as the trace
//!   format and the bench cache; event batches reuse the `paco-trace`
//!   record codec; config negotiation compares
//!   [`Canon`](paco_types::canon::Canon) hashes. `docs/PROTOCOL.md` has
//!   the full specification.
//!
//! The keystone correctness property, enforced by the integration suite
//! and `paco-load`'s built-in parity check: predictions streamed back
//! online are **byte-identical** to an offline
//! [`OnlinePipeline`](paco_sim::OnlinePipeline) replay of the same
//! trace.
//!
//! # Quick start
//!
//! ```sh
//! paco-trace record --bench gzip --out gzip.paco --instrs 200000
//! paco-served serve --addr 127.0.0.1:7421 &
//! paco-load run --addr 127.0.0.1:7421 --trace gzip.paco --threads 4
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod session;
pub mod watch;

pub use client::{offline_digest, Client, ClientError};
pub use load::{
    control_events, corpus_control_events, corpus_splice_events, run_churn, run_load, ChurnOptions,
    ChurnReport, LatencyMethod, LoadError, LoadOptions, LoadReport, SessionReport, SessionWatch,
};
pub use metrics::{FleetCounters, ServeMetrics, SessionMode};
pub use proto::{
    Digest, ErrorCode, FleetStats, FrameDecoder, FrameKind, MigrateAck, MigrateReq, ProtoError,
    SessionStats, Stats, PROTOCOL_VERSION,
};
pub use server::{FaultInjector, RunningServer, ServeOptions};
pub use session::{Session, SessionTable};
pub use watch::{FleetAggregator, WatchState, DRIFT_LIMIT, DRIFT_THRESHOLD, WATCH_WINDOW};
