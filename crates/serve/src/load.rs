//! `paco-load`: trace-replay load generation against a `paco-served`
//! instance.
//!
//! Replays the control-flow events of a recorded `.paco` trace across M
//! concurrent client threads (each with its own session), optionally
//! paced to a target aggregate event rate, and reports throughput plus
//! round-trip latency percentiles through `paco_analysis`. With the
//! parity check enabled (the default) every session's prediction digest
//! is compared against an offline [`OnlinePipeline`](paco_sim::OnlinePipeline)
//! replay of the same events — the keystone guarantee that the service
//! returns byte-identical predictions to the offline simulator.

use std::net::ToSocketAddrs;
use std::path::Path;
use std::sync::Barrier;
use std::thread;
use std::time::{Duration, Instant};

use paco_analysis::LatencySummary;
use paco_obs::HistogramSnapshot;
use paco_sim::OnlineConfig;
use paco_types::DynInstr;

use crate::client::{offline_digest, Client, ClientError};

/// Load-run options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Pipeline configuration for every session.
    pub config: OnlineConfig,
    /// Concurrent client threads (each gets its own session).
    pub threads: usize,
    /// Events per EVENTS frame.
    pub batch: usize,
    /// Cap on events each thread replays (`None` = the whole trace).
    pub events_per_thread: Option<u64>,
    /// Target aggregate event rate in events/second (`None` = as fast
    /// as the server answers).
    pub target_rate: Option<f64>,
    /// Compare each session's digest against the offline pipeline.
    pub parity_check: bool,
    /// Poll STATS mid-run and report each session's watch telemetry
    /// (drift flag, calibration error) in the final report.
    pub watch: bool,
    /// Workload family declared at HELLO time, pinning the server-side
    /// drift detector against that family's reference profile.
    pub family: Option<String>,
    /// Per-session cap on exact round-trip samples retained in memory.
    /// Up to this many RTTs per session, latency percentiles come from
    /// an exact sort (the small-run oracle); past it, sessions stop
    /// keeping individual samples and the run-wide summary switches to
    /// the streaming log-linear histograms (every batch is still
    /// counted — only the exact-sort path is dropped). `0` forces
    /// streaming summaries from the first batch.
    pub exact_latency_cap: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            config: OnlineConfig::default(),
            threads: 1,
            batch: 512,
            events_per_thread: None,
            target_rate: None,
            parity_check: true,
            watch: false,
            family: None,
            exact_latency_cap: 65_536,
        }
    }
}

/// How a [`LoadReport`]'s latency summary was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMethod {
    /// Exact sort over every retained sample (small runs).
    Exact,
    /// Merged streaming histograms; percentiles are bucket-interpolated
    /// (error bounded by one log-linear bucket, ≤ 12.5% relative).
    Streaming,
}

impl LatencyMethod {
    /// The method's stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            LatencyMethod::Exact => "exact",
            LatencyMethod::Streaming => "streaming",
        }
    }
}

/// One session's watch telemetry, as read from its final STATS frame.
#[derive(Debug, Clone)]
pub struct SessionWatch {
    /// The declared family, if any.
    pub family: Option<String>,
    /// Completed rolling windows.
    pub windows: u64,
    /// Lifetime mispredict rate.
    pub mispredict_rate: f64,
    /// Occurrence-weighted calibration RMS error of the session's
    /// lifetime reliability bins.
    pub rms_error: f64,
    /// The most recent window's divergence from the reference profile.
    pub last_divergence: f64,
    /// The CUSUM drift accumulator.
    pub cusum: f64,
    /// Whether the drift flag latched.
    pub drift_flagged: bool,
    /// The 1-based window at which the flag latched (0 = never).
    pub drift_window: u64,
}

impl SessionWatch {
    fn from_stats(s: &crate::proto::SessionStats) -> Self {
        let rms_error = paco_analysis::ReliabilityDiagram::from_bins(&s.bins).rms_error();
        SessionWatch {
            family: s.family.clone(),
            windows: s.windows,
            mispredict_rate: if s.events == 0 {
                0.0
            } else {
                s.mispredicts as f64 / s.events as f64
            },
            rms_error,
            last_divergence: f64::from_bits(s.last_divergence_bits),
            cusum: f64::from_bits(s.cusum_bits),
            drift_flagged: s.drift_flagged,
            drift_window: s.drift_window,
        }
    }
}

/// Per-session results.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The server-assigned session id.
    pub session_id: u64,
    /// Events streamed.
    pub events: u64,
    /// EVENTS/PREDICTIONS round trips performed.
    pub batches: u64,
    /// FNV-1a digest of every PREDICTIONS payload, in order.
    pub digest: u64,
    /// Wall-clock duration of this session's streaming loop.
    pub elapsed: Duration,
    /// Exact round-trip time samples, microseconds — capped at
    /// [`LoadOptions::exact_latency_cap`]; big runs carry the overflow
    /// only in [`latency_hist`](Self::latency_hist).
    pub latencies_us: Vec<f64>,
    /// Streaming histogram of every batch round trip, nanoseconds
    /// (never capped; merged across sessions for big-run summaries).
    pub latency_hist: HistogramSnapshot,
    /// Watch telemetry from the session's final STATS poll (present iff
    /// [`LoadOptions::watch`]).
    pub watch: Option<SessionWatch>,
}

impl SessionReport {
    /// This session's own streaming rate, events/second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Aggregate results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total events streamed across all sessions.
    pub events: u64,
    /// Wall-clock duration of the streaming phase.
    pub elapsed: Duration,
    /// Aggregate throughput, events/second.
    pub events_per_sec: f64,
    /// Batch round-trip latency summary (microseconds), pooled across
    /// sessions.
    pub latency_us: LatencySummary,
    /// How [`latency_us`](Self::latency_us) was computed: exact sort
    /// while every session stayed under the sample cap, streaming
    /// histogram quantiles otherwise.
    pub latency_method: LatencyMethod,
    /// Per-session details.
    pub sessions: Vec<SessionReport>,
    /// Parity verdict: `Some(true)` when every session's digest matched
    /// the offline pipeline, `None` when the check was disabled.
    pub parity_ok: Option<bool>,
    /// Sessions whose drift flag latched (0 when watch was off).
    pub flagged_sessions: u64,
}

/// A load-run failure.
#[derive(Debug)]
pub enum LoadError {
    /// The trace could not be read.
    Trace(paco_trace::TraceError),
    /// A client failed.
    Client(ClientError),
    /// The trace contains no control-flow events.
    EmptyTrace,
    /// The options selected zero events, so there is nothing to measure.
    NoEvents,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Trace(e) => write!(f, "trace: {e}"),
            LoadError::Client(e) => write!(f, "client: {e}"),
            LoadError::EmptyTrace => write!(f, "trace contains no control-flow events"),
            LoadError::NoEvents => write!(f, "no events selected (is --events 0?)"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<paco_trace::TraceError> for LoadError {
    fn from(e: paco_trace::TraceError) -> Self {
        LoadError::Trace(e)
    }
}

impl From<ClientError> for LoadError {
    fn from(e: ClientError) -> Self {
        LoadError::Client(e)
    }
}

/// Loads the branch events (control-flow instructions) of a trace.
pub fn control_events(trace: impl AsRef<Path>) -> Result<Vec<DynInstr>, LoadError> {
    let mut reader = paco_trace::TraceReader::open(trace)?;
    let mut events = Vec::new();
    for record in reader.records() {
        let instr = DynInstr::from(record?);
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    if events.is_empty() {
        return Err(LoadError::EmptyTrace);
    }
    Ok(events)
}

/// Synthesizes the branch events of a corpus workload in memory: builds
/// the family with `seed`, streams `instrs` goodpath instructions and
/// keeps the control-flow ones — no trace file needed. The stream is a
/// pure function of `(family, seed, instrs)`, so two load runs against
/// the same corpus arguments replay identical events (and their parity
/// digests are comparable run to run).
pub fn corpus_control_events(
    family: &paco_corpus::CorpusFamily,
    seed: u64,
    instrs: u64,
) -> Result<Vec<DynInstr>, LoadError> {
    use paco_workloads::Workload;
    let mut workload = family.build(seed);
    let mut events = Vec::new();
    for _ in 0..instrs {
        let instr = workload.next_instr();
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    if events.is_empty() {
        return Err(LoadError::EmptyTrace);
    }
    Ok(events)
}

/// Synthesizes a mid-stream regime switch: the control events of
/// `base` followed by the control events of `splice`, returning the
/// spliced stream and the index of its first post-splice event. The
/// acceptance demo replays `biased_bimodal` splicing into
/// `mispredict_storm` and requires the drift detector to fire past the
/// splice point (and stay quiet on the unspliced control run). Like
/// [`corpus_control_events`], the stream is a pure function of its
/// arguments, so parity digests remain comparable run to run.
pub fn corpus_splice_events(
    base: &paco_corpus::CorpusFamily,
    base_seed: u64,
    base_instrs: u64,
    splice: &paco_corpus::CorpusFamily,
    splice_seed: u64,
    splice_instrs: u64,
) -> Result<(Vec<DynInstr>, usize), LoadError> {
    let mut events = corpus_control_events(base, base_seed, base_instrs)?;
    let splice_at = events.len();
    events.extend(corpus_control_events(splice, splice_seed, splice_instrs)?);
    Ok((events, splice_at))
}

/// Runs one load session: streams `events` in batches, measuring each
/// round trip.
fn run_session(
    addr: &std::net::SocketAddr,
    options: &LoadOptions,
    events: &[DynInstr],
    started: Instant,
) -> Result<SessionReport, LoadError> {
    let take = options
        .events_per_thread
        .map(|n| (n as usize).min(events.len()))
        .unwrap_or(events.len());
    let events = &events[..take];
    let per_thread_rate = options
        .target_rate
        .map(|r| (r / options.threads.max(1) as f64).max(1.0));

    let mut client = match &options.family {
        Some(family) if options.watch => Client::connect_declaring(addr, &options.config, family)?,
        _ => Client::connect(addr, &options.config)?,
    };
    let session_started = Instant::now();
    let expected_batches = events.len() / options.batch.max(1) + 1;
    let mut latencies = Vec::with_capacity(expected_batches.min(options.exact_latency_cap));
    let mut latency_hist = HistogramSnapshot::new();
    let mut sent = 0u64;
    let mut batches = 0u64;
    for chunk in events.chunks(options.batch.max(1)) {
        if let Some(rate) = per_thread_rate {
            // Pace against the shared epoch: sleep until this batch's
            // scheduled send time.
            let due = started + Duration::from_secs_f64(sent as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
        }
        let t0 = Instant::now();
        let outcomes = client.send_events(chunk)?;
        let rtt = t0.elapsed();
        // The histogram sees every batch (fixed memory, no allocation);
        // exact samples stop accumulating at the cap.
        latency_hist.record(rtt.as_nanos() as u64);
        if latencies.len() < options.exact_latency_cap {
            latencies.push(rtt.as_secs_f64() * 1e6);
        }
        debug_assert_eq!(outcomes.len(), chunk.len(), "control-only batches");
        sent += chunk.len() as u64;
        batches += 1;
        // Watch mode polls STATS mid-stream (outside the timed RTT);
        // stats polling never touches the prediction digest, so the
        // parity check is unaffected.
        if options.watch && batches % 32 == 0 {
            client.stats()?;
        }
    }
    let elapsed = session_started.elapsed();
    let watch = if options.watch {
        Some(SessionWatch::from_stats(&client.stats()?.session))
    } else {
        None
    };
    let report = SessionReport {
        session_id: client.session_id(),
        events: sent,
        batches,
        digest: client.digest(),
        elapsed,
        latencies_us: latencies,
        latency_hist,
        watch,
    };
    client.bye()?;
    Ok(report)
}

/// Runs the load harness: `options.threads` concurrent sessions all
/// replaying `events`.
pub fn run_load(
    addr: impl ToSocketAddrs,
    events: &[DynInstr],
    options: &LoadOptions,
) -> Result<LoadReport, LoadError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| LoadError::Client(ClientError::from(e)))?
        .next()
        .ok_or_else(|| {
            LoadError::Client(ClientError::Unexpected(
                "address resolves to nothing".into(),
            ))
        })?;
    if events.is_empty() || options.events_per_thread == Some(0) {
        return Err(LoadError::NoEvents);
    }

    let started = Instant::now();
    let sessions: Vec<Result<SessionReport, LoadError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..options.threads.max(1))
            .map(|_| scope.spawn(|| run_session(&addr, options, events, started)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut reports = Vec::with_capacity(sessions.len());
    for session in sessions {
        reports.push(session?);
    }

    let parity_ok = if options.parity_check {
        let take = options
            .events_per_thread
            .map(|n| (n as usize).min(events.len()))
            .unwrap_or(events.len());
        let expect = offline_digest(&options.config, &events[..take], options.batch);
        Some(reports.iter().all(|r| r.digest == expect))
    } else {
        None
    };

    let total_events: u64 = reports.iter().map(|r| r.events).sum();
    // Exact sort is the small-run oracle; once any session overflowed
    // its sample cap the exact pool is incomplete, so the summary comes
    // from the merged streaming histograms instead (which saw every
    // batch).
    let truncated = reports
        .iter()
        .any(|r| (r.latencies_us.len() as u64) < r.batches);
    let (latency_us, latency_method) = if truncated {
        let mut pooled = HistogramSnapshot::new();
        for r in &reports {
            pooled.merge(&r.latency_hist);
        }
        (summary_from_hist(&pooled), LatencyMethod::Streaming)
    } else {
        let all_latencies: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.latencies_us.iter().copied())
            .collect();
        (
            LatencySummary::from_samples(&all_latencies),
            LatencyMethod::Exact,
        )
    };
    let flagged_sessions = reports
        .iter()
        .filter(|r| r.watch.as_ref().is_some_and(|w| w.drift_flagged))
        .count() as u64;
    Ok(LoadReport {
        events: total_events,
        elapsed,
        events_per_sec: total_events as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_us,
        latency_method,
        sessions: reports,
        parity_ok,
        flagged_sessions,
    })
}

/// Churn-storm options.
///
/// A churn run is the serving layer's stress harness: `sessions`
/// seeded sessions each live a two-phase life — connect, stream part of
/// their event slice, drop *without* BYE (the session parks), then
/// resume by id, optionally demand a live migration, stream the rest
/// and close cleanly. Every per-session decision (event slice, cut
/// point, migration) is a pure function of `(seed, session index)`, so
/// a storm replays identically run to run and every session's final
/// digest has an offline oracle.
#[derive(Debug, Clone)]
pub struct ChurnOptions {
    /// Pipeline configuration for every session.
    pub config: OnlineConfig,
    /// Total sessions in the storm.
    pub sessions: usize,
    /// Concurrent driver threads (sessions are dealt round-robin).
    pub threads: usize,
    /// Events per EVENTS frame. Cut points land on batch boundaries, so
    /// [`offline_digest`] over the session's whole slice with this same
    /// batch size is the parity oracle.
    pub batch: usize,
    /// Events each session streams across both phases.
    pub events_per_session: usize,
    /// Storm seed: same seed, same storm.
    pub seed: u64,
    /// Every `migrate_every`-th session (0 = none) issues an operator
    /// MIGRATE after resuming, letting the server pick the target.
    pub migrate_every: usize,
    /// Attempts to claim a parked session before giving up. A resume
    /// can race the server still parking the dropped connection, so the
    /// driver retries `UNKNOWN_SESSION` refusals with a short sleep.
    pub resume_retries: u32,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            config: OnlineConfig::default(),
            sessions: 256,
            threads: 8,
            batch: 32,
            events_per_session: 96,
            seed: 0x5eed_c4a2,
            migrate_every: 7,
            resume_retries: 500,
        }
    }
}

/// Aggregate results of one churn storm.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Sessions that completed both phases.
    pub sessions: usize,
    /// Total events streamed across all sessions and phases.
    pub events: u64,
    /// Wall-clock duration of the whole storm.
    pub elapsed: Duration,
    /// Aggregate throughput, events/second.
    pub events_per_sec: f64,
    /// Sessions parked server-side at the phase barrier (what the storm
    /// measured as peak concurrent churned sessions).
    pub peak_parked: usize,
    /// Operator MIGRATE acknowledgements naming an actual shard move
    /// (`from != to`).
    pub migrated: usize,
    /// MIGRATE acknowledgements where the server answered without
    /// moving (already on the target, or a single-shard server).
    pub migrate_noops: usize,
    /// Session ids whose end-to-end digest diverged from the offline
    /// oracle — **must** be empty; `paco-load churn` exits non-zero
    /// otherwise.
    pub parity_failures: Vec<u64>,
}

impl ChurnReport {
    /// `true` iff every session's digest matched its offline oracle.
    pub fn parity_ok(&self) -> bool {
        self.parity_failures.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sessions             {}\nevents               {}\nelapsed              {:.3} s\nthroughput           {:.0} events/s\n",
            self.sessions,
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec
        ));
        out.push_str(&format!(
            "peak parked          {}\nmigrated             {} ({} no-op acks)\n",
            self.peak_parked, self.migrated, self.migrate_noops
        ));
        if self.parity_ok() {
            out.push_str("parity               ok (every session == offline, byte-identical)\n");
        } else {
            out.push_str(&format!(
                "parity               FAILED ({} sessions: {:?})\n",
                self.parity_failures.len(),
                &self.parity_failures[..self.parity_failures.len().min(16)]
            ));
        }
        out
    }

    /// Renders the report as deterministic-key-order JSON.
    pub fn render_json(&self) -> String {
        let ids: Vec<String> = self.parity_failures.iter().map(u64::to_string).collect();
        format!(
            "{{\"sessions\":{},\"events\":{},\"elapsed_s\":{:.6},\"events_per_sec\":{:.1},\"peak_parked\":{},\"migrated\":{},\"migrate_noops\":{},\"parity\":{},\"parity_failures\":[{}]}}",
            self.sessions,
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec,
            self.peak_parked,
            self.migrated,
            self.migrate_noops,
            self.parity_ok(),
            ids.join(",")
        )
    }
}

/// A splitmix64 step — the per-session decision stream.
fn churn_rng(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One session's event slice: a deterministic rotation of the shared
/// pool (pure function of `(seed, index)`).
fn churn_slice(pool: &[DynInstr], options: &ChurnOptions, index: usize) -> (Vec<DynInstr>, usize) {
    let mut rng = options.seed ^ (index as u64).wrapping_mul(0xd6e8_feb8_6659_fd93);
    let offset = (churn_rng(&mut rng) % pool.len() as u64) as usize;
    let events: Vec<DynInstr> = pool
        .iter()
        .cycle()
        .skip(offset)
        .take(options.events_per_session)
        .cloned()
        .collect();
    let batches = events.len().div_ceil(options.batch.max(1));
    // Cut strictly inside the stream when it spans 2+ batches: both
    // phases stream at least one frame, and every phase-A frame is a
    // full batch (so offline chunking lines up).
    let cut = if batches < 2 {
        1
    } else {
        1 + (churn_rng(&mut rng) % (batches as u64 - 1)) as usize
    };
    (events, cut)
}

/// What phase A (connect → stream → drop) leaves for phase B.
struct ParkedHalf {
    index: usize,
    session_id: u64,
    digest: u64,
    events: Vec<DynInstr>,
    cut: usize,
    sent: u64,
}

/// Runs a churn storm against `addr`: every session streams part of its
/// slice, drops without BYE, resumes by id (retrying the park race),
/// optionally migrates live, streams the rest and compares its
/// continued digest against [`offline_digest`] over the whole slice.
///
/// All sessions finish phase A before any starts phase B — the barrier
/// is the point of the storm: it holds every churned session parked
/// concurrently (reported as [`ChurnReport::peak_parked`]).
pub fn run_churn(
    addr: impl ToSocketAddrs,
    pool: &[DynInstr],
    options: &ChurnOptions,
) -> Result<ChurnReport, LoadError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| LoadError::Client(ClientError::from(e)))?
        .next()
        .ok_or_else(|| {
            LoadError::Client(ClientError::Unexpected(
                "address resolves to nothing".into(),
            ))
        })?;
    if pool.is_empty() || options.sessions == 0 || options.events_per_session == 0 {
        return Err(LoadError::NoEvents);
    }

    let threads = options.threads.max(1);
    let barrier = Barrier::new(threads);
    let started = Instant::now();
    let peak_parked = std::sync::atomic::AtomicUsize::new(0);

    struct WorkerOutcome {
        events: u64,
        migrated: usize,
        migrate_noops: usize,
        parity_failures: Vec<u64>,
        completed: usize,
    }

    let outcomes: Vec<Result<WorkerOutcome, LoadError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let barrier = &barrier;
                let peak_parked = &peak_parked;
                scope.spawn(move || -> Result<WorkerOutcome, LoadError> {
                    // Phase A: park this worker's share of the storm.
                    let mut parked = Vec::new();
                    for index in (worker..options.sessions).step_by(threads) {
                        let (events, cut) = churn_slice(pool, options, index);
                        let mut client = Client::connect(addr, &options.config)?;
                        let mut sent = 0u64;
                        for chunk in events.chunks(options.batch.max(1)).take(cut) {
                            client.send_events(chunk)?;
                            sent += chunk.len() as u64;
                        }
                        parked.push(ParkedHalf {
                            index,
                            session_id: client.session_id(),
                            digest: client.digest(),
                            events,
                            cut,
                            sent,
                        });
                        drop(client); // no BYE: the server parks the session
                    }
                    if barrier.wait().is_leader() {
                        // Every session in the storm is now dropped (the
                        // server may still be sweeping the last EOFs);
                        // sample the parked gauge as the storm's peak.
                        peak_parked.store(
                            probe_parked(&addr, &options.config, options.sessions),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    }
                    barrier.wait();

                    // Phase B: resume, optionally migrate, finish, verify.
                    let mut outcome = WorkerOutcome {
                        events: 0,
                        migrated: 0,
                        migrate_noops: 0,
                        parity_failures: Vec::new(),
                        completed: 0,
                    };
                    for half in parked {
                        let mut client = resume_with_retry(&addr, options, half.session_id)?;
                        client.seed_digest(half.digest);
                        let mut sent = half.sent;
                        if options.migrate_every != 0 && half.index % options.migrate_every == 0 {
                            let ack = client.migrate(None).map_err(LoadError::Client)?;
                            if ack.from_shard == ack.to_shard {
                                outcome.migrate_noops += 1;
                            } else {
                                outcome.migrated += 1;
                            }
                        }
                        for chunk in events_rest(&half.events, options.batch, half.cut) {
                            client.send_events(chunk)?;
                            sent += chunk.len() as u64;
                        }
                        let expect = offline_digest(&options.config, &half.events, options.batch);
                        if client.digest() != expect {
                            outcome.parity_failures.push(half.session_id);
                        }
                        client.bye()?;
                        outcome.events += sent;
                        outcome.completed += 1;
                    }
                    Ok(outcome)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("churn thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = ChurnReport {
        sessions: 0,
        events: 0,
        elapsed,
        events_per_sec: 0.0,
        peak_parked: peak_parked.load(std::sync::atomic::Ordering::Relaxed),
        migrated: 0,
        migrate_noops: 0,
        parity_failures: Vec::new(),
    };
    for outcome in outcomes {
        let outcome = outcome?;
        report.sessions += outcome.completed;
        report.events += outcome.events;
        report.migrated += outcome.migrated;
        report.migrate_noops += outcome.migrate_noops;
        report.parity_failures.extend(outcome.parity_failures);
    }
    report.parity_failures.sort_unstable();
    report.events_per_sec = report.events as f64 / elapsed.as_secs_f64().max(1e-9);
    Ok(report)
}

/// The phase-B chunks of a cut stream: everything past the first `cut`
/// full batches, chunked exactly as the offline oracle chunks them.
fn events_rest(events: &[DynInstr], batch: usize, cut: usize) -> impl Iterator<Item = &[DynInstr]> {
    events.chunks(batch.max(1)).skip(cut)
}

/// Polls the server's parked-session count (via a throwaway session's
/// STATS frame) until it reaches `want` or stops growing — phase A's
/// EOFs race the probe, so it watches for the table to settle.
fn probe_parked(addr: &std::net::SocketAddr, config: &OnlineConfig, want: usize) -> usize {
    let Ok(mut client) = Client::connect(addr, config) else {
        return 0;
    };
    let mut best = 0usize;
    let mut stable = 0u32;
    for _ in 0..500 {
        let Ok(stats) = client.stats() else { break };
        let parked = stats.fleet.sessions_parked as usize;
        if parked >= want {
            best = parked;
            break;
        }
        if parked > best {
            best = parked;
            stable = 0;
        } else {
            stable += 1;
            if stable > 50 {
                break;
            }
        }
        thread::sleep(Duration::from_millis(2));
    }
    let _ = client.bye();
    best
}

/// Resumes a parked session, retrying the park race: the server may
/// still be sweeping the dropped connection's EOF when the resume
/// arrives, answering `UNKNOWN_SESSION` until the park lands.
fn resume_with_retry(
    addr: &std::net::SocketAddr,
    options: &ChurnOptions,
    session_id: u64,
) -> Result<Client, LoadError> {
    let mut attempt = 0u32;
    loop {
        match Client::resume_by_id(addr, &options.config, session_id) {
            Ok(client) => return Ok(client),
            Err(ClientError::Server(crate::proto::ErrorCode::UnknownSession, _))
                if attempt < options.resume_retries =>
            {
                attempt += 1;
                thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(LoadError::Client(e)),
        }
    }
}

/// A [`LatencySummary`] (microseconds) from a pooled nanosecond RTT
/// histogram: count, exact mean and max, bucket-interpolated
/// percentiles. The quantile-error-bound property test pins these to
/// within one bucket of the exact-sort answer.
fn summary_from_hist(hist: &HistogramSnapshot) -> LatencySummary {
    LatencySummary {
        count: hist.count() as usize,
        mean: hist.mean() / 1e3,
        p50: hist.quantile(0.50) / 1e3,
        p90: hist.quantile(0.90) / 1e3,
        p99: hist.quantile(0.99) / 1e3,
        max: hist.max() as f64 / 1e3,
    }
}

impl LoadReport {
    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events               {}\nelapsed              {:.3} s\nthroughput           {:.0} events/s\n",
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec
        ));
        out.push_str(&format!(
            "latency (batch RTT)  p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({})\n",
            self.latency_us.p50,
            self.latency_us.p90,
            self.latency_us.p99,
            self.latency_us.max,
            self.latency_method.as_str()
        ));
        for s in &self.sessions {
            out.push_str(&format!(
                "session {:<6} events {:<8} batches {:<6} ev/s {:<9.0} digest {:016x}\n",
                s.session_id,
                s.events,
                s.batches,
                s.events_per_sec(),
                s.digest
            ));
            if let Some(w) = &s.watch {
                let drift = if w.drift_flagged {
                    format!("drift @w{}", w.drift_window)
                } else {
                    "drift -".to_string()
                };
                out.push_str(&format!(
                    "  watch {:<6} family {:<16} windows {:<4} misp {:.4} rms {:.4} div {:.3} cusum {:.3} {}\n",
                    s.session_id,
                    w.family.as_deref().unwrap_or("-"),
                    w.windows,
                    w.mispredict_rate,
                    w.rms_error,
                    w.last_divergence,
                    w.cusum,
                    drift
                ));
            }
        }
        match self.parity_ok {
            Some(true) => {
                out.push_str("parity               ok (online == offline, byte-identical)\n")
            }
            Some(false) => out.push_str("parity               FAILED\n"),
            None => out.push_str("parity               skipped\n"),
        }
        out.push_str(&format!(
            "summary              sessions {}  flagged {}\n",
            self.sessions.len(),
            self.flagged_sessions
        ));
        out
    }

    /// Renders the report as deterministic-key-order JSON (values are
    /// measurements, so numbers vary run to run).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"events\":{},\"elapsed_s\":{:.6},\"events_per_sec\":{:.1},",
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec
        ));
        out.push_str(&format!(
            "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"max\":{:.1},\"method\":\"{}\"}},",
            self.latency_us.count,
            self.latency_us.mean,
            self.latency_us.p50,
            self.latency_us.p90,
            self.latency_us.p99,
            self.latency_us.max,
            self.latency_method.as_str()
        ));
        out.push_str("\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"events\":{},\"batches\":{},\"events_per_sec\":{:.1},\"digest\":\"{:016x}\"",
                s.session_id,
                s.events,
                s.batches,
                s.events_per_sec(),
                s.digest
            ));
            if let Some(w) = &s.watch {
                out.push_str(&format!(
                    ",\"watch\":{{\"family\":{},\"windows\":{},\"mispredict_rate\":{:.6},\"rms_error\":{:.6},\"last_divergence\":{:.6},\"cusum\":{:.6},\"drift_flagged\":{},\"drift_window\":{}}}",
                    match &w.family {
                        Some(f) => format!("\"{f}\""),
                        None => "null".to_string(),
                    },
                    w.windows,
                    w.mispredict_rate,
                    w.rms_error,
                    w.last_divergence,
                    w.cusum,
                    w.drift_flagged,
                    w.drift_window
                ));
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"flagged_sessions\":{},\"parity\":{}",
            self.flagged_sessions,
            match self.parity_ok {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            }
        ));
        out.push('}');
        out
    }
}
