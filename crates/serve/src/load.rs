//! `paco-load`: trace-replay load generation against a `paco-served`
//! instance.
//!
//! Replays the control-flow events of a recorded `.paco` trace across M
//! concurrent client threads (each with its own session), optionally
//! paced to a target aggregate event rate, and reports throughput plus
//! round-trip latency percentiles through `paco_analysis`. With the
//! parity check enabled (the default) every session's prediction digest
//! is compared against an offline [`OnlinePipeline`](paco_sim::OnlinePipeline)
//! replay of the same events — the keystone guarantee that the service
//! returns byte-identical predictions to the offline simulator.

use std::net::ToSocketAddrs;
use std::path::Path;
use std::thread;
use std::time::{Duration, Instant};

use paco_analysis::LatencySummary;
use paco_obs::HistogramSnapshot;
use paco_sim::OnlineConfig;
use paco_types::DynInstr;

use crate::client::{offline_digest, Client, ClientError};

/// Load-run options.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Pipeline configuration for every session.
    pub config: OnlineConfig,
    /// Concurrent client threads (each gets its own session).
    pub threads: usize,
    /// Events per EVENTS frame.
    pub batch: usize,
    /// Cap on events each thread replays (`None` = the whole trace).
    pub events_per_thread: Option<u64>,
    /// Target aggregate event rate in events/second (`None` = as fast
    /// as the server answers).
    pub target_rate: Option<f64>,
    /// Compare each session's digest against the offline pipeline.
    pub parity_check: bool,
    /// Poll STATS mid-run and report each session's watch telemetry
    /// (drift flag, calibration error) in the final report.
    pub watch: bool,
    /// Workload family declared at HELLO time, pinning the server-side
    /// drift detector against that family's reference profile.
    pub family: Option<String>,
    /// Per-session cap on exact round-trip samples retained in memory.
    /// Up to this many RTTs per session, latency percentiles come from
    /// an exact sort (the small-run oracle); past it, sessions stop
    /// keeping individual samples and the run-wide summary switches to
    /// the streaming log-linear histograms (every batch is still
    /// counted — only the exact-sort path is dropped). `0` forces
    /// streaming summaries from the first batch.
    pub exact_latency_cap: usize,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            config: OnlineConfig::default(),
            threads: 1,
            batch: 512,
            events_per_thread: None,
            target_rate: None,
            parity_check: true,
            watch: false,
            family: None,
            exact_latency_cap: 65_536,
        }
    }
}

/// How a [`LoadReport`]'s latency summary was computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyMethod {
    /// Exact sort over every retained sample (small runs).
    Exact,
    /// Merged streaming histograms; percentiles are bucket-interpolated
    /// (error bounded by one log-linear bucket, ≤ 12.5% relative).
    Streaming,
}

impl LatencyMethod {
    /// The method's stable report name.
    pub fn as_str(self) -> &'static str {
        match self {
            LatencyMethod::Exact => "exact",
            LatencyMethod::Streaming => "streaming",
        }
    }
}

/// One session's watch telemetry, as read from its final STATS frame.
#[derive(Debug, Clone)]
pub struct SessionWatch {
    /// The declared family, if any.
    pub family: Option<String>,
    /// Completed rolling windows.
    pub windows: u64,
    /// Lifetime mispredict rate.
    pub mispredict_rate: f64,
    /// Occurrence-weighted calibration RMS error of the session's
    /// lifetime reliability bins.
    pub rms_error: f64,
    /// The most recent window's divergence from the reference profile.
    pub last_divergence: f64,
    /// The CUSUM drift accumulator.
    pub cusum: f64,
    /// Whether the drift flag latched.
    pub drift_flagged: bool,
    /// The 1-based window at which the flag latched (0 = never).
    pub drift_window: u64,
}

impl SessionWatch {
    fn from_stats(s: &crate::proto::SessionStats) -> Self {
        let rms_error = paco_analysis::ReliabilityDiagram::from_bins(&s.bins).rms_error();
        SessionWatch {
            family: s.family.clone(),
            windows: s.windows,
            mispredict_rate: if s.events == 0 {
                0.0
            } else {
                s.mispredicts as f64 / s.events as f64
            },
            rms_error,
            last_divergence: f64::from_bits(s.last_divergence_bits),
            cusum: f64::from_bits(s.cusum_bits),
            drift_flagged: s.drift_flagged,
            drift_window: s.drift_window,
        }
    }
}

/// Per-session results.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The server-assigned session id.
    pub session_id: u64,
    /// Events streamed.
    pub events: u64,
    /// EVENTS/PREDICTIONS round trips performed.
    pub batches: u64,
    /// FNV-1a digest of every PREDICTIONS payload, in order.
    pub digest: u64,
    /// Wall-clock duration of this session's streaming loop.
    pub elapsed: Duration,
    /// Exact round-trip time samples, microseconds — capped at
    /// [`LoadOptions::exact_latency_cap`]; big runs carry the overflow
    /// only in [`latency_hist`](Self::latency_hist).
    pub latencies_us: Vec<f64>,
    /// Streaming histogram of every batch round trip, nanoseconds
    /// (never capped; merged across sessions for big-run summaries).
    pub latency_hist: HistogramSnapshot,
    /// Watch telemetry from the session's final STATS poll (present iff
    /// [`LoadOptions::watch`]).
    pub watch: Option<SessionWatch>,
}

impl SessionReport {
    /// This session's own streaming rate, events/second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Aggregate results of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Total events streamed across all sessions.
    pub events: u64,
    /// Wall-clock duration of the streaming phase.
    pub elapsed: Duration,
    /// Aggregate throughput, events/second.
    pub events_per_sec: f64,
    /// Batch round-trip latency summary (microseconds), pooled across
    /// sessions.
    pub latency_us: LatencySummary,
    /// How [`latency_us`](Self::latency_us) was computed: exact sort
    /// while every session stayed under the sample cap, streaming
    /// histogram quantiles otherwise.
    pub latency_method: LatencyMethod,
    /// Per-session details.
    pub sessions: Vec<SessionReport>,
    /// Parity verdict: `Some(true)` when every session's digest matched
    /// the offline pipeline, `None` when the check was disabled.
    pub parity_ok: Option<bool>,
    /// Sessions whose drift flag latched (0 when watch was off).
    pub flagged_sessions: u64,
}

/// A load-run failure.
#[derive(Debug)]
pub enum LoadError {
    /// The trace could not be read.
    Trace(paco_trace::TraceError),
    /// A client failed.
    Client(ClientError),
    /// The trace contains no control-flow events.
    EmptyTrace,
    /// The options selected zero events, so there is nothing to measure.
    NoEvents,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Trace(e) => write!(f, "trace: {e}"),
            LoadError::Client(e) => write!(f, "client: {e}"),
            LoadError::EmptyTrace => write!(f, "trace contains no control-flow events"),
            LoadError::NoEvents => write!(f, "no events selected (is --events 0?)"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<paco_trace::TraceError> for LoadError {
    fn from(e: paco_trace::TraceError) -> Self {
        LoadError::Trace(e)
    }
}

impl From<ClientError> for LoadError {
    fn from(e: ClientError) -> Self {
        LoadError::Client(e)
    }
}

/// Loads the branch events (control-flow instructions) of a trace.
pub fn control_events(trace: impl AsRef<Path>) -> Result<Vec<DynInstr>, LoadError> {
    let mut reader = paco_trace::TraceReader::open(trace)?;
    let mut events = Vec::new();
    for record in reader.records() {
        let instr = DynInstr::from(record?);
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    if events.is_empty() {
        return Err(LoadError::EmptyTrace);
    }
    Ok(events)
}

/// Synthesizes the branch events of a corpus workload in memory: builds
/// the family with `seed`, streams `instrs` goodpath instructions and
/// keeps the control-flow ones — no trace file needed. The stream is a
/// pure function of `(family, seed, instrs)`, so two load runs against
/// the same corpus arguments replay identical events (and their parity
/// digests are comparable run to run).
pub fn corpus_control_events(
    family: &paco_corpus::CorpusFamily,
    seed: u64,
    instrs: u64,
) -> Result<Vec<DynInstr>, LoadError> {
    use paco_workloads::Workload;
    let mut workload = family.build(seed);
    let mut events = Vec::new();
    for _ in 0..instrs {
        let instr = workload.next_instr();
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    if events.is_empty() {
        return Err(LoadError::EmptyTrace);
    }
    Ok(events)
}

/// Synthesizes a mid-stream regime switch: the control events of
/// `base` followed by the control events of `splice`, returning the
/// spliced stream and the index of its first post-splice event. The
/// acceptance demo replays `biased_bimodal` splicing into
/// `mispredict_storm` and requires the drift detector to fire past the
/// splice point (and stay quiet on the unspliced control run). Like
/// [`corpus_control_events`], the stream is a pure function of its
/// arguments, so parity digests remain comparable run to run.
pub fn corpus_splice_events(
    base: &paco_corpus::CorpusFamily,
    base_seed: u64,
    base_instrs: u64,
    splice: &paco_corpus::CorpusFamily,
    splice_seed: u64,
    splice_instrs: u64,
) -> Result<(Vec<DynInstr>, usize), LoadError> {
    let mut events = corpus_control_events(base, base_seed, base_instrs)?;
    let splice_at = events.len();
    events.extend(corpus_control_events(splice, splice_seed, splice_instrs)?);
    Ok((events, splice_at))
}

/// Runs one load session: streams `events` in batches, measuring each
/// round trip.
fn run_session(
    addr: &std::net::SocketAddr,
    options: &LoadOptions,
    events: &[DynInstr],
    started: Instant,
) -> Result<SessionReport, LoadError> {
    let take = options
        .events_per_thread
        .map(|n| (n as usize).min(events.len()))
        .unwrap_or(events.len());
    let events = &events[..take];
    let per_thread_rate = options
        .target_rate
        .map(|r| (r / options.threads.max(1) as f64).max(1.0));

    let mut client = match &options.family {
        Some(family) if options.watch => Client::connect_declaring(addr, &options.config, family)?,
        _ => Client::connect(addr, &options.config)?,
    };
    let session_started = Instant::now();
    let expected_batches = events.len() / options.batch.max(1) + 1;
    let mut latencies = Vec::with_capacity(expected_batches.min(options.exact_latency_cap));
    let mut latency_hist = HistogramSnapshot::new();
    let mut sent = 0u64;
    let mut batches = 0u64;
    for chunk in events.chunks(options.batch.max(1)) {
        if let Some(rate) = per_thread_rate {
            // Pace against the shared epoch: sleep until this batch's
            // scheduled send time.
            let due = started + Duration::from_secs_f64(sent as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                thread::sleep(wait);
            }
        }
        let t0 = Instant::now();
        let outcomes = client.send_events(chunk)?;
        let rtt = t0.elapsed();
        // The histogram sees every batch (fixed memory, no allocation);
        // exact samples stop accumulating at the cap.
        latency_hist.record(rtt.as_nanos() as u64);
        if latencies.len() < options.exact_latency_cap {
            latencies.push(rtt.as_secs_f64() * 1e6);
        }
        debug_assert_eq!(outcomes.len(), chunk.len(), "control-only batches");
        sent += chunk.len() as u64;
        batches += 1;
        // Watch mode polls STATS mid-stream (outside the timed RTT);
        // stats polling never touches the prediction digest, so the
        // parity check is unaffected.
        if options.watch && batches % 32 == 0 {
            client.stats()?;
        }
    }
    let elapsed = session_started.elapsed();
    let watch = if options.watch {
        Some(SessionWatch::from_stats(&client.stats()?.session))
    } else {
        None
    };
    let report = SessionReport {
        session_id: client.session_id(),
        events: sent,
        batches,
        digest: client.digest(),
        elapsed,
        latencies_us: latencies,
        latency_hist,
        watch,
    };
    client.bye()?;
    Ok(report)
}

/// Runs the load harness: `options.threads` concurrent sessions all
/// replaying `events`.
pub fn run_load(
    addr: impl ToSocketAddrs,
    events: &[DynInstr],
    options: &LoadOptions,
) -> Result<LoadReport, LoadError> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| LoadError::Client(ClientError::from(e)))?
        .next()
        .ok_or_else(|| {
            LoadError::Client(ClientError::Unexpected(
                "address resolves to nothing".into(),
            ))
        })?;
    if events.is_empty() || options.events_per_thread == Some(0) {
        return Err(LoadError::NoEvents);
    }

    let started = Instant::now();
    let sessions: Vec<Result<SessionReport, LoadError>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..options.threads.max(1))
            .map(|_| scope.spawn(|| run_session(&addr, options, events, started)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut reports = Vec::with_capacity(sessions.len());
    for session in sessions {
        reports.push(session?);
    }

    let parity_ok = if options.parity_check {
        let take = options
            .events_per_thread
            .map(|n| (n as usize).min(events.len()))
            .unwrap_or(events.len());
        let expect = offline_digest(&options.config, &events[..take], options.batch);
        Some(reports.iter().all(|r| r.digest == expect))
    } else {
        None
    };

    let total_events: u64 = reports.iter().map(|r| r.events).sum();
    // Exact sort is the small-run oracle; once any session overflowed
    // its sample cap the exact pool is incomplete, so the summary comes
    // from the merged streaming histograms instead (which saw every
    // batch).
    let truncated = reports
        .iter()
        .any(|r| (r.latencies_us.len() as u64) < r.batches);
    let (latency_us, latency_method) = if truncated {
        let mut pooled = HistogramSnapshot::new();
        for r in &reports {
            pooled.merge(&r.latency_hist);
        }
        (summary_from_hist(&pooled), LatencyMethod::Streaming)
    } else {
        let all_latencies: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.latencies_us.iter().copied())
            .collect();
        (
            LatencySummary::from_samples(&all_latencies),
            LatencyMethod::Exact,
        )
    };
    let flagged_sessions = reports
        .iter()
        .filter(|r| r.watch.as_ref().is_some_and(|w| w.drift_flagged))
        .count() as u64;
    Ok(LoadReport {
        events: total_events,
        elapsed,
        events_per_sec: total_events as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_us,
        latency_method,
        sessions: reports,
        parity_ok,
        flagged_sessions,
    })
}

/// A [`LatencySummary`] (microseconds) from a pooled nanosecond RTT
/// histogram: count, exact mean and max, bucket-interpolated
/// percentiles. The quantile-error-bound property test pins these to
/// within one bucket of the exact-sort answer.
fn summary_from_hist(hist: &HistogramSnapshot) -> LatencySummary {
    LatencySummary {
        count: hist.count() as usize,
        mean: hist.mean() / 1e3,
        p50: hist.quantile(0.50) / 1e3,
        p90: hist.quantile(0.90) / 1e3,
        p99: hist.quantile(0.99) / 1e3,
        max: hist.max() as f64 / 1e3,
    }
}

impl LoadReport {
    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events               {}\nelapsed              {:.3} s\nthroughput           {:.0} events/s\n",
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec
        ));
        out.push_str(&format!(
            "latency (batch RTT)  p50 {:.1} us, p90 {:.1} us, p99 {:.1} us, max {:.1} us ({})\n",
            self.latency_us.p50,
            self.latency_us.p90,
            self.latency_us.p99,
            self.latency_us.max,
            self.latency_method.as_str()
        ));
        for s in &self.sessions {
            out.push_str(&format!(
                "session {:<6} events {:<8} batches {:<6} ev/s {:<9.0} digest {:016x}\n",
                s.session_id,
                s.events,
                s.batches,
                s.events_per_sec(),
                s.digest
            ));
            if let Some(w) = &s.watch {
                let drift = if w.drift_flagged {
                    format!("drift @w{}", w.drift_window)
                } else {
                    "drift -".to_string()
                };
                out.push_str(&format!(
                    "  watch {:<6} family {:<16} windows {:<4} misp {:.4} rms {:.4} div {:.3} cusum {:.3} {}\n",
                    s.session_id,
                    w.family.as_deref().unwrap_or("-"),
                    w.windows,
                    w.mispredict_rate,
                    w.rms_error,
                    w.last_divergence,
                    w.cusum,
                    drift
                ));
            }
        }
        match self.parity_ok {
            Some(true) => {
                out.push_str("parity               ok (online == offline, byte-identical)\n")
            }
            Some(false) => out.push_str("parity               FAILED\n"),
            None => out.push_str("parity               skipped\n"),
        }
        out.push_str(&format!(
            "summary              sessions {}  flagged {}\n",
            self.sessions.len(),
            self.flagged_sessions
        ));
        out
    }

    /// Renders the report as deterministic-key-order JSON (values are
    /// measurements, so numbers vary run to run).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"events\":{},\"elapsed_s\":{:.6},\"events_per_sec\":{:.1},",
            self.events,
            self.elapsed.as_secs_f64(),
            self.events_per_sec
        ));
        out.push_str(&format!(
            "\"latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{:.1},\"p90\":{:.1},\"p99\":{:.1},\"max\":{:.1},\"method\":\"{}\"}},",
            self.latency_us.count,
            self.latency_us.mean,
            self.latency_us.p50,
            self.latency_us.p90,
            self.latency_us.p99,
            self.latency_us.max,
            self.latency_method.as_str()
        ));
        out.push_str("\"sessions\":[");
        for (i, s) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"events\":{},\"batches\":{},\"events_per_sec\":{:.1},\"digest\":\"{:016x}\"",
                s.session_id,
                s.events,
                s.batches,
                s.events_per_sec(),
                s.digest
            ));
            if let Some(w) = &s.watch {
                out.push_str(&format!(
                    ",\"watch\":{{\"family\":{},\"windows\":{},\"mispredict_rate\":{:.6},\"rms_error\":{:.6},\"last_divergence\":{:.6},\"cusum\":{:.6},\"drift_flagged\":{},\"drift_window\":{}}}",
                    match &w.family {
                        Some(f) => format!("\"{f}\""),
                        None => "null".to_string(),
                    },
                    w.windows,
                    w.mispredict_rate,
                    w.rms_error,
                    w.last_divergence,
                    w.cusum,
                    w.drift_flagged,
                    w.drift_window
                ));
            }
            out.push('}');
        }
        out.push_str("],");
        out.push_str(&format!(
            "\"flagged_sessions\":{},\"parity\":{}",
            self.flagged_sessions,
            match self.parity_ok {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            }
        ));
        out.push('}');
        out
    }
}
