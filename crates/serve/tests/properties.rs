//! Property and adversarial tests for the `paco-serve` wire protocol
//! and the serving reactor: frame encode→decode is the identity over
//! arbitrary payloads, any truncation or corruption is rejected cleanly
//! (mirroring the `paco-trace` corruption suite for the on-disk
//! format), the incremental [`FrameDecoder`] the sharded reactor reads
//! with agrees verdict-for-verdict with the blocking `read_frame`, and
//! live migration between worker shards preserves byte-identical
//! predictions at arbitrary cut points for every estimator kind.

use paco::{PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_serve::proto::{
    decode_events, decode_hello, decode_outcomes, decode_stats, encode_events, encode_hello,
    encode_outcomes, encode_stats, frame_bytes, read_frame, Digest, FleetStats, Frame,
    FrameDecoder, FrameKind, Hello, ProtoError, Resume, SessionStats, Stats, PROTOCOL_VERSION,
};
use paco_serve::{Client, ClientError, ErrorCode, RunningServer};
use paco_sim::{EstimatorKind, OnlineConfig, OnlineOutcome, OnlinePipeline};
use paco_types::{ControlKind, DynInstr, InstrClass, Pc};
use proptest::prelude::*;

fn kind_from(seed: u8) -> FrameKind {
    match seed % 11 {
        0 => FrameKind::Hello,
        1 => FrameKind::Welcome,
        2 => FrameKind::Events,
        3 => FrameKind::Predictions,
        4 => FrameKind::SnapshotReq,
        5 => FrameKind::Snapshot,
        6 => FrameKind::Bye,
        7 => FrameKind::StatsReq,
        8 => FrameKind::Stats,
        9 => FrameKind::Migrate,
        _ => FrameKind::Error,
    }
}

/// An arbitrary branch event (the shapes `paco-load` actually streams).
fn event_strategy() -> impl Strategy<Value = DynInstr> {
    (any::<u64>(), 0u8..5, any::<bool>(), any::<u64>()).prop_map(|(pc, kind, taken, target)| {
        let kind = match kind {
            0 => ControlKind::Conditional,
            1 => ControlKind::Jump,
            2 => ControlKind::Call,
            3 => ControlKind::Indirect,
            _ => ControlKind::Return,
        };
        DynInstr {
            pc: Pc::new(pc),
            class: InstrClass::Control(kind),
            deps: [0, 0],
            mem: None,
            taken: taken || kind != ControlKind::Conditional,
            target: Pc::new(target),
        }
    })
}

/// Reliability bins as the STATS codec ships them: up to a generous
/// multiple of the real 21-bin layout.
fn bins_strategy() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((any::<u64>(), any::<u64>()), 0..64)
}

/// Short lowercase family names, sometimes absent (the offline proptest
/// layer has no regex strategies, so names are derived from a seed).
fn name_strategy() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), any::<u64>(), 1usize..24).prop_map(|(some, seed, len)| {
        some.then(|| {
            (0..len)
                .map(|i| {
                    let x = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9e3779b97f4a7c15);
                    char::from(b'a' + ((x >> 33) % 26) as u8)
                })
                .collect()
        })
    })
}

fn session_stats_strategy() -> impl Strategy<Value = SessionStats> {
    (
        (
            any::<u64>(),
            name_strategy(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<bool>(), any::<u64>(), bins_strategy()),
    )
        .prop_map(|(ids, scalars, drift)| {
            let (session_id, family, events, mispredicts, with_prob) = ids;
            let (windows, window_len, last_divergence_bits, cusum_bits) = scalars;
            let (drift_flagged, drift_window, bins) = drift;
            SessionStats {
                session_id,
                family,
                events,
                mispredicts,
                with_prob,
                windows,
                window_len,
                last_divergence_bits,
                cusum_bits,
                drift_flagged,
                drift_window,
                bins,
            }
        })
}

fn fleet_stats_strategy() -> impl Strategy<Value = FleetStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
        bins_strategy(),
    )
        .prop_map(|(sessions, counters, bins)| {
            let (sessions_active, sessions_parked, sessions_seen, flagged_sessions) = sessions;
            let (events, mispredicts, events_per_sec_bits) = counters;
            FleetStats {
                sessions_active,
                sessions_parked,
                sessions_seen,
                flagged_sessions,
                events,
                mispredicts,
                events_per_sec_bits,
                bins,
            }
        })
}

fn stats_strategy() -> impl Strategy<Value = Stats> {
    (session_stats_strategy(), fleet_stats_strategy())
        .prop_map(|(session, fleet)| Stats { session, fleet })
}

fn outcome_strategy() -> impl Strategy<Value = OnlineOutcome> {
    (
        0u64..1 << 40,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0.0f64..=1.0,
    )
        .prop_map(
            |(score, has_prob, predicted_taken, mispredicted, prob)| OnlineOutcome {
                score,
                prob_bits: has_prob.then(|| prob.to_bits()),
                predicted_taken,
                mispredicted,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Frame round trip: any kind, any payload.
    #[test]
    fn frame_round_trip(
        kind_seed in any::<u8>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..4096),
    ) {
        let kind = kind_from(kind_seed);
        let bytes = frame_bytes(kind, &payload);
        let frame = read_frame(&mut bytes.as_slice()).unwrap().unwrap();
        prop_assert_eq!(frame, Frame { kind, payload });
    }

    /// Truncating a frame anywhere strictly inside it is an error —
    /// never a silent partial read, never a hang.
    #[test]
    fn frame_truncation_is_rejected(
        kind_seed in any::<u8>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..512),
        cut_seed in any::<u64>(),
    ) {
        let bytes = frame_bytes(kind_from(kind_seed), &payload);
        let cut = 1 + (cut_seed as usize % (bytes.len() - 1));
        prop_assert!(
            read_frame(&mut &bytes[..cut]).is_err(),
            "cut at {cut} of {} must fail",
            bytes.len()
        );
    }

    /// Flipping any single bit of a frame is caught (by the CRC, the
    /// kind check, or the length bound).
    #[test]
    fn frame_corruption_is_rejected(
        kind_seed in any::<u8>(),
        payload in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 1..512),
        victim in any::<u64>(),
        bit in 0u32..8,
    ) {
        let clean = frame_bytes(kind_from(kind_seed), &payload);
        let idx = victim as usize % clean.len();
        let mut bytes = clean.clone();
        bytes[idx] ^= 1 << bit;
        let result = read_frame(&mut bytes.as_slice());
        // A flip in the length field can make the frame claim more
        // bytes than the buffer holds (Malformed), claim fewer (CRC
        // trailer misaligns: Malformed), or exceed the cap. A payload
        // or kind flip is a CRC mismatch. All are errors; none decode.
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {idx} must not decode cleanly"
        );
    }

    /// Event batches round trip through the record codec.
    #[test]
    fn event_batches_round_trip(
        events in proptest::collection::vec(event_strategy(), 0..600),
    ) {
        let payload = encode_events(&events);
        prop_assert_eq!(decode_events(&payload).unwrap(), events);
    }

    /// Truncated event payloads are rejected.
    #[test]
    fn event_batch_truncation_is_rejected(
        events in proptest::collection::vec(event_strategy(), 1..200),
        cut_seed in any::<u64>(),
    ) {
        let payload = encode_events(&events);
        let cut = cut_seed as usize % payload.len();
        prop_assert!(decode_events(&payload[..cut]).is_err());
    }

    /// Prediction batches round trip, preserving probability bits
    /// exactly (the parity surface).
    #[test]
    fn outcome_batches_round_trip(
        outcomes in proptest::collection::vec(outcome_strategy(), 0..600),
    ) {
        let payload = encode_outcomes(&outcomes);
        prop_assert_eq!(decode_outcomes(&payload).unwrap(), outcomes);
    }

    /// HELLO round-trips for arbitrary fingerprints/hashes, resume
    /// blobs, and family declarations.
    #[test]
    fn hello_round_trips(
        fingerprint in any::<u64>(),
        config_hash in any::<u64>(),
        blob in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..256),
        mode in 0u8..3,
        family in name_strategy(),
    ) {
        let resume = match mode {
            0 => Resume::Fresh,
            1 => Resume::SessionId(fingerprint ^ 0x55),
            _ => Resume::State(blob),
        };
        let hello = Hello {
            protocol_version: PROTOCOL_VERSION,
            fingerprint,
            config: OnlineConfig::tiny(EstimatorKind::StaticMrt),
            config_hash,
            resume,
            family,
        };
        prop_assert_eq!(decode_hello(&encode_hello(&hello)).unwrap(), hello);
    }

    /// STATS round-trips for arbitrary telemetry values — every counter,
    /// f64 bit pattern, flag, and bin vector survives the codec exactly.
    #[test]
    fn stats_round_trip(stats in stats_strategy()) {
        let payload = encode_stats(&stats);
        prop_assert_eq!(decode_stats(&payload).unwrap(), stats);
    }

    /// A STATS frame truncated anywhere strictly inside it fails at the
    /// frame layer — telemetry can never be silently partial.
    #[test]
    fn stats_frame_truncation_is_rejected(
        stats in stats_strategy(),
        cut_seed in any::<u64>(),
    ) {
        let bytes = frame_bytes(FrameKind::Stats, &encode_stats(&stats));
        let cut = 1 + (cut_seed as usize % (bytes.len() - 1));
        prop_assert!(read_frame(&mut &bytes[..cut]).is_err());
    }

    /// Flipping any single bit of a STATS frame is caught by the CRC
    /// (or the header checks) before the payload is ever interpreted.
    #[test]
    fn stats_frame_corruption_is_rejected(
        stats in stats_strategy(),
        victim in any::<u64>(),
        bit in 0u32..8,
    ) {
        let clean = frame_bytes(FrameKind::Stats, &encode_stats(&stats));
        let idx = victim as usize % clean.len();
        let mut bytes = clean.clone();
        bytes[idx] ^= 1 << bit;
        prop_assert!(read_frame(&mut bytes.as_slice()).is_err());
    }
}

/// Every config `OnlineConfig::validate` accepts must produce
/// snapshots that fit in one frame — otherwise the advertised
/// snapshot/resume feature would fail exactly for large (but valid)
/// configs. Conservative byte bounds per component, all at their caps.
#[test]
fn worst_case_snapshot_fits_one_frame() {
    let n = OnlineConfig::MAX_TABLE_ENTRIES;
    let counter_table = n + 10; // 1 byte/counter + varint length prefix
    let per_branch_mrt = n * 4 + 10; // two varints per bucket (<= 2B + 1B)
    let pending = OnlineConfig::MAX_RESOLVE_LAG * 64; // ~25B each; 64 is generous

    // gshare + bimodal + selector + MDC tables, the largest estimator,
    // estimator/calculator/MRT scalars, header + hash + counters:
    let worst = 4 * counter_table + per_branch_mrt + pending + 1024;
    assert!(
        worst < paco_serve::proto::MAX_FRAME_PAYLOAD,
        "worst-case snapshot ({worst} B) must fit the frame cap"
    );
}

#[test]
fn oversized_frame_is_rejected_without_allocating() {
    // Hand-build a header that claims a payload beyond the cap.
    let mut bytes = vec![FrameKind::Events as u8];
    bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
    bytes.extend_from_slice(&[0u8; 64]);
    match read_frame(&mut bytes.as_slice()) {
        Err(ProtoError::Malformed(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("oversized frame must be malformed, got {other:?}"),
    }
}

#[test]
fn unknown_frame_kind_is_rejected() {
    let mut bytes = frame_bytes(FrameKind::Bye, &[]);
    bytes[0] = 0x6e; // no such kind
    assert!(read_frame(&mut bytes.as_slice()).is_err());
}

// ---------------------------------------------------------------------
// FrameDecoder fuzzing: the reactor's incremental read path must agree
// verdict-for-verdict with the blocking `read_frame`, no matter how the
// bytes are chunked or mangled.
// ---------------------------------------------------------------------

/// Drains a byte stream through the blocking reference decoder:
/// the frames it yields, or the error message it dies with.
fn read_frame_verdict(bytes: &[u8]) -> Result<Vec<Frame>, String> {
    let mut input = bytes;
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut input) {
            Ok(Some(frame)) => frames.push(frame),
            Ok(None) => return Ok(frames),
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Drains the same stream through the reactor's [`FrameDecoder`],
/// feeding it in pseudo-random chunks derived from `chunk_seed`.
fn decoder_verdict(bytes: &[u8], chunk_seed: u64) -> Result<Vec<Frame>, String> {
    let mut decoder = FrameDecoder::new();
    let mut state = chunk_seed | 1;
    let mut fed = 0usize;
    let mut frames = Vec::new();
    while fed < bytes.len() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let step = 1 + ((state >> 33) as usize % 23);
        let end = (fed + step).min(bytes.len());
        decoder.feed(&bytes[fed..end]);
        fed = end;
        // Drain between feeds too: frames must surface as soon as their
        // bytes are complete, regardless of chunk boundaries.
        loop {
            match decoder.try_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return Err(e.to_string()),
            }
        }
    }
    match decoder.on_eof() {
        Ok(()) => Ok(frames),
        Err(e) => Err(e.to_string()),
    }
}

/// A wire stream of several valid frames back to back.
fn stream_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..96),
        ),
        0..6,
    )
    .prop_map(|frames| {
        let mut bytes = Vec::new();
        for (kind_seed, payload) in frames {
            bytes.extend_from_slice(&frame_bytes(kind_from(kind_seed), &payload));
        }
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Clean streams: the incremental decoder yields exactly the frames
    /// `read_frame` yields, under any chunking.
    #[test]
    fn decoder_matches_read_frame_on_clean_streams(
        bytes in stream_strategy(),
        chunk_seed in any::<u64>(),
    ) {
        prop_assert_eq!(decoder_verdict(&bytes, chunk_seed), read_frame_verdict(&bytes));
    }

    /// Truncated streams: cutting anywhere produces the same verdict —
    /// same surviving frame prefix on both paths, or the same eof error
    /// message (never a hang, never a silent partial frame).
    #[test]
    fn decoder_matches_read_frame_on_truncated_streams(
        bytes in stream_strategy(),
        cut_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
    ) {
        prop_assume!(!bytes.is_empty());
        let cut = cut_seed as usize % bytes.len();
        let cut_bytes = &bytes[..cut];
        prop_assert_eq!(
            decoder_verdict(cut_bytes, chunk_seed),
            read_frame_verdict(cut_bytes)
        );
    }

    /// Bit-flipped streams: any single-bit corruption lands the same
    /// verdict on both paths (same frames decoded before the flip, same
    /// rejection message at it).
    #[test]
    fn decoder_matches_read_frame_on_bitflipped_streams(
        bytes in stream_strategy(),
        victim in any::<u64>(),
        bit in 0u32..8,
        chunk_seed in any::<u64>(),
    ) {
        prop_assume!(!bytes.is_empty());
        let mut bytes = bytes;
        let idx = victim as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        prop_assert_eq!(
            decoder_verdict(&bytes, chunk_seed),
            read_frame_verdict(&bytes)
        );
    }
}

/// An oversized length claim is rejected from the 5 header bytes alone —
/// the decoder must not wait for (or allocate) the claimed payload, or a
/// hostile header would stall its reactor shard forever.
#[test]
fn decoder_rejects_oversized_claim_from_header_alone() {
    let mut decoder = FrameDecoder::new();
    let mut header = vec![FrameKind::Events as u8];
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    decoder.feed(&header);
    match decoder.try_frame() {
        Err(ProtoError::Malformed(msg)) => assert!(msg.contains("cap"), "{msg}"),
        other => panic!("oversized claim must fail immediately, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Live migration parity: parking a session on one worker shard and
// restoring its snapshot on another must leave the prediction stream
// byte-identical to offline replay — at any cut point, for every
// estimator kind.
// ---------------------------------------------------------------------

/// Every estimator kind the service can host.
fn all_estimator_kinds() -> [EstimatorKind; 5] {
    [
        EstimatorKind::None,
        EstimatorKind::Paco(PacoConfig::paper()),
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        EstimatorKind::StaticMrt,
        EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
    ]
}

/// The offline oracle for a cut stream: per-event replay, digesting the
/// outcome encodings with exactly the chunk boundaries the online
/// client used (full batches to `cut` — which may fall mid-batch — then
/// full batches again from it).
fn cut_stream_digest(config: &OnlineConfig, events: &[DynInstr], cut: usize, batch: usize) -> u64 {
    let mut pipeline = OnlinePipeline::new(config);
    let mut digest = Digest::new();
    for chunk in events[..cut]
        .chunks(batch)
        .chain(events[cut..].chunks(batch))
    {
        let outcomes: Vec<_> = chunk.iter().filter_map(|i| pipeline.on_instr(i)).collect();
        digest.update(&encode_outcomes(&outcomes));
    }
    digest.value()
}

fn stream_chunks(client: &mut Client, events: &[DynInstr], batch: usize) {
    for chunk in events.chunks(batch) {
        client.send_events(chunk).expect("stream events");
    }
}

/// Resumes a parked session, retrying the park race (the server sweeps
/// the dropped connection's EOF asynchronously).
fn resume_retrying(addr: std::net::SocketAddr, config: &OnlineConfig, session_id: u64) -> Client {
    for _ in 0..500 {
        match Client::resume_by_id(addr, config, session_id) {
            Ok(client) => return client,
            Err(ClientError::Server(ErrorCode::UnknownSession, _)) => {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Err(e) => panic!("resume failed: {e}"),
        }
    }
    panic!("session {session_id} never parked");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Operator MIGRATE mid-stream: the session's pipeline snapshot
    /// parks on its home shard and restores on an explicit target, with
    /// the cut landing anywhere — including mid-batch and mid-watch-
    /// window — and the prediction bytes never waver, whichever
    /// estimator is inside.
    #[test]
    fn migration_at_arbitrary_cut_is_byte_identical(
        events in proptest::collection::vec(event_strategy(), 2..160),
        cut_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let server = RunningServer::bind("127.0.0.1:0", 3).expect("bind");
        let cut = 1 + (cut_seed as usize % (events.len() - 1));
        let batch = 1 + (batch_seed as usize % 48);
        for kind in all_estimator_kinds() {
            let config = OnlineConfig::tiny(kind);
            let mut client = Client::connect(server.addr(), &config).expect("connect");
            let home = (client.session_id() % 3) as u32;
            let target = (home + 1) % 3;
            stream_chunks(&mut client, &events[..cut], batch);
            let ack = client.migrate(Some(target)).expect("migrate");
            prop_assert_eq!(ack.session_id, client.session_id());
            prop_assert_eq!(ack.from_shard, home);
            prop_assert_eq!(ack.to_shard, target);
            stream_chunks(&mut client, &events[cut..], batch);
            prop_assert_eq!(
                client.digest(),
                cut_stream_digest(&config, &events, cut, batch),
                "kind {:?} cut {} batch {}", config.estimator, cut, batch
            );
            client.bye().expect("bye");
        }
        server.stop();
    }

    /// The full churn step: drop without BYE at an arbitrary cut (the
    /// session parks on shard A), resume by id, migrate to shard B,
    /// finish the stream — one digest spans the whole life and still
    /// matches offline replay for every estimator kind.
    #[test]
    fn park_resume_migrate_at_arbitrary_cut_is_byte_identical(
        events in proptest::collection::vec(event_strategy(), 2..120),
        cut_seed in any::<u64>(),
        batch_seed in any::<u64>(),
    ) {
        let server = RunningServer::bind("127.0.0.1:0", 3).expect("bind");
        let cut = 1 + (cut_seed as usize % (events.len() - 1));
        let batch = 1 + (batch_seed as usize % 32);
        for kind in all_estimator_kinds() {
            let config = OnlineConfig::tiny(kind);
            let mut client = Client::connect(server.addr(), &config).expect("connect");
            let session_id = client.session_id();
            stream_chunks(&mut client, &events[..cut], batch);
            let carried = client.digest();
            drop(client); // no BYE: parks on the home shard

            let mut client = resume_retrying(server.addr(), &config, session_id);
            client.seed_digest(carried);
            prop_assert_eq!(client.resumed_events(), cut as u64);
            let target = ((session_id % 3) as u32 + 2) % 3;
            let ack = client.migrate(Some(target)).expect("migrate");
            prop_assert_eq!(ack.to_shard, target);
            stream_chunks(&mut client, &events[cut..], batch);
            prop_assert_eq!(
                client.digest(),
                cut_stream_digest(&config, &events, cut, batch),
                "kind {:?} cut {} batch {}", config.estimator, cut, batch
            );
            client.bye().expect("bye");
        }
        server.stop();
    }
}
