//! Doc-drift guard: the observability catalog in
//! `docs/OBSERVABILITY.md` must match the metric families
//! [`ServeMetrics`] registers and the flight-recorder event set
//! `paco-obs` defines.
//!
//! Like `doc_drift.rs` for the protocol spec, the document is normative
//! prose for humans; this suite parses its code-literal tables (metric
//! families with kind and label keys, flight event names) and compares
//! them against the implementation, so neither can change without the
//! other.

use std::path::Path;

use paco_obs::{FlightKind, MetricKind};
use paco_serve::ServeMetrics;

fn observability_md() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/OBSERVABILITY.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts the backticked literal from a markdown table cell:
/// `` `paco_frames_total` `` → `Some("paco_frames_total")`.
fn backticked(cell: &str) -> Option<&str> {
    cell.strip_prefix('`')?.strip_suffix('`')
}

/// Parses rows of the metric-family table:
/// `| \`name\` | kind | \`label\` | meaning |` →
/// `(name, kind, labels)`. A labels cell of `—` means no labels.
fn family_rows(doc: &str) -> Vec<(String, String, Vec<String>)> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() < 5 || !cells[0].is_empty() {
            continue;
        }
        let Some(name) = backticked(cells[1]) else {
            continue;
        };
        if !name.starts_with("paco_") {
            continue; // the flight-event and budget tables, not this one
        }
        let kind = cells[2].to_string();
        let labels: Vec<String> = if cells[3] == "—" {
            Vec::new()
        } else {
            cells[3]
                .split(',')
                .filter_map(|c| backticked(c.trim()))
                .map(str::to_string)
                .collect()
        };
        rows.push((name.to_string(), kind, labels));
    }
    rows
}

/// Parses rows of the flight-event table: backticked kebab-case names.
fn event_rows(doc: &str) -> Vec<String> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        if cells.len() != 4 || !cells[0].is_empty() {
            continue; // the event table has exactly two columns
        }
        let Some(name) = backticked(cells[1]) else {
            continue;
        };
        if name.contains('-') && name.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
            rows.push(name.to_string());
        }
    }
    rows
}

fn kind_name(kind: MetricKind) -> &'static str {
    match kind {
        MetricKind::Counter => "counter",
        MetricKind::Gauge => "gauge",
        MetricKind::Histogram => "histogram",
    }
}

#[test]
fn metric_family_table_matches_registry() {
    let doc = observability_md();
    let documented = family_rows(&doc);
    assert!(
        !documented.is_empty(),
        "docs/OBSERVABILITY.md: no metric-family table rows found"
    );
    let live = ServeMetrics::new();
    let families = live.registry().families();

    // Every live family must be documented, with matching kind and
    // label keys.
    for family in &families {
        let row = documented
            .iter()
            .find(|(name, _, _)| name == family.name)
            .unwrap_or_else(|| {
                panic!(
                    "docs/OBSERVABILITY.md: no table row for family {}",
                    family.name
                )
            });
        assert_eq!(
            row.1,
            kind_name(family.kind),
            "docs/OBSERVABILITY.md documents {} as a {}, the registry says {}",
            family.name,
            row.1,
            kind_name(family.kind)
        );
        let doc_labels: Vec<&str> = row.2.iter().map(String::as_str).collect();
        assert_eq!(
            doc_labels, family.label_keys,
            "docs/OBSERVABILITY.md label keys for {} drifted",
            family.name
        );
    }

    // And nothing stale: every documented family must exist.
    for (name, _, _) in &documented {
        assert!(
            families.iter().any(|f| f.name == name),
            "docs/OBSERVABILITY.md documents unknown family {name}"
        );
    }
    assert_eq!(
        documented.len(),
        families.len(),
        "docs/OBSERVABILITY.md family count drifted"
    );
}

#[test]
fn flight_event_table_matches_flight_kinds() {
    let doc = observability_md();
    let documented = event_rows(&doc);
    assert!(
        !documented.is_empty(),
        "docs/OBSERVABILITY.md: no flight-event table rows found"
    );
    for kind in FlightKind::ALL {
        assert!(
            documented.iter().any(|n| n == kind.name()),
            "docs/OBSERVABILITY.md: no table row for flight event {}",
            kind.name()
        );
    }
    for name in &documented {
        assert!(
            FlightKind::ALL.iter().any(|k| k.name() == name),
            "docs/OBSERVABILITY.md documents unknown flight event {name}"
        );
    }
    assert_eq!(
        documented.len(),
        FlightKind::ALL.len(),
        "docs/OBSERVABILITY.md flight-event count drifted"
    );
}
