//! Doc-drift guard: the wire-protocol facts quoted in
//! `docs/PROTOCOL.md` must match the constants in
//! `crates/serve/src/proto.rs`.
//!
//! The document is normative prose for humans; this suite parses its
//! code-literal tables (frame kinds, error codes, the payload cap, the
//! protocol version) and compares them against the implementation, so
//! neither can change without the other.

use std::path::Path;

use paco_serve::{ErrorCode, FrameKind, PROTOCOL_VERSION};

fn protocol_md() -> String {
    // The doc lives at the repo root; the test runs with the crate as
    // its working directory.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Parses markdown-table rows whose first cell is a code literal:
/// `| 0x01 | HELLO | ... |` → `(0x01, "HELLO")`.
fn code_name_rows(doc: &str, radix: u32) -> Vec<(u8, String)> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let cells: Vec<&str> = line.split('|').map(str::trim).collect();
        // A table row renders as ["", first, second, ..., ""].
        if cells.len() < 4 || !cells[0].is_empty() {
            continue;
        }
        // Hex rows must be spelled 0xNN, decimal rows must not be —
        // keeps the frame-kind scan from swallowing the error-code
        // table and vice versa.
        let code_text = if radix == 16 {
            let Some(stripped) = cells[1].strip_prefix("0x") else {
                continue;
            };
            stripped
        } else if cells[1].starts_with("0x") {
            continue;
        } else {
            cells[1]
        };
        let Ok(code) = u8::from_str_radix(code_text, radix) else {
            continue;
        };
        let name = cells[2].to_string();
        if name.is_empty() || name.chars().any(|c| c.is_lowercase()) {
            continue; // prose cell, not a NAME column
        }
        rows.push((code, name));
    }
    rows
}

#[test]
fn frame_kind_table_matches_proto() {
    let doc = protocol_md();
    let rows = code_name_rows(&doc, 16);
    let expected: &[(FrameKind, &str)] = &[
        (FrameKind::Hello, "HELLO"),
        (FrameKind::Welcome, "WELCOME"),
        (FrameKind::Events, "EVENTS"),
        (FrameKind::Predictions, "PREDICTIONS"),
        (FrameKind::SnapshotReq, "SNAPSHOT_REQ"),
        (FrameKind::Snapshot, "SNAPSHOT"),
        (FrameKind::Bye, "BYE"),
        (FrameKind::StatsReq, "STATS_REQ"),
        (FrameKind::Stats, "STATS"),
        (FrameKind::Migrate, "MIGRATE"),
        (FrameKind::Error, "ERROR"),
    ];
    for &(kind, name) in expected {
        let documented = rows
            .iter()
            .find(|(_, n)| n == name)
            .unwrap_or_else(|| panic!("docs/PROTOCOL.md: no table row for frame {name}"));
        assert_eq!(
            documented.0, kind as u8,
            "docs/PROTOCOL.md documents {name} as {:#04x}, proto.rs says {:#04x}",
            documented.0, kind as u8
        );
    }
    // And nothing undocumented: every hex-coded row must name a known
    // frame (catches a doc that invents or retains a stale opcode).
    for (code, name) in &rows {
        if name.chars().all(|c| c.is_ascii_uppercase() || c == '_') && !name.is_empty() {
            assert!(
                expected.iter().any(|(_, n)| n == name),
                "docs/PROTOCOL.md documents unknown frame {name} ({code:#04x})"
            );
        }
    }
}

#[test]
fn error_code_table_matches_proto() {
    let doc = protocol_md();
    let rows = code_name_rows(&doc, 10);
    let expected: &[(ErrorCode, &str)] = &[
        (ErrorCode::ProtocolMismatch, "PROTOCOL_MISMATCH"),
        (ErrorCode::ConfigInvalid, "CONFIG_INVALID"),
        (ErrorCode::ConfigHashMismatch, "CONFIG_HASH_MISMATCH"),
        (ErrorCode::UnknownSession, "UNKNOWN_SESSION"),
        (ErrorCode::BadState, "BAD_STATE"),
        (ErrorCode::Malformed, "MALFORMED"),
        (ErrorCode::UnknownFamily, "UNKNOWN_FAMILY"),
    ];
    for &(code, name) in expected {
        let documented = rows
            .iter()
            .find(|(_, n)| n == name)
            .unwrap_or_else(|| panic!("docs/PROTOCOL.md: no table row for error {name}"));
        assert_eq!(
            documented.0, code as u8,
            "docs/PROTOCOL.md documents {name} as {}, proto.rs says {}",
            documented.0, code as u8
        );
        // The documented byte must decode back to the same typed code.
        assert_eq!(ErrorCode::from_byte(documented.0), Some(code));
    }
}

#[test]
fn payload_cap_matches_proto() {
    let doc = protocol_md();
    // The framing section quotes the cap as "<= N MiB".
    let quoted_mib: usize = doc
        .lines()
        .find_map(|l| {
            let (before, _) = l.split_once("MiB")?;
            let (_, num) = before.rsplit_once("<=")?;
            num.trim().parse().ok()
        })
        .expect("docs/PROTOCOL.md must quote the payload cap as `<= N MiB`");
    assert_eq!(
        quoted_mib << 20,
        paco_serve::proto::MAX_FRAME_PAYLOAD,
        "docs/PROTOCOL.md quotes a {quoted_mib} MiB payload cap, proto.rs caps at {} bytes",
        paco_serve::proto::MAX_FRAME_PAYLOAD
    );
}

#[test]
fn protocol_version_matches_proto() {
    let doc = protocol_md();
    // The HELLO section pins the version: "must equal N".
    let quoted: u32 = doc
        .lines()
        .find_map(|l| {
            let (_, after) = l.split_once("must equal")?;
            after.split_whitespace().next()?.parse().ok()
        })
        .expect("docs/PROTOCOL.md must pin the protocol version as `must equal N`");
    assert_eq!(
        quoted, PROTOCOL_VERSION,
        "docs/PROTOCOL.md pins protocol version {quoted}, proto.rs speaks {PROTOCOL_VERSION}"
    );
    // The title quotes it too: "(version N)".
    assert!(
        doc.lines()
            .next()
            .is_some_and(|l| l.contains(&format!("(version {PROTOCOL_VERSION})"))),
        "docs/PROTOCOL.md title must name the current protocol version"
    );
}
