//! End-to-end observability test: a live server with the sidecar
//! scrape endpoint attached, driven by a real client, scraped over
//! real HTTP.
//!
//! This is the in-repo twin of the CI smoke job: every registered
//! metric family must show up well-formed in a `/metrics` scrape taken
//! mid-run, and an injected malformed frame must land in the flight
//! recorder (visible on `/flight`) and bump the protocol-error counter.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use paco_obs::MetricsServer;
use paco_serve::{corpus_control_events, Client, RunningServer};
use paco_sim::{EstimatorKind, OnlineConfig};

/// One blocking HTTP/1.1 GET against the scrape endpoint; returns the
/// full response (head + body).
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// Polls `check` against fresh scrapes until it passes or the deadline
/// hits — connection teardown (and the flight events it records) races
/// the test thread, so racy assertions retry instead of flaking.
fn scrape_until(addr: SocketAddr, path: &str, check: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let body = http_get(addr, path);
        if check(&body) || Instant::now() > deadline {
            return body;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn events() -> Vec<paco_types::DynInstr> {
    let entry = paco_corpus::find_entry("biased_bimodal").expect("shipped family");
    corpus_control_events(&entry.family, entry.seed, 20_000).expect("synthesize events")
}

#[test]
fn scrape_reports_every_family_and_flight_events() {
    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind server");
    let mut endpoint = MetricsServer::bind(
        "127.0.0.1:0",
        Arc::clone(server.metrics().registry()),
        Arc::clone(server.metrics().recorder()),
    )
    .expect("bind scrape endpoint");

    // Drive a real session so counters and histograms have data.
    let config = OnlineConfig::tiny(EstimatorKind::None);
    let mut client = Client::connect(server.addr(), &config).expect("connect");
    let events = events();
    for chunk in events.chunks(256) {
        client.send_events(chunk).expect("send events");
    }
    client.bye().expect("clean bye");

    // Mid-run scrape: every family the registry knows must be present
    // and well-formed (HELP + TYPE headers per family).
    let text = http_get(endpoint.local_addr(), "/metrics");
    assert!(
        text.starts_with("HTTP/1.1 200 OK"),
        "scrape failed: {}",
        text.lines().next().unwrap_or("")
    );
    for family in server.metrics().registry().families() {
        assert!(
            text.contains(&format!("# HELP {} ", family.name)),
            "family {} missing HELP in scrape",
            family.name
        );
        assert!(
            text.contains(&format!("# TYPE {} ", family.name)),
            "family {} missing TYPE in scrape",
            family.name
        );
    }
    // Spot-check the data path actually recorded.
    assert!(text.contains("paco_connections_total 1\n"));
    assert!(text.contains("paco_frames_total{opcode=\"EVENTS\"}"));
    assert!(text.contains("paco_sessions_established_total{mode=\"fresh\"} 1\n"));
    assert!(text.contains("paco_batch_handle_ns_count"));
    assert!(text.contains("paco_batch_events_bucket"));

    // The flight recorder saw the whole session lifecycle. The BYE
    // teardown races this scrape, so poll for the final event.
    let flight = scrape_until(endpoint.local_addr(), "/flight", |body| {
        body.contains("session-bye")
    });
    for expected in ["conn-open", "session-fresh", "session-bye"] {
        assert!(
            flight.contains(expected),
            "flight missing {expected}:\n{flight}"
        );
    }

    endpoint.stop();
    server.stop();
}

#[test]
fn malformed_frame_lands_in_flight_recorder() {
    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind server");
    let mut endpoint = MetricsServer::bind(
        "127.0.0.1:0",
        Arc::clone(server.metrics().registry()),
        Arc::clone(server.metrics().recorder()),
    )
    .expect("bind scrape endpoint");

    // Garbage on the protocol port: an impossible frame header. The
    // server must refuse with ERROR (drained until EOF here) and record
    // the protocol error.
    let mut raw = TcpStream::connect(server.addr()).expect("connect protocol port");
    raw.write_all(&[0xFF; 16]).expect("write garbage");
    let mut drained = Vec::new();
    let _ = raw.read_to_end(&mut drained); // EOF = handler finished

    let text = scrape_until(endpoint.local_addr(), "/metrics", |body| {
        body.contains("paco_protocol_errors_total 1\n")
    });
    assert!(
        text.contains("paco_protocol_errors_total 1\n"),
        "protocol error not counted:\n{text}"
    );
    let flight = scrape_until(endpoint.local_addr(), "/flight", |body| {
        body.contains("frame-error")
    });
    assert!(
        flight.contains("frame-error"),
        "malformed frame not in flight recorder:\n{flight}"
    );

    endpoint.stop();
    server.stop();
}
