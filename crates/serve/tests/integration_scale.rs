//! Scale, churn and fault integration tests for the sharded reactor:
//! a multi-thousand-session connect/park/resume/migrate storm with
//! per-session digest parity and full ledger reconciliation (flight
//! recorder lifetime counts vs metric counters vs the driver's own
//! tallies), plus the in-process fault-injection seams — shard stall,
//! torn migration snapshot, mid-migration disconnect — each of which
//! must leave every surviving session byte-identical to offline replay.
//!
//! The checked-in frame corpus (`tests/corpus_frames/`) rides along:
//! every seed is replayed against both decode paths and the live
//! reactor socket, and every rejection must land a `frame-error` flight
//! event without hanging the shard.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use paco_obs::FlightKind;
use paco_serve::client::offline_digest;
use paco_serve::load::{run_churn, ChurnOptions};
use paco_serve::proto::{read_frame, Frame, FrameDecoder, FrameKind};
use paco_serve::{
    corpus_control_events, Client, ClientError, ErrorCode, RunningServer, ServeOptions, SessionMode,
};
use paco_sim::{EstimatorKind, OnlineConfig};
use paco_types::DynInstr;

fn pool(instrs: u64) -> Vec<DynInstr> {
    let entry = paco_corpus::find_entry("biased_bimodal").expect("corpus family");
    corpus_control_events(&entry.family, entry.seed, instrs).expect("synthesize pool")
}

fn resume_retrying(addr: std::net::SocketAddr, config: &OnlineConfig, session_id: u64) -> Client {
    for _ in 0..500 {
        match Client::resume_by_id(addr, config, session_id) {
            Ok(client) => return client,
            Err(ClientError::Server(ErrorCode::UnknownSession, _)) => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("resume failed: {e}"),
        }
    }
    panic!("session {session_id} never parked");
}

/// The tentpole storm: thousands of sessions churned through
/// connect → park → resume → (some) migrate → finish, every one
/// byte-checked against offline replay, and afterwards every ledger in
/// the server agrees: the flight recorder's lifetime counts, the metric
/// counters, the driver's tallies, and an empty session table.
#[test]
fn churn_storm_holds_parity_and_reconciles_every_ledger() {
    const SESSIONS: usize = 5_000;
    let server = RunningServer::bind("127.0.0.1:0", 8).expect("bind");
    let pool = pool(30_000);
    let options = ChurnOptions {
        config: OnlineConfig::tiny(EstimatorKind::StaticMrt),
        sessions: SESSIONS,
        threads: 16,
        batch: 32,
        events_per_session: 64,
        seed: 0xc4a2_5eed,
        migrate_every: 9,
        resume_retries: 500,
    };
    let report = run_churn(server.addr(), &pool, &options).expect("churn storm");

    assert_eq!(report.sessions, SESSIONS, "every session must finish");
    assert!(
        report.parity_ok(),
        "digest parity failed for sessions {:?}",
        report.parity_failures
    );
    assert_eq!(
        report.peak_parked, SESSIONS,
        "the phase barrier must hold the whole storm parked at once"
    );
    // With 8 shards the auto-picked target is always another worker, so
    // every MIGRATE is a real move.
    assert_eq!(report.migrated, SESSIONS.div_ceil(9));
    assert_eq!(report.migrate_noops, 0);

    // Zero session-table leaks: every session ended in a clean BYE.
    assert_eq!(server.parked_sessions(), 0, "session table must drain");

    let metrics = server.metrics();
    let recorder = metrics.recorder();
    let fleet = &metrics.fleet;

    // Flight-recorder lifetime counts reconcile with the metric
    // counters — two independent recording paths, one truth.
    assert_eq!(
        recorder.recorded_of(FlightKind::SessionPark),
        metrics.session_parks.value(),
        "park events vs park counter"
    );
    assert_eq!(
        recorder.recorded_of(FlightKind::SessionResume),
        fleet.established[SessionMode::Resumed as usize].value(),
        "resume events vs established{{mode=resumed}}"
    );
    assert_eq!(
        recorder.recorded_of(FlightKind::SessionFresh),
        fleet.established[SessionMode::Fresh as usize].value(),
        "fresh events vs established{{mode=fresh}}"
    );
    assert_eq!(
        recorder.recorded_of(FlightKind::SessionMigrate),
        metrics.migrations(true).value() + metrics.migrations(false).value(),
        "migrate events vs migration counters"
    );
    assert_eq!(recorder.recorded_of(FlightKind::MigrateFail), 0);

    // And both reconcile with what the driver itself saw: one park and
    // one resume per session (+1 fresh for the parked-gauge probe, which
    // BYEs without parking), every requested migration completed.
    assert_eq!(metrics.session_parks.value(), SESSIONS as u64);
    assert_eq!(
        fleet.established[SessionMode::Resumed as usize].value(),
        SESSIONS as u64
    );
    assert_eq!(
        fleet.established[SessionMode::Fresh as usize].value(),
        SESSIONS as u64 + 1
    );
    assert_eq!(
        metrics.migrations(true).value(),
        report.migrated as u64,
        "operator migrations vs driver tally"
    );
    server.stop();
}

/// The churn storm again, but with the change-point-aware estimator:
/// every AdaptiveMrt session carries live CUSUM state (baseline rate,
/// detection window, settle countdown) through park → migrate → resume,
/// and must still finish byte-identical to offline replay. The config
/// is hot-tuned so refreshes and detections actually fire inside the
/// per-session event budget — a storm of inert detectors would prove
/// nothing about snapshotting the detector mid-flight.
#[test]
fn adaptive_mrt_survives_churn_storm_byte_identical() {
    const SESSIONS: usize = 600;
    let server = RunningServer::bind("127.0.0.1:0", 4).expect("bind");
    let pool = pool(30_000);
    let adaptive = paco::AdaptiveMrtConfig::paper()
        .with_refresh_period(40)
        .with_detect_window(8);
    let options = ChurnOptions {
        config: OnlineConfig::tiny(EstimatorKind::AdaptiveMrt(adaptive)),
        sessions: SESSIONS,
        threads: 8,
        batch: 24,
        events_per_session: 96,
        seed: 0xada7_715e,
        migrate_every: 7,
        resume_retries: 500,
    };
    let report = run_churn(server.addr(), &pool, &options).expect("adaptive churn storm");

    assert_eq!(report.sessions, SESSIONS, "every session must finish");
    assert!(
        report.parity_ok(),
        "AdaptiveMrt digest parity failed for sessions {:?}",
        report.parity_failures
    );
    assert_eq!(report.migrated, SESSIONS.div_ceil(7));
    assert_eq!(report.migrate_noops, 0);
    assert_eq!(server.parked_sessions(), 0, "session table must drain");
    server.stop();
}

/// A stalled shard delays its sessions but corrupts nothing.
#[test]
fn shard_stall_delays_but_preserves_parity() {
    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind");
    let config = OnlineConfig::tiny(EstimatorKind::StaticMrt);
    let events = pool(12_000);
    let mut client = Client::connect(server.addr(), &config).expect("connect");
    let home = (client.session_id() % 2) as usize;
    client.send_events(&events[..256]).expect("pre-stall batch");
    server.faults().stall_shard(home, 40);
    let stalled = std::time::Instant::now();
    client
        .send_events(&events[256..512])
        .expect("stalled batch");
    assert!(
        stalled.elapsed() >= Duration::from_millis(35),
        "the stall must actually delay the shard"
    );
    client.send_events(&events[512..768]).expect("post-stall");
    assert_eq!(
        client.digest(),
        offline_digest(&config, &events[..768], 256),
        "a stall must never change prediction bytes"
    );
    client.bye().expect("bye");
    server.stop();
}

/// A torn migration snapshot fails closed: the restore is refused, the
/// session keeps the pipeline it arrived with, the failure is recorded
/// as `migrate-fail`, and the prediction stream never wavers.
#[test]
fn torn_migration_snapshot_fails_closed_with_parity() {
    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind");
    let config = OnlineConfig::tiny(EstimatorKind::StaticMrt);
    let events = pool(12_000);
    let mut client = Client::connect(server.addr(), &config).expect("connect");
    let home = (client.session_id() % 2) as u32;
    client.send_events(&events[..512]).expect("first half");

    server.faults().tear_next_migration_snapshot();
    let ack = client.migrate(Some((home + 1) % 2)).expect("migrate ack");
    assert_eq!(ack.to_shard, (home + 1) % 2);

    let recorder = server.metrics().recorder();
    assert_eq!(recorder.recorded_of(FlightKind::MigrateFail), 1);
    assert_eq!(recorder.recorded_of(FlightKind::SessionMigrate), 0);
    assert_eq!(server.metrics().migrations(true).value(), 0);

    client.send_events(&events[512..1024]).expect("second half");
    assert_eq!(
        client.digest(),
        offline_digest(&config, &events[..1024], 512),
        "a torn snapshot must leave the surviving session byte-identical"
    );
    client.bye().expect("bye");
    server.stop();
}

/// A connection severed mid-migration loses only the connection: the
/// session finishes its move, parks on the target shard, and resumes
/// byte-identically.
#[test]
fn dropped_migration_conn_parks_session_with_parity() {
    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind");
    let config = OnlineConfig::tiny(EstimatorKind::StaticMrt);
    let events = pool(12_000);
    let mut client = Client::connect(server.addr(), &config).expect("connect");
    let session_id = client.session_id();
    client.send_events(&events[..512]).expect("first half");
    let carried = client.digest();

    server.faults().drop_next_migration_conn();
    let died = client.migrate(None);
    assert!(died.is_err(), "the severed connection must not ack");
    drop(client);

    // The migration itself completed (the blob was intact) before the
    // target shard noticed the dead socket and parked the session.
    let mut client = resume_retrying(server.addr(), &config, session_id);
    client.seed_digest(carried);
    assert_eq!(client.resumed_events(), 512);
    assert_eq!(
        server
            .metrics()
            .recorder()
            .recorded_of(FlightKind::SessionMigrate),
        1,
        "the restore must land before the EOF parks the session"
    );
    client.send_events(&events[512..1024]).expect("second half");
    assert_eq!(
        client.digest(),
        offline_digest(&config, &events[..1024], 512),
        "a mid-migration disconnect must leave the session byte-identical"
    );
    client.bye().expect("bye");
    server.stop();
}

/// With the policy watermark at zero, the automatic rebalancer keeps
/// shedding the hot shard's session to the idle one — predictions stay
/// byte-identical while the session bounces between workers.
#[test]
fn policy_migration_rebalances_without_breaking_parity() {
    let server = RunningServer::bind_with(
        "127.0.0.1:0",
        ServeOptions {
            shards: 2,
            policy_watermark: 0,
        },
    )
    .expect("bind");
    let config = OnlineConfig::tiny(EstimatorKind::StaticMrt);
    let events = pool(16_000);
    let mut client = Client::connect(server.addr(), &config).expect("connect");
    for chunk in events.chunks(128) {
        client.send_events(chunk).expect("stream under rebalancing");
    }
    let policy_moves = server.metrics().migrations(false).value();
    assert!(
        policy_moves > 0,
        "a hot shard above the watermark must shed its session"
    );
    assert_eq!(
        server
            .metrics()
            .recorder()
            .recorded_of(FlightKind::SessionMigrate),
        policy_moves + server.metrics().migrations(true).value(),
        "every policy move lands a session-migrate flight event"
    );
    assert_eq!(
        client.digest(),
        offline_digest(&config, &events, 128),
        "policy migrations must never change prediction bytes"
    );
    client.bye().expect("bye");
    server.stop();
}

/// Replays every checked-in corpus seed through both decode paths and
/// the live reactor: the incremental decoder and the blocking reference
/// agree verdict-for-verdict, and on the wire every rejection answers
/// with an ERROR frame, closes the connection (no hang, no busy-loop),
/// and lands a `frame-error` flight event.
#[test]
fn frame_corpus_rejections_land_frame_error_flights() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_frames");
    let mut seeds: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "bin"))
        .collect();
    seeds.sort();
    assert!(seeds.len() >= 10, "seed corpus went missing: {seeds:?}");

    let server = RunningServer::bind("127.0.0.1:0", 2).expect("bind");
    for (i, path) in seeds.iter().enumerate() {
        let bytes = std::fs::read(path).expect("read seed");
        let name = path.file_name().unwrap().to_string_lossy().into_owned();

        // Both decode paths, same verdict.
        let reference = {
            let mut input = bytes.as_slice();
            let mut frames = Vec::new();
            loop {
                match read_frame(&mut input) {
                    Ok(Some(frame)) => frames.push(frame),
                    Ok(None) => break Ok(frames),
                    Err(e) => break Err(e.to_string()),
                }
            }
        };
        let incremental = {
            let mut decoder = FrameDecoder::new();
            let mut frames: Vec<Frame> = Vec::new();
            let mut verdict = Ok(());
            for chunk in bytes.chunks(3) {
                decoder.feed(chunk);
                loop {
                    match decoder.try_frame() {
                        Ok(Some(frame)) => frames.push(frame),
                        Ok(None) => break,
                        Err(e) => {
                            verdict = Err(e.to_string());
                            break;
                        }
                    }
                }
                if verdict.is_err() {
                    break;
                }
            }
            match verdict {
                Ok(()) => match decoder.on_eof() {
                    Ok(()) => Ok(frames),
                    Err(e) => Err(e.to_string()),
                },
                Err(e) => Err(e),
            }
        };
        assert_eq!(incremental, reference, "decode verdicts diverge on {name}");

        // Every corpus seed is either framing-broken or session-illegal
        // (a valid non-HELLO first frame), so the reactor must refuse.
        let frame_errors_before = server
            .metrics()
            .recorder()
            .recorded_of(FlightKind::FrameError);
        let mut stream = TcpStream::connect(server.addr()).expect("connect raw");
        stream.write_all(&bytes).expect("write seed");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut reply = Vec::new();
        stream
            .read_to_end(&mut reply)
            .unwrap_or_else(|e| panic!("seed {name} hung the reactor: {e}"));
        let reply_frame = read_frame(&mut reply.as_slice())
            .unwrap_or_else(|e| panic!("seed {name}: unreadable reply: {e}"))
            .unwrap_or_else(|| panic!("seed {name}: refusal must carry an ERROR frame"));
        assert_eq!(
            reply_frame.kind,
            FrameKind::Error,
            "seed {name} must be refused"
        );
        // The park race: the refusal's flight event is recorded before
        // the ERROR frame is flushed, so reading the reply orders us
        // after it.
        let frame_errors_after = server
            .metrics()
            .recorder()
            .recorded_of(FlightKind::FrameError);
        assert_eq!(
            frame_errors_after,
            frame_errors_before + 1,
            "seed {name} (#{i}) must land exactly one frame-error flight event"
        );
    }
    server.stop();
}
