//! Property-based lane-parity tests for the online pipeline.
//!
//! Both batched kernels — the fused register loop behind `run_batch`
//! and the chunked data-parallel kernel behind `run_batch_probed` —
//! must be byte-equivalent to the scalar per-event reference
//! (`on_instr`) for **every** estimator kind, at **every** batch size —
//! including sizes that are not multiples of the chunked kernel's
//! internal 16-event lane, which exercise the scalar tail and the
//! carry of partially filled chunks across batch boundaries.
//! These properties also pin snapshot save/restore landing mid-chunk:
//! a blob taken at an arbitrary event index must resume bit-identically
//! however the remaining stream is then chunked.

use paco::{AdaptiveMrtConfig, PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_sim::{EstimatorKind, NoProbe, OnlineConfig, OnlinePipeline, OutcomeBatch};
use paco_types::{DynInstr, EventBatch};
use paco_workloads::{BenchmarkId, Workload};
use proptest::prelude::*;

/// Every estimator kind the pipeline can host — the batched lane must
/// hold parity for all of them, not just the benched three.
fn all_kinds() -> Vec<EstimatorKind> {
    vec![
        EstimatorKind::None,
        EstimatorKind::Paco(PacoConfig::paper()),
        EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        EstimatorKind::StaticMrt,
        EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        // Hot-tuned so periodic refreshes, CUSUM latches, and early
        // refreshes all actually fire within a few hundred events —
        // paper() would sit idle at property-test stream lengths.
        EstimatorKind::AdaptiveMrt(
            AdaptiveMrtConfig::paper()
                .with_refresh_period(500)
                .with_detect_window(16),
        ),
    ]
}

/// A control-event stream from the synthetic gzip workload — the same
/// extraction the hotpath bench and the serve loop use.
fn control_events(seed: u64, count: usize) -> Vec<DynInstr> {
    let mut workload = BenchmarkId::Gzip.build(seed);
    let mut events = Vec::with_capacity(count);
    while events.len() < count {
        let instr = workload.next_instr();
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    events
}

/// Runs the scalar per-event reference lane over `events`.
fn run_per_event(config: &OnlineConfig, events: &[DynInstr]) -> OutcomeBatch {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = OutcomeBatch::new();
    for instr in events {
        if let Some(outcome) = pipe.on_instr(instr) {
            out.push(&outcome);
        }
    }
    out
}

/// Runs a batched lane over `events`, split into consecutive batches
/// whose sizes cycle through `sizes`. `chunked` selects the chunked
/// data-parallel kernel (`run_batch_probed` + `NoProbe`) instead of
/// the fused register loop (`run_batch`).
fn run_batched(
    config: &OnlineConfig,
    events: &[DynInstr],
    sizes: &[usize],
    chunked: bool,
) -> OutcomeBatch {
    let mut pipe = OnlinePipeline::new(config);
    let mut all = OutcomeBatch::new();
    let mut out = OutcomeBatch::new();
    let mut rest = events;
    let mut cycle = sizes.iter().copied().cycle();
    while !rest.is_empty() {
        let take = cycle.next().unwrap().min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        out.clear();
        if chunked {
            pipe.run_batch_probed(&EventBatch::from(chunk), &mut out, &mut NoProbe);
        } else {
            pipe.run_batch(&EventBatch::from(chunk), &mut out);
        }
        for o in out.iter() {
            all.push(&o);
        }
        rest = tail;
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both batched kernels == scalar for every estimator kind under
    /// arbitrary (deliberately non-lane-multiple) batch sizing.
    #[test]
    fn batched_lane_matches_scalar_oracle_at_any_batch_size(
        seed in any::<u64>(),
        count in 64usize..400,
        sizes in proptest::collection::vec(1usize..70, 1..5),
    ) {
        let events = control_events(seed, count);
        for kind in all_kinds() {
            let config = OnlineConfig::paper(kind);
            let reference = run_per_event(&config, &events);
            let fused = run_batched(&config, &events, &sizes, false);
            prop_assert_eq!(
                &reference,
                &fused,
                "fused-lane divergence for {}",
                OnlinePipeline::new(&config).estimator_name()
            );
            let chunked = run_batched(&config, &events, &sizes, true);
            prop_assert_eq!(
                &reference,
                &chunked,
                "chunked-kernel divergence for {}",
                OnlinePipeline::new(&config).estimator_name()
            );
        }
    }

    /// A snapshot taken at an arbitrary event index — almost always in
    /// the middle of a 16-event kernel chunk — restores into a fresh
    /// pipeline that finishes the stream bit-identically, whatever
    /// batch sizing either side uses. Runs through the chunked kernel
    /// on both sides of the cut: "mid-chunk" is a chunked-kernel
    /// notion, and the restored in-flight window must re-derive its
    /// closed-form resolve schedule correctly.
    #[test]
    fn snapshot_restore_lands_mid_chunk(
        seed in any::<u64>(),
        count in 96usize..320,
        cut in 1usize..95,
        pre_sizes in proptest::collection::vec(1usize..50, 1..4),
        post_sizes in proptest::collection::vec(1usize..50, 1..4),
    ) {
        let events = control_events(seed, count);
        let cut = cut.min(events.len() - 1);
        for kind in all_kinds() {
            let config = OnlineConfig::paper(kind);

            // Reference: the scalar lane over the whole stream.
            let reference = run_per_event(&config, &events);

            // Batched prefix, snapshot mid-stream, restore, batched rest.
            let mut pipe = OnlinePipeline::new(&config);
            let mut all = OutcomeBatch::new();
            let mut out = OutcomeBatch::new();
            let mut rest = &events[..cut];
            let mut cycle = pre_sizes.iter().copied().cycle();
            while !rest.is_empty() {
                let take = cycle.next().unwrap().min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                out.clear();
                pipe.run_batch_probed(&EventBatch::from(chunk), &mut out, &mut NoProbe);
                for o in out.iter() {
                    all.push(&o);
                }
                rest = tail;
            }

            let mut blob = Vec::new();
            pipe.save_state(&mut blob);
            let mut restored = OnlinePipeline::new(&config);
            prop_assert!(restored.load_state(&mut blob.as_slice()), "restore failed");

            let mut rest = &events[cut..];
            let mut cycle = post_sizes.iter().copied().cycle();
            while !rest.is_empty() {
                let take = cycle.next().unwrap().min(rest.len());
                let (chunk, tail) = rest.split_at(take);
                out.clear();
                restored.run_batch_probed(&EventBatch::from(chunk), &mut out, &mut NoProbe);
                for o in out.iter() {
                    all.push(&o);
                }
                rest = tail;
            }

            prop_assert_eq!(
                &reference,
                &all,
                "post-restore divergence for {}",
                OnlinePipeline::new(&config).estimator_name()
            );
        }
    }
}
