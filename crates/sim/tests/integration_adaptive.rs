//! Cross-lane differential matrix for every estimator kind.
//!
//! The proptest suite in `properties.rs` samples this space randomly;
//! this file walks it deterministically so a failure names the exact
//! cell: estimator kind × execution lane × batch sizing × snapshot cut.
//! Every cell must be *outcome*-identical (the `OutcomeBatch` SoA
//! compares equal) **and** *wire-byte*-identical (the packed flag /
//! uvarint-score / prob-bits image the serve plane streams is built
//! here from the batch and compared byte for byte) to the scalar
//! per-event oracle.
//!
//! Also hosts the canon-tag exhaustiveness guard: the `match` in
//! `variant_tag` has no wildcard arm, so adding an `EstimatorKind`
//! variant fails compilation here until the new kind is enrolled in
//! the matrix, tagged distinctly, and proven to snapshot-round-trip.

use paco::{AdaptiveMrtConfig, PacoConfig, PerBranchMrtConfig, ThresholdCountConfig};
use paco_sim::{EstimatorKind, NoProbe, OnlineConfig, OnlinePipeline, OutcomeBatch};
use paco_types::canon::Canon;
use paco_types::{DynInstr, EventBatch};
use paco_workloads::{BenchmarkId, Workload};

/// Every estimator kind, tuned so its interesting machinery actually
/// runs at integration-test stream lengths (refreshes, CUSUM latches,
/// early refreshes for the adaptive kind).
fn roster() -> Vec<(&'static str, EstimatorKind)> {
    vec![
        ("none", EstimatorKind::None),
        ("paco", EstimatorKind::Paco(PacoConfig::paper())),
        (
            "jrs",
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
        ),
        ("static", EstimatorKind::StaticMrt),
        (
            "perbranch",
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
        ),
        (
            "adaptive",
            EstimatorKind::AdaptiveMrt(
                AdaptiveMrtConfig::paper()
                    .with_refresh_period(400)
                    .with_detect_window(16),
            ),
        ),
    ]
}

/// Batch sizings for the matrix. The chunked kernel's internal lane is
/// 16 events wide, so these deliberately include non-multiples (scalar
/// tail), exact multiples (no tail), single-event batches (degenerate
/// chunks), and mixed cycles (partial chunks carried across batch
/// boundaries).
const SIZINGS: [&[usize]; 6] = [&[1], &[3, 5, 7], &[16], &[17], &[23, 1, 64], &[160]];

/// Snapshot cut points; none is a multiple of the 16-event lane, so
/// every cut lands mid-chunk for the chunked kernel.
const CUTS: [usize; 3] = [7, 33, 101];

fn control_events(seed: u64, count: usize) -> Vec<DynInstr> {
    let mut workload = BenchmarkId::Gzip.build(seed);
    let mut events = Vec::with_capacity(count);
    while events.len() < count {
        let instr = workload.next_instr();
        if instr.class.is_control() {
            events.push(instr);
        }
    }
    events
}

/// The serve-plane wire image of an outcome batch: count, then per
/// outcome the flag byte, uvarint score, and (when flagged) the
/// little-endian probability bits. Rebuilt here independently so lane
/// divergence that happens to cancel in `PartialEq` (it cannot, but
/// the wire image is the contract) is still caught at the byte level.
fn wire_bytes(batch: &OutcomeBatch) -> Vec<u8> {
    fn uvarint(out: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                break;
            }
            out.push(byte | 0x80);
        }
    }
    let mut out = Vec::new();
    uvarint(&mut out, batch.len() as u64);
    for i in 0..batch.len() {
        let flags = batch.flags()[i];
        out.push(flags);
        uvarint(&mut out, batch.scores()[i]);
        if flags & OutcomeBatch::FLAG_HAS_PROB != 0 {
            out.extend_from_slice(&batch.prob_bits()[i].to_le_bytes());
        }
    }
    out
}

fn run_per_event(config: &OnlineConfig, events: &[DynInstr]) -> OutcomeBatch {
    let mut pipe = OnlinePipeline::new(config);
    let mut out = OutcomeBatch::new();
    for instr in events {
        if let Some(outcome) = pipe.on_instr(instr) {
            out.push(&outcome);
        }
    }
    out
}

/// Feeds `events` through `pipe` in batches cycling through `sizes`,
/// appending outcomes to `all`.
fn drive(
    pipe: &mut OnlinePipeline,
    events: &[DynInstr],
    sizes: &[usize],
    chunked: bool,
    all: &mut OutcomeBatch,
) {
    let mut out = OutcomeBatch::new();
    let mut rest = events;
    let mut cycle = sizes.iter().copied().cycle();
    while !rest.is_empty() {
        let take = cycle.next().unwrap().min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        out.clear();
        if chunked {
            pipe.run_batch_probed(&EventBatch::from(chunk), &mut out, &mut NoProbe);
        } else {
            pipe.run_batch(&EventBatch::from(chunk), &mut out);
        }
        for o in out.iter() {
            all.push(&o);
        }
        rest = tail;
    }
}

/// kind × lane × sizing: both batched lanes equal the scalar oracle in
/// outcomes and in wire bytes, at every batch sizing in the matrix.
#[test]
fn differential_matrix_outcomes_and_wire_bytes() {
    let events = control_events(0x5eed_ad0b_e500_0001, 520);
    for (label, kind) in roster() {
        let config = OnlineConfig::paper(kind);
        let reference = run_per_event(&config, &events);
        let reference_wire = wire_bytes(&reference);
        for (si, sizes) in SIZINGS.iter().enumerate() {
            for chunked in [false, true] {
                let lane = if chunked { "chunked" } else { "fused" };
                let mut got = OutcomeBatch::new();
                drive(
                    &mut OnlinePipeline::new(&config),
                    &events,
                    sizes,
                    chunked,
                    &mut got,
                );
                assert_eq!(
                    reference, got,
                    "outcome divergence: kind={label} lane={lane} sizing#{si}={sizes:?}"
                );
                assert_eq!(
                    reference_wire,
                    wire_bytes(&got),
                    "wire-byte divergence: kind={label} lane={lane} sizing#{si}={sizes:?}"
                );
            }
        }
    }
}

/// kind × cut × lane: a snapshot taken mid-stream (always mid-chunk
/// for the chunked kernel — no cut is a multiple of 16) restores into
/// a fresh pipeline that finishes the stream identically, and the
/// restored blob re-saves byte-identically before any further events.
#[test]
fn differential_matrix_snapshot_cuts() {
    let events = control_events(0x5eed_ad0b_e500_0002, 360);
    for (label, kind) in roster() {
        let config = OnlineConfig::paper(kind);
        let reference = run_per_event(&config, &events);
        let reference_wire = wire_bytes(&reference);
        for cut in CUTS {
            for chunked in [false, true] {
                let lane = if chunked { "chunked" } else { "fused" };
                let mut all = OutcomeBatch::new();
                let mut pipe = OnlinePipeline::new(&config);
                drive(&mut pipe, &events[..cut], &[13, 4], chunked, &mut all);

                let mut blob = Vec::new();
                pipe.save_state(&mut blob);
                let mut restored = OnlinePipeline::new(&config);
                assert!(
                    restored.load_state(&mut blob.as_slice()),
                    "restore failed: kind={label} cut={cut}"
                );
                // Round-trip fidelity: the restored pipeline's own
                // snapshot must be the same bytes.
                let mut blob2 = Vec::new();
                restored.save_state(&mut blob2);
                assert_eq!(
                    blob, blob2,
                    "snapshot blob not idempotent: kind={label} cut={cut} lane={lane}"
                );

                drive(&mut restored, &events[cut..], &[9, 31], chunked, &mut all);
                assert_eq!(
                    reference, all,
                    "post-restore outcome divergence: kind={label} cut={cut} lane={lane}"
                );
                assert_eq!(
                    reference_wire,
                    wire_bytes(&all),
                    "post-restore wire divergence: kind={label} cut={cut} lane={lane}"
                );
            }
        }
    }
}

/// Canon variant byte for each kind. NO wildcard arm — adding an
/// `EstimatorKind` variant breaks this test at compile time until the
/// kind is enrolled here and in `roster()`.
fn variant_tag(kind: &EstimatorKind) -> u8 {
    match kind {
        EstimatorKind::None => 0,
        EstimatorKind::Paco(_) => 1,
        EstimatorKind::ThresholdCount(_) => 2,
        EstimatorKind::StaticMrt => 3,
        EstimatorKind::PerBranchMrt(_) => 4,
        EstimatorKind::AdaptiveMrt(_) => 5,
    }
}

/// Every kind canonicalizes under the `EstimatorKind` type tag with a
/// distinct variant byte, and the full canon streams are pairwise
/// distinct (config payloads included).
#[test]
fn canon_tags_are_distinct_and_exhaustive() {
    let kinds = roster();
    let mut streams = Vec::new();
    for (label, kind) in &kinds {
        let mut bytes = Vec::new();
        kind.canon(&mut bytes);
        assert_eq!(bytes[0], 0x21, "{label}: EstimatorKind type tag drifted");
        assert_eq!(
            bytes[1],
            variant_tag(kind),
            "{label}: canon variant byte drifted from the normative table"
        );
        streams.push((*label, bytes));
    }
    for i in 0..streams.len() {
        for j in i + 1..streams.len() {
            assert_ne!(
                streams[i].1, streams[j].1,
                "canon collision between {} and {}",
                streams[i].0, streams[j].0
            );
        }
    }
}

/// Every kind's pipeline snapshot round-trips: save → load into a
/// fresh pipeline → re-save is byte-identical, even after enough
/// events to populate estimator state.
#[test]
fn every_kind_snapshot_round_trips() {
    let events = control_events(0x5eed_ad0b_e500_0003, 200);
    for (label, kind) in roster() {
        let config = OnlineConfig::paper(kind);
        let mut pipe = OnlinePipeline::new(&config);
        let mut out = OutcomeBatch::new();
        pipe.run_batch(&EventBatch::from(events.as_slice()), &mut out);

        let mut blob = Vec::new();
        pipe.save_state(&mut blob);
        let mut restored = OnlinePipeline::new(&config);
        assert!(
            restored.load_state(&mut blob.as_slice()),
            "{label}: load_state rejected its own save_state blob"
        );
        let mut blob2 = Vec::new();
        restored.save_state(&mut blob2);
        assert_eq!(
            blob, blob2,
            "{label}: snapshot round-trip not byte-identical"
        );
    }
}
