//! Configuration-level selection of a path confidence estimator.

use paco::{
    AdaptiveMrtConfig, BranchFetchInfo, BranchToken, ConfidenceScore, PacoConfig,
    PathConfidenceEstimator, PerBranchMrtConfig, ThresholdCountConfig,
};
use paco_types::canon::Canon;

/// Which path confidence estimator a simulated thread uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// No estimator (confidence hooks become no-ops).
    None,
    /// The PaCo predictor.
    Paco(PacoConfig),
    /// Conventional threshold-and-count.
    ThresholdCount(ThresholdCountConfig),
    /// Appendix-A static MRT (profile-derived fixed encodings).
    StaticMrt,
    /// Appendix-A per-branch MRT.
    PerBranchMrt(PerBranchMrtConfig),
    /// Change-point-aware MRT: CUSUM on the rolling mispredict rate
    /// triggers early refreshes (with an optional calibration-weighted
    /// static blend).
    AdaptiveMrt(AdaptiveMrtConfig),
}

impl EstimatorKind {
    /// Instantiates the estimator (boxed, for the cycle-level machine).
    ///
    /// Delegates to the pipeline's `EstimatorLane` so the
    /// kind→constructor mapping exists exactly once — the machine and
    /// the online pipeline cannot drift apart on what a kind means.
    pub fn build(&self) -> Box<dyn PathConfidenceEstimator> {
        crate::online::EstimatorLane::new(self).into_boxed()
    }
}

impl Canon for EstimatorKind {
    fn canon(&self, out: &mut Vec<u8>) {
        out.push(0x21); // type tag
        match self {
            EstimatorKind::None => out.push(0),
            EstimatorKind::Paco(cfg) => {
                out.push(1);
                cfg.canon(out);
            }
            EstimatorKind::ThresholdCount(cfg) => {
                out.push(2);
                cfg.canon(out);
            }
            EstimatorKind::StaticMrt => out.push(3),
            EstimatorKind::PerBranchMrt(cfg) => {
                out.push(4);
                cfg.canon(out);
            }
            EstimatorKind::AdaptiveMrt(cfg) => {
                out.push(5);
                cfg.canon(out);
            }
        }
    }
}

/// An estimator that tracks nothing and always reports certainty.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullEstimator;

impl PathConfidenceEstimator for NullEstimator {
    #[inline]
    fn on_fetch(&mut self, _info: BranchFetchInfo) -> BranchToken {
        BranchToken::empty()
    }

    #[inline]
    fn on_resolve(&mut self, _token: BranchToken, _mispredicted: bool) {}

    #[inline]
    fn on_squash(&mut self, _token: BranchToken) {}

    #[inline]
    fn score(&self) -> ConfidenceScore {
        ConfidenceScore(0)
    }

    fn name(&self) -> String {
        "none".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        let kinds = [
            EstimatorKind::None,
            EstimatorKind::Paco(PacoConfig::paper()),
            EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            EstimatorKind::StaticMrt,
            EstimatorKind::PerBranchMrt(PerBranchMrtConfig::paper()),
            EstimatorKind::AdaptiveMrt(AdaptiveMrtConfig::paper()),
        ];
        let names: Vec<String> = kinds.iter().map(|k| k.build().name()).collect();
        assert_eq!(
            names,
            [
                "none",
                "PaCo",
                "JRS-t3",
                "StaticMRT",
                "PerBranchMRT",
                "AdaptiveMRT"
            ]
        );
    }

    #[test]
    fn null_estimator_is_inert() {
        let mut e = NullEstimator;
        let t = e.on_fetch(BranchFetchInfo::non_conditional());
        e.on_resolve(t, true);
        assert_eq!(e.score(), ConfidenceScore(0));
        assert!(e.goodpath_probability().is_none());
    }
}
