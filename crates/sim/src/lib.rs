//! Cycle-level out-of-order superscalar / SMT simulator with wrong-path
//! modeling.
//!
//! This crate is the timing substrate of the PaCo reproduction: a
//! trace-driven model of the paper's 4-wide out-of-order processor
//! (Table 6) and its 8-wide 2-thread SMT variant (Table 11). It models:
//!
//! * a front end with branch prediction (tournament + BTB + RAS +
//!   indirect), JRS confidence reads, path-confidence hooks, I-cache
//!   stalls, **pipeline gating** and **SMT fetch prioritization**;
//! * a dynamically shared reorder buffer and scheduler, general-purpose
//!   functional units, and a two-level cache hierarchy;
//! * **wrong-path execution**: mispredicted branches redirect fetch into
//!   synthetic wrong-path streams whose instructions consume real
//!   resources and allocate real confidence state until recovery;
//! * a goodpath **oracle** and per-instance confidence sampling, exactly
//!   as the paper's reliability-diagram methodology requires.
//!
//! # Examples
//!
//! ```
//! use paco_sim::{MachineBuilder, SimConfig, EstimatorKind, GatingPolicy};
//! use paco::PacoConfig;
//! use paco_types::Probability;
//! use paco_workloads::BenchmarkId;
//!
//! // Pipeline gating at a 20% goodpath-probability target (paper §5.1).
//! let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
//!     .thread(
//!         Box::new(BenchmarkId::Gzip.build(1)),
//!         EstimatorKind::Paco(PacoConfig::paper()),
//!     )
//!     .gating(GatingPolicy::paco_gate(Probability::new(0.2).unwrap()))
//!     .build();
//! let stats = machine.run(10_000);
//! assert!(stats.threads[0].retired >= 10_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod config;
mod estimator_kind;
mod machine;
mod online;
mod policy;
mod stats;

pub use batch::OutcomeBatch;
pub use cache::{Cache, CacheConfig, CacheHierarchy};
pub use config::SimConfig;
pub use estimator_kind::{EstimatorKind, NullEstimator};
pub use machine::{Machine, MachineBuilder, TraceSink};
pub use online::{HotPass, NoProbe, OnlineConfig, OnlineOutcome, OnlinePipeline, PassProbe};
pub use policy::{FetchPolicy, GatingPolicy};
pub use stats::{MachineStats, ThreadStats, PROB_BINS, SCORE_BINS};
