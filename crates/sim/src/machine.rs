//! The cycle-level out-of-order machine.
//!
//! A trace-driven model of the paper's superscalar: per-cycle fetch (with
//! I-cache stalls, branch prediction, confidence hooks and gating), a
//! front-end pipe of configurable depth, a dynamically shared ROB and
//! scheduler, general-purpose FUs with data-cache latencies, in-order
//! retirement, and full wrong-path execution — when a branch mispredicts,
//! fetch follows the bogus target into a synthetic wrong-path stream whose
//! instructions occupy real resources (and whose branches allocate real
//! confidence state) until the mispredicted branch resolves.

use std::collections::VecDeque;

use paco::{BranchFetchInfo, BranchToken, PathConfidenceEstimator};
use paco_branch::{
    Btb, DirectionPredictor, IndirectPredictor, Mdc, MdcIndex, MdcTable, ReturnAddressStack,
    TournamentPredictor,
};
use paco_types::{ControlKind, Cycle, DynInstr, GlobalHistory, InstrClass, Pc, SplitMix64};
use paco_workloads::{Workload, WrongPathGen};

use crate::{
    CacheHierarchy, EstimatorKind, FetchPolicy, GatingPolicy, MachineStats, SimConfig, ThreadStats,
};

/// Size of the completion event wheel; must exceed the largest possible
/// instruction latency.
const WHEEL: usize = 256;

#[derive(Debug, Clone)]
struct CtrlState {
    kind: ControlKind,
    mispredicted: bool,
    predicted_taken: bool,
    actual_taken: bool,
    actual_target: Pc,
    pc: Pc,
    hist_before: u64,
    mdc_index: Option<MdcIndex>,
    mdc_at_fetch: Option<Mdc>,
    ras_checkpoint: (usize, usize),
}

#[derive(Debug, Clone)]
struct Slot {
    /// Globally unique slot id, guarding event/scheduler references against
    /// sequence-number reuse after squashes.
    uid: u64,
    seq: u64,
    class: InstrClass,
    deps: [u32; 2],
    mem_addr: Option<u64>,
    on_goodpath: bool,
    issued: bool,
    done: bool,
    token: Option<BranchToken>,
    ctrl: Option<CtrlState>,
}

#[derive(Debug)]
enum PathState {
    Good,
    Bad { gen: WrongPathGen },
}

/// Observer of a thread's goodpath instruction stream, for trace
/// recording (the `paco-trace` crate's `TraceRecorder` implements this
/// via the blanket closure impl).
///
/// The sink sees every goodpath instruction the thread pulls from its
/// workload, in program order. Because wrong-path instructions are
/// synthesized separately (never pulled from the workload) and goodpath
/// instructions are never squashed, this pull order **is** the retired
/// instruction order; the stream additionally includes the handful of
/// instructions still in flight (or peeked for an I-cache probe) when the
/// run stops — exactly the suffix a bit-exact replay of the run needs.
///
/// Sinks are `Send` (like workloads and estimators) so that a machine with
/// a recording sink attached can run on an experiment-engine worker
/// thread.
pub trait TraceSink: Send {
    /// Called once per goodpath instruction, in program order.
    fn record(&mut self, instr: &DynInstr);
}

impl<F: FnMut(&DynInstr) + Send> TraceSink for F {
    fn record(&mut self, instr: &DynInstr) {
        self(instr)
    }
}

struct Thread {
    workload: Box<dyn Workload>,
    estimator: Box<dyn PathConfidenceEstimator>,
    hist: GlobalHistory,
    ras: ReturnAddressStack,
    path: PathState,
    pending: Option<DynInstr>,
    front: VecDeque<(Cycle, Slot)>,
    rob: VecDeque<Slot>,
    rob_front_seq: u64,
    next_seq: u64,
    fetch_stall_until: Cycle,
    in_flight: usize,
    wp_seeds: SplitMix64,
    stats: ThreadStats,
    sink: Option<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("workload", &self.workload.name())
            .field("in_flight", &self.in_flight)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl Thread {
    /// Pulls the next goodpath instruction from the workload, teeing it
    /// into the trace sink when one is attached.
    fn pull_instr(&mut self) -> DynInstr {
        let instr = self.workload.next_instr();
        if let Some(sink) = &mut self.sink {
            sink.record(&instr);
        }
        instr
    }

    fn slot_by_seq(&self, seq: u64) -> Option<&Slot> {
        if seq < self.rob_front_seq {
            return None;
        }
        self.rob.get((seq - self.rob_front_seq) as usize)
    }

    fn slot_by_seq_mut(&mut self, seq: u64) -> Option<&mut Slot> {
        if seq < self.rob_front_seq {
            return None;
        }
        self.rob.get_mut((seq - self.rob_front_seq) as usize)
    }

    /// Whether the dependency at distance `d` from `seq` is satisfied.
    fn dep_ready(&self, seq: u64, d: u32) -> bool {
        if d == 0 {
            return true;
        }
        match seq.checked_sub(d as u64) {
            None => true,
            Some(dep_seq) => match self.slot_by_seq(dep_seq) {
                None => true, // retired or squashed
                Some(s) => s.done,
            },
        }
    }

    /// The PC the fetch unit would fetch next (drives the I-cache probe).
    fn peek_fetch_pc(&mut self) -> Pc {
        match &self.path {
            PathState::Good => {
                if self.pending.is_none() {
                    self.pending = Some(self.pull_instr());
                }
                self.pending.as_ref().unwrap().pc
            }
            PathState::Bad { gen } => gen.cursor(),
        }
    }

    fn on_goodpath(&self) -> bool {
        matches!(self.path, PathState::Good)
    }
}

/// The simulated machine: one or more hardware threads sharing the
/// pipeline, predictors and cache hierarchy.
///
/// # Examples
///
/// ```
/// use paco_sim::{Machine, MachineBuilder, SimConfig, EstimatorKind, GatingPolicy};
/// use paco::PacoConfig;
/// use paco_workloads::BenchmarkId;
///
/// let mut machine = MachineBuilder::new(SimConfig::paper_4wide())
///     .thread(Box::new(BenchmarkId::Gzip.build(1)), EstimatorKind::Paco(PacoConfig::paper()))
///     .seed(7)
///     .build();
/// let stats = machine.run(20_000);
/// assert!(stats.threads[0].retired >= 20_000);
/// assert!(stats.ipc(0) > 0.3);
/// ```
pub struct Machine {
    config: SimConfig,
    cycle: Cycle,
    stats_since: Cycle,
    predictor: TournamentPredictor,
    btb: Btb,
    indirect: IndirectPredictor,
    mdc: MdcTable,
    caches: CacheHierarchy,
    threads: Vec<Thread>,
    rob_free: usize,
    sched_free: usize,
    sched: VecDeque<(usize, u64, u64)>,
    wheel: Vec<Vec<(usize, u64, u64)>>,
    next_uid: u64,
    gating: GatingPolicy,
    fetch_policy: FetchPolicy,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cycle", &self.cycle)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// A thread specification accumulated by the builder: workload,
/// estimator, and optional trace sink.
type ThreadSpec = (Box<dyn Workload>, EstimatorKind, Option<Box<dyn TraceSink>>);

/// Builder for [`Machine`].
pub struct MachineBuilder {
    config: SimConfig,
    threads: Vec<ThreadSpec>,
    gating: GatingPolicy,
    fetch_policy: FetchPolicy,
    seed: u64,
}

impl std::fmt::Debug for MachineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineBuilder")
            .field("config", &self.config)
            .field("threads", &self.threads.len())
            .field("gating", &self.gating)
            .field("fetch_policy", &self.fetch_policy)
            .field("seed", &self.seed)
            .finish()
    }
}

impl MachineBuilder {
    /// Starts a builder for the given machine configuration.
    pub fn new(config: SimConfig) -> Self {
        MachineBuilder {
            config,
            threads: Vec::new(),
            gating: GatingPolicy::None,
            fetch_policy: FetchPolicy::ICount,
            seed: 1,
        }
    }

    /// Adds a hardware thread running `workload` with the given estimator.
    pub fn thread(mut self, workload: Box<dyn Workload>, estimator: EstimatorKind) -> Self {
        self.threads.push((workload, estimator, None));
        self
    }

    /// Attaches a trace sink to the most recently added thread; the sink
    /// observes that thread's goodpath instruction stream (see
    /// [`TraceSink`]).
    ///
    /// # Panics
    ///
    /// Panics if no thread has been added yet.
    pub fn trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        let slot = &mut self
            .threads
            .last_mut()
            .expect("trace_sink requires a preceding .thread(..) call")
            .2;
        *slot = Some(sink);
        self
    }

    /// Sets the gating policy (applies to every thread).
    pub fn gating(mut self, gating: GatingPolicy) -> Self {
        self.gating = gating;
        self
    }

    /// Sets the SMT fetch policy.
    pub fn fetch_policy(mut self, policy: FetchPolicy) -> Self {
        self.fetch_policy = policy;
        self
    }

    /// Sets the machine seed (wrong-path streams etc.).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if no threads were added or more threads than
    /// `config.threads` were added.
    pub fn build(self) -> Machine {
        assert!(
            !self.threads.is_empty(),
            "machine needs at least one thread"
        );
        assert!(
            self.threads.len() <= self.config.threads,
            "more workloads than configured hardware threads"
        );
        let mut seeder = SplitMix64::new(self.seed);
        let threads = self
            .threads
            .into_iter()
            .map(|(workload, est, sink)| Thread {
                workload,
                estimator: est.build(),
                hist: GlobalHistory::new(self.config.tournament.history_bits.max(8)),
                ras: ReturnAddressStack::new(self.config.ras_depth),
                path: PathState::Good,
                pending: None,
                front: VecDeque::new(),
                rob: VecDeque::new(),
                rob_front_seq: 0,
                next_seq: 0,
                fetch_stall_until: 0,
                in_flight: 0,
                wp_seeds: seeder.fork(),
                stats: ThreadStats::new(),
                sink,
            })
            .collect();
        Machine {
            predictor: TournamentPredictor::new(self.config.tournament),
            btb: Btb::new(self.config.btb),
            indirect: IndirectPredictor::new(1024),
            mdc: MdcTable::new(self.config.confidence),
            caches: CacheHierarchy::paper(),
            threads,
            rob_free: self.config.rob_entries,
            sched_free: self.config.scheduler_entries,
            sched: VecDeque::new(),
            wheel: vec![Vec::new(); WHEEL],
            gating: self.gating,
            fetch_policy: self.fetch_policy,
            cycle: 0,
            stats_since: 0,
            next_uid: 0,
            config: self.config,
        }
    }
}

impl Machine {
    /// Runs until every thread has retired at least `instructions`
    /// goodpath instructions (or the configured cycle cap is hit).
    /// Returns the accumulated statistics.
    pub fn run(&mut self, instructions: u64) -> MachineStats {
        while self.threads.iter().any(|t| t.stats.retired < instructions)
            && self.cycle < self.config.max_cycles
        {
            self.step();
        }
        self.stats()
    }

    /// Runs for a fixed number of cycles.
    pub fn run_cycles(&mut self, cycles: u64) -> MachineStats {
        for _ in 0..cycles {
            self.step();
        }
        self.stats()
    }

    /// A snapshot of the statistics accumulated since construction or the
    /// last [`reset_stats`](Self::reset_stats) call.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            cycles: self.cycle - self.stats_since,
            threads: self.threads.iter().map(|t| t.stats.clone()).collect(),
        }
    }

    /// Zeroes all statistics while preserving microarchitectural state
    /// (predictor tables, caches, MRT encodings, in-flight instructions).
    ///
    /// Mirrors the paper's methodology of fast-forwarding through the
    /// initialization phase before measuring: warm the machine up with
    /// [`run`](Self::run), reset, then measure.
    pub fn reset_stats(&mut self) {
        self.stats_since = self.cycle;
        for t in &mut self.threads {
            t.stats = ThreadStats::new();
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Detaches and returns thread `tid`'s trace sink, if one was
    /// attached, so the caller can finalize it (flush buffered chunks,
    /// patch the trace header) after a run.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn take_trace_sink(&mut self, tid: usize) -> Option<Box<dyn TraceSink>> {
        self.threads[tid].sink.take()
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.complete_stage();
        self.retire_stage();
        self.issue_stage();
        self.dispatch_stage();
        self.fetch_stage();
        for t in &mut self.threads {
            t.estimator.tick(1);
        }
        self.cycle += 1;
    }

    // ---------------------------------------------------------------- //
    //  Completion: instructions finishing execution this cycle.        //
    // ---------------------------------------------------------------- //
    fn complete_stage(&mut self) {
        let bucket = (self.cycle % WHEEL as u64) as usize;
        let events = std::mem::take(&mut self.wheel[bucket]);
        for (tid, seq, uid) in events {
            let Some(slot) = self.threads[tid].slot_by_seq_mut(seq) else {
                continue; // squashed while in flight
            };
            if slot.uid != uid {
                continue; // stale event: the seq was reused after a squash
            }
            slot.done = true;
            let token = slot.token.take();
            let on_goodpath = slot.on_goodpath;
            let ctrl = slot.ctrl.clone();

            if let Some(ctrl) = ctrl {
                if on_goodpath {
                    if let Some(token) = token {
                        self.threads[tid]
                            .estimator
                            .on_resolve(token, ctrl.mispredicted);
                    }
                    // The JRS MDC table trains at branch resolution, like
                    // the MRT (paper Fig. 5: "Branch Exec Info (from
                    // backend)").
                    if let Some(idx) = ctrl.mdc_index {
                        self.mdc.update(idx, !ctrl.mispredicted);
                    }
                    if ctrl.mispredicted {
                        self.recover(tid, seq, &ctrl);
                    }
                } else if let Some(token) = token {
                    // Wrong-path branches leave the window without an
                    // architected outcome: remove their contribution
                    // without training.
                    self.threads[tid].estimator.on_squash(token);
                }
            }
        }
    }

    /// Squashes everything younger than `seq` in thread `tid` and
    /// redirects fetch to the goodpath.
    fn recover(&mut self, tid: usize, seq: u64, ctrl: &CtrlState) {
        let redirect_at = self.cycle + self.config.redirect_penalty;
        let t = &mut self.threads[tid];
        let mut rob_reclaimed = 0;
        let mut sched_reclaimed = 0;

        // Squash ROB suffix.
        while t.rob.back().map(|s| s.seq > seq).unwrap_or(false) {
            let mut s = t.rob.pop_back().unwrap();
            if let Some(token) = s.token.take() {
                t.estimator.on_squash(token);
            }
            rob_reclaimed += 1;
            if !s.issued {
                sched_reclaimed += 1;
            }
            t.in_flight = t.in_flight.saturating_sub(1);
        }
        // Squash the entire front-end pipe (all younger than the branch).
        while let Some((_, mut s)) = t.front.pop_back() {
            if let Some(token) = s.token.take() {
                t.estimator.on_squash(token);
            }
            t.in_flight = t.in_flight.saturating_sub(1);
        }
        // Repair speculative state.
        t.hist
            .restore((ctrl.hist_before << 1) | ctrl.actual_taken as u64);
        t.ras.restore(ctrl.ras_checkpoint);
        t.path = PathState::Good;
        t.fetch_stall_until = t.fetch_stall_until.max(redirect_at);
        // Rewind the sequence counter: squashed seqs are dead, and reusing
        // them keeps each thread's ROB contiguous in seq (which both the
        // slot lookup and the workload's dependency distances rely on).
        t.next_seq = seq + 1;
        // `pending` (the peeked-but-unfetched goodpath successor) survives
        // recovery: it is exactly where fetch must resume.
        self.rob_free += rob_reclaimed;
        self.sched_free += sched_reclaimed;
        // Purge squashed scheduler entries eagerly: their seqs may be
        // reused by post-recovery instructions.
        self.sched.retain(|&(st, ss, _)| st != tid || ss <= seq);
    }

    // ---------------------------------------------------------------- //
    //  Retirement: in-order, up to `width` per cycle, shared.           //
    // ---------------------------------------------------------------- //
    fn retire_stage(&mut self) {
        let mut budget = self.config.width;
        let nthreads = self.threads.len();
        let mut made_progress = true;
        while budget > 0 && made_progress {
            made_progress = false;
            for tid in 0..nthreads {
                if budget == 0 {
                    break;
                }
                let head_done = self.threads[tid]
                    .rob
                    .front()
                    .map(|s| s.done)
                    .unwrap_or(false);
                if !head_done {
                    continue;
                }
                let t = &mut self.threads[tid];
                let slot = t.rob.pop_front().unwrap();
                t.rob_front_seq = slot.seq + 1;
                t.in_flight = t.in_flight.saturating_sub(1);
                self.rob_free += 1;
                budget -= 1;
                made_progress = true;

                debug_assert!(slot.on_goodpath, "wrong-path instruction retired");
                t.stats.retired += 1;
                if let Some(ctrl) = slot.ctrl {
                    self.train_on_retire(tid, &ctrl);
                }
            }
        }
    }

    fn train_on_retire(&mut self, tid: usize, ctrl: &CtrlState) {
        let stats = &mut self.threads[tid].stats;
        stats.control_retired += 1;
        stats.control_mispredicted += ctrl.mispredicted as u64;
        match ctrl.kind {
            ControlKind::Conditional => {
                stats.cond_retired += 1;
                stats.cond_mispredicted += ctrl.mispredicted as u64;
                if let Some(mdc) = ctrl.mdc_at_fetch {
                    stats.mdc_retired[mdc.bucket()] += 1;
                    stats.mdc_mispredicted[mdc.bucket()] += ctrl.mispredicted as u64;
                }
                self.predictor.update(
                    ctrl.pc,
                    ctrl.hist_before,
                    ctrl.actual_taken,
                    ctrl.predicted_taken,
                );
            }
            ControlKind::Indirect => {
                self.indirect.update(ctrl.pc, ctrl.actual_target);
            }
            ControlKind::Jump | ControlKind::Call | ControlKind::Return => {}
        }
        if ctrl.actual_taken {
            self.btb.update(ctrl.pc, ctrl.actual_target);
        }
    }

    // ---------------------------------------------------------------- //
    //  Issue: oldest-first from the shared scheduler.                   //
    // ---------------------------------------------------------------- //
    fn issue_stage(&mut self) {
        let mut issued = 0;
        let mut i = 0;
        while i < self.sched.len() && issued < self.config.fu_count {
            let (tid, seq, uid) = self.sched[i];
            let Some(slot) = self.threads[tid].slot_by_seq(seq) else {
                self.sched.remove(i);
                continue;
            };
            if slot.uid != uid {
                self.sched.remove(i);
                continue;
            }
            debug_assert!(!slot.issued);
            let deps = slot.deps;
            let ready = self.threads[tid].dep_ready(seq, deps[0])
                && self.threads[tid].dep_ready(seq, deps[1]);
            if !ready {
                i += 1;
                continue;
            }
            let class = slot.class;
            let mem = slot.mem_addr;
            let latency = match class {
                InstrClass::Alu | InstrClass::Nop => 1,
                InstrClass::MulDiv => self.config.muldiv_latency,
                InstrClass::Store => {
                    if let Some(addr) = mem {
                        self.caches.l1d.access(addr);
                    }
                    1
                }
                InstrClass::Load => match mem {
                    Some(addr) => self.caches.data_latency(addr),
                    None => 2,
                },
                InstrClass::Control(_) => 1,
            };
            // Commit the issue.
            let on_goodpath = self.threads[tid].on_goodpath();
            let slot = self.threads[tid].slot_by_seq_mut(seq).unwrap();
            slot.issued = true;
            let was_goodpath_instr = slot.on_goodpath;
            let done = self.cycle + latency.max(1);
            self.wheel[(done % WHEEL as u64) as usize].push((tid, seq, uid));
            self.sched.remove(i);
            self.sched_free += 1;
            issued += 1;

            let t = &mut self.threads[tid];
            t.stats.executed += 1;
            t.stats.executed_badpath += (!was_goodpath_instr) as u64;
            // Execute-event confidence instance (paper §4.3 footnote 6).
            let prob = t.estimator.goodpath_probability().map(|p| p.value());
            let score = t.estimator.score().0;
            t.stats.sample_instance(prob, score, on_goodpath);
        }
    }

    // ---------------------------------------------------------------- //
    //  Dispatch: front-end pipe into ROB + scheduler.                   //
    // ---------------------------------------------------------------- //
    fn dispatch_stage(&mut self) {
        for tid in 0..self.threads.len() {
            let mut budget = self.config.width;
            while budget > 0 && self.rob_free > 0 && self.sched_free > 0 {
                let ready = self.threads[tid]
                    .front
                    .front()
                    .map(|(c, _)| *c <= self.cycle)
                    .unwrap_or(false);
                if !ready {
                    break;
                }
                let (_, slot) = self.threads[tid].front.pop_front().unwrap();
                let seq = slot.seq;
                let uid = slot.uid;
                let t = &mut self.threads[tid];
                if t.rob.is_empty() {
                    t.rob_front_seq = seq;
                }
                t.rob.push_back(slot);
                self.rob_free -= 1;
                self.sched_free -= 1;
                self.sched.push_back((tid, seq, uid));
                budget -= 1;
            }
        }
    }

    // ---------------------------------------------------------------- //
    //  Fetch.                                                           //
    // ---------------------------------------------------------------- //
    fn fetch_stage(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        // Offer the fetch port to threads in policy-priority order; the
        // first thread able to fetch this cycle takes it.
        let observations: Vec<(usize, paco::ConfidenceScore)> = self
            .threads
            .iter()
            .map(|t| (t.in_flight, t.estimator.score()))
            .collect();
        let order = if self.threads.len() == 1 {
            vec![0]
        } else {
            self.fetch_policy.priority_order(&observations, self.cycle)
        };

        let front_cap = self.config.width * self.config.frontend_depth.max(1) as usize;
        // Fetch-slot sharing (ICOUNT.2.N style): threads claim groups in
        // priority order until the cycle's fetch width is spent. The
        // higher-priority (more confident / emptier) thread gets the first
        // and usually larger share; the other thread fills leftover slots,
        // so prioritization biases bandwidth without starving anyone —
        // this is how Luo-style confidence prioritization allocates "more
        // fetch bandwidth" rather than all of it.
        let mut remaining = self.config.width;
        for tid in order {
            if remaining == 0 {
                break;
            }
            if self.cycle < self.threads[tid].fetch_stall_until {
                continue;
            }
            // Gating decision (per thread).
            let score = self.threads[tid].estimator.score();
            let width = self.gating.allowed_width(score, remaining);
            if width == 0 {
                self.threads[tid].stats.gated_cycles += 1;
                continue;
            }
            if self.threads[tid].front.len() >= front_cap {
                continue;
            }
            // I-cache probe for this thread's fetch group.
            let fetch_pc = self.threads[tid].peek_fetch_pc();
            let icache_stall = self.caches.fetch_latency(fetch_pc.addr());
            if icache_stall > 0 {
                self.threads[tid].fetch_stall_until = self.cycle + icache_stall;
                continue;
            }
            remaining -= self.fetch_group(tid, width, front_cap);
        }
    }

    /// Fetches up to `width` instructions for thread `tid`; returns how
    /// many were fetched.
    fn fetch_group(&mut self, tid: usize, width: usize, front_cap: usize) -> usize {
        let ready_at = self.cycle + self.config.frontend_depth;
        let mut fetched = 0;
        while fetched < width && self.threads[tid].front.len() < front_cap {
            let on_goodpath = self.threads[tid].on_goodpath();
            let instr = {
                let t = &mut self.threads[tid];
                if on_goodpath {
                    match t.pending.take() {
                        Some(i) => i,
                        None => t.pull_instr(),
                    }
                } else {
                    match &mut t.path {
                        PathState::Bad { gen } => gen.next_instr(),
                        PathState::Good => unreachable!(),
                    }
                }
            };
            let seq = self.threads[tid].next_seq;
            self.threads[tid].next_seq += 1;
            let uid = self.next_uid;
            self.next_uid += 1;

            let mut slot = Slot {
                uid,
                seq,
                class: instr.class,
                deps: instr.deps,
                mem_addr: instr.mem.map(|m| m.addr),
                on_goodpath,
                issued: false,
                done: false,
                token: None,
                ctrl: None,
            };

            let mut ends_group = false;
            if let InstrClass::Control(kind) = instr.class {
                let (ctrl, token, predicted_taken) =
                    self.process_control_fetch(tid, kind, &instr, on_goodpath);
                ends_group = predicted_taken;
                slot.token = token;
                slot.ctrl = Some(ctrl);
            }

            let t = &mut self.threads[tid];
            t.stats.fetched += 1;
            t.stats.fetched_badpath += (!on_goodpath) as u64;
            // Fetch-event confidence instance.
            let prob = t.estimator.goodpath_probability().map(|p| p.value());
            let sc = t.estimator.score().0;
            t.stats.sample_instance(prob, sc, on_goodpath);

            t.front.push_back((ready_at, slot));
            t.in_flight += 1;
            fetched += 1;
            if ends_group {
                break;
            }
        }
        fetched
    }

    /// Handles prediction, confidence allocation and path bookkeeping for a
    /// fetched control instruction. Returns the control state, the
    /// confidence token, and whether fetch was redirected (ends the group).
    fn process_control_fetch(
        &mut self,
        tid: usize,
        kind: ControlKind,
        instr: &DynInstr,
        on_goodpath: bool,
    ) -> (CtrlState, Option<BranchToken>, bool) {
        let pc = instr.pc;
        let hist_before = self.threads[tid].hist.bits();

        let (predicted_taken, mispredicted, wrong_target, mdc_index, mdc_at_fetch, info) =
            match kind {
                ControlKind::Conditional => {
                    let predicted = self.predictor.predict(pc, hist_before);
                    let idx = self.mdc.index(pc, hist_before, predicted);
                    let mdc = self.mdc.read(idx);
                    let info =
                        BranchFetchInfo::conditional_keyed(mdc, pc.table_hash() ^ hist_before);
                    let mispred = on_goodpath && predicted != instr.taken;
                    let wrong = if predicted { instr.target } else { pc.next() };
                    (predicted, mispred, wrong, Some(idx), Some(mdc), info)
                }
                ControlKind::Jump | ControlKind::Call => (
                    true,
                    false,
                    instr.target,
                    None,
                    None,
                    BranchFetchInfo::non_conditional(),
                ),
                ControlKind::Return => {
                    let predicted_target = self.threads[tid].ras.pop();
                    let mispred = on_goodpath && predicted_target != Some(instr.target);
                    (
                        true,
                        mispred,
                        predicted_target.unwrap_or_else(|| pc.next()),
                        None,
                        None,
                        BranchFetchInfo::non_conditional(),
                    )
                }
                ControlKind::Indirect => {
                    let predicted_target = self.indirect.predict(pc);
                    let mispred = on_goodpath && predicted_target != Some(instr.target);
                    (
                        true,
                        mispred,
                        predicted_target.unwrap_or_else(|| pc.next()),
                        None,
                        None,
                        BranchFetchInfo::non_conditional(),
                    )
                }
            };

        // Speculative state updates.
        if kind == ControlKind::Conditional {
            self.threads[tid].hist.push(predicted_taken);
        }
        if kind == ControlKind::Call {
            self.threads[tid].ras.push(pc.next());
        }
        let ras_checkpoint = self.threads[tid].ras.checkpoint();

        // Confidence token.
        let token = Some(self.threads[tid].estimator.on_fetch(info));

        // Fetch-path bookkeeping.
        if on_goodpath {
            if mispredicted {
                let seed = self.threads[tid].wp_seeds.next_u64();
                let gen = self.threads[tid].workload.wrong_path(wrong_target, seed);
                self.threads[tid].path = PathState::Bad { gen };
            }
            // On the goodpath the trace itself continues at the actual
            // successor; nothing to redirect.
        } else if let PathState::Bad { gen } = &mut self.threads[tid].path {
            // Follow the prediction down the wrong path: the generator's
            // synthetic taken-target stands in for the BTB's prediction.
            if predicted_taken {
                gen.redirect(instr.target);
            }
        }

        // The actual direction the front end follows: a predicted-taken
        // control (or a goodpath-actually-taken one the predictor got
        // right) redirects the group.
        let redirects = predicted_taken || (on_goodpath && instr.taken);

        let ctrl = CtrlState {
            kind,
            mispredicted,
            predicted_taken,
            actual_taken: instr.taken,
            actual_target: instr.target,
            pc,
            hist_before,
            mdc_index,
            mdc_at_fetch,
            ras_checkpoint,
        };
        (ctrl, token, redirects)
    }
}

// The experiment engine fans simulations out across threads; every trait
// object a machine holds (workload, estimator, trace sink) carries a
// `Send` supertrait, so the machine as a whole must stay `Send`. This
// fails to compile if a non-`Send` field is ever introduced.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
    assert_send::<MachineBuilder>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use paco::{PacoConfig, ThresholdCountConfig};
    use paco_workloads::BenchmarkId;

    fn small_machine(est: EstimatorKind) -> Machine {
        MachineBuilder::new(SimConfig::paper_4wide())
            .thread(Box::new(BenchmarkId::Gzip.build(3)), est)
            .seed(11)
            .build()
    }

    #[test]
    fn retires_requested_instructions() {
        let mut m = small_machine(EstimatorKind::None);
        let stats = m.run(5_000);
        assert!(stats.threads[0].retired >= 5_000);
        assert!(stats.cycles > 0);
        let ipc = stats.ipc(0);
        assert!(ipc > 0.2 && ipc <= 4.0, "ipc {ipc}");
    }

    #[test]
    fn wrong_path_instructions_are_fetched_and_squashed() {
        let mut m = small_machine(EstimatorKind::None);
        let stats = m.run(30_000);
        let t = &stats.threads[0];
        assert!(
            t.fetched_badpath > 0,
            "mispredicts must cause wrong-path fetch"
        );
        assert!(
            t.executed_badpath > 0,
            "some wrong-path instrs must execute"
        );
        assert!(t.fetched > t.retired);
        // Badpath never retires: retired == goodpath instruction count.
        assert!(t.fetched - t.fetched_badpath >= t.retired);
    }

    #[test]
    fn mispredict_rates_match_workload_regime() {
        let mut m = small_machine(EstimatorKind::None);
        let stats = m.run(200_000);
        let rate = stats.threads[0].cond_mispredict_pct().unwrap();
        // gzip models ~3.2% conditional mispredicts.
        assert!(rate > 0.5 && rate < 8.0, "rate {rate}");
    }

    #[test]
    fn paco_estimator_tokens_balance() {
        // After draining the pipeline, the estimator's score returns to 0.
        let mut m = small_machine(EstimatorKind::Paco(PacoConfig::paper()));
        m.run(20_000);
        // Drain: stop fetching by exhausting with a huge gate.
        m.gating = GatingPolicy::CountGate { gate_count: 0 };
        for _ in 0..5_000 {
            m.step();
        }
        let t = &m.threads[0];
        assert_eq!(t.in_flight, 0, "pipeline must drain");
        assert_eq!(t.estimator.score().0, 0, "confidence register must empty");
    }

    #[test]
    fn counter_estimator_tokens_balance() {
        let mut m = small_machine(EstimatorKind::ThresholdCount(
            ThresholdCountConfig::paper_default(),
        ));
        m.run(20_000);
        m.gating = GatingPolicy::CountGate { gate_count: 0 };
        for _ in 0..5_000 {
            m.step();
        }
        assert_eq!(m.threads[0].estimator.score().0, 0);
    }

    #[test]
    fn gating_reduces_badpath_execution() {
        let mut base = small_machine(EstimatorKind::ThresholdCount(
            ThresholdCountConfig::paper_default(),
        ));
        let b = base.run(100_000);

        let mut gated = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(
                Box::new(BenchmarkId::Gzip.build(3)),
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            )
            .gating(GatingPolicy::CountGate { gate_count: 1 })
            .seed(11)
            .build();
        let g = gated.run(100_000);

        assert!(
            g.total_badpath_executed() < b.total_badpath_executed(),
            "gating must reduce badpath execution: {} vs {}",
            g.total_badpath_executed(),
            b.total_badpath_executed()
        );
        assert!(g.threads[0].gated_cycles > 0);
    }

    #[test]
    fn smt_runs_two_threads() {
        let mut m = MachineBuilder::new(SimConfig::paper_smt_8wide())
            .thread(Box::new(BenchmarkId::Gzip.build(1)), EstimatorKind::None)
            .thread(Box::new(BenchmarkId::Twolf.build(2)), EstimatorKind::None)
            .fetch_policy(FetchPolicy::ICount)
            .seed(5)
            .build();
        let stats = m.run(20_000);
        assert!(stats.threads[0].retired >= 20_000);
        assert!(stats.threads[1].retired >= 20_000);
    }

    #[test]
    fn oracle_instances_are_recorded() {
        let mut m = small_machine(EstimatorKind::Paco(PacoConfig::paper()));
        let stats = m.run(50_000);
        let total: u64 = stats.threads[0].prob_instances.iter().map(|b| b.0).sum();
        assert!(total > 50_000, "fetch+execute instances: {total}");
        // Badpath instances exist, so some bins contain non-goodpath samples.
        let bad: u64 = stats.threads[0]
            .prob_instances
            .iter()
            .map(|b| b.0 - b.1)
            .sum();
        assert!(bad > 0);
    }

    #[test]
    fn throttling_reduces_fetch_without_stopping_it() {
        let mut full = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(
                Box::new(BenchmarkId::Twolf.build(7)),
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            )
            .seed(3)
            .build();
        let f = full.run(50_000);

        let mut throttled = MachineBuilder::new(SimConfig::paper_4wide())
            .thread(
                Box::new(BenchmarkId::Twolf.build(7)),
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            )
            .gating(GatingPolicy::CountThrottle { start: 1 })
            .seed(3)
            .build();
        let t = throttled.run(50_000);

        assert!(
            t.total_badpath_fetched() < f.total_badpath_fetched(),
            "throttling must cut wrong-path fetch"
        );
        // Unlike a hard gate, throttling keeps the machine moving.
        assert!(t.ipc(0) > f.ipc(0) * 0.5, "throttle IPC {}", t.ipc(0));
    }

    #[test]
    fn smt_confidence_policy_does_not_starve_a_thread() {
        // A memory-bound thread (mcf) must not monopolize fetch just
        // because its few branches keep its confidence score at zero.
        let mut m = MachineBuilder::new(SimConfig::paper_smt_8wide())
            .thread(
                Box::new(BenchmarkId::Mcf.build(1)),
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            )
            .thread(
                Box::new(BenchmarkId::VprPlace.build(2)),
                EstimatorKind::ThresholdCount(ThresholdCountConfig::paper_default()),
            )
            .fetch_policy(FetchPolicy::Confidence)
            .seed(5)
            .build();
        let stats = m.run_cycles(120_000);
        let low = stats.threads[0].retired.min(stats.threads[1].retired);
        let high = stats.threads[0].retired.max(stats.threads[1].retired);
        assert!(
            low * 20 > high,
            "starvation: {} vs {} retired",
            stats.threads[0].retired,
            stats.threads[1].retired
        );
    }

    #[test]
    fn reset_stats_preserves_microarchitectural_state() {
        let mut m = small_machine(EstimatorKind::Paco(PacoConfig::paper()));
        m.run(30_000);
        let warm_rate = {
            let s = m.stats();
            s.threads[0].cond_mispredict_pct().unwrap()
        };
        m.reset_stats();
        let s = m.stats();
        assert_eq!(s.threads[0].retired, 0);
        assert_eq!(s.cycles, 0);
        // Continue running: the predictor is still warm, so the mispredict
        // rate should not blow back up to cold-start levels.
        let s2 = m.run(30_000);
        let rate = s2.threads[0].cond_mispredict_pct().unwrap();
        assert!(
            rate < warm_rate * 1.5 + 1.0,
            "post-reset rate {rate:.2}% vs warm {warm_rate:.2}%"
        );
    }

    #[test]
    fn deterministic_runs() {
        let s1 = small_machine(EstimatorKind::Paco(PacoConfig::paper())).run(30_000);
        let s2 = small_machine(EstimatorKind::Paco(PacoConfig::paper())).run(30_000);
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.threads[0].retired, s2.threads[0].retired);
        assert_eq!(
            s1.threads[0].cond_mispredicted,
            s2.threads[0].cond_mispredicted
        );
    }
}
