//! Struct-of-arrays batches of pipeline outcomes.
//!
//! The output-side twin of [`paco_types::EventBatch`]: where the event
//! batch carries what goes *into* [`OnlinePipeline::run_batch`]
//! (crate::OnlinePipeline::run_batch), an [`OutcomeBatch`] carries what
//! comes out, in the exact field layout the serve wire encoding wants —
//! a flags byte (predicted/mispredicted/has-probability), the score,
//! and the raw IEEE-754 probability bits. The flag bit assignments here
//! are the *normative* ones for the `paco-serve` PREDICTIONS payload;
//! `paco_serve::proto` re-uses these constants so the two layers cannot
//! drift apart.

use crate::OnlineOutcome;

/// A struct-of-arrays batch of [`OnlineOutcome`]s, reusable across
/// frames ([`clear`](OutcomeBatch::clear) keeps capacity).
///
/// # Examples
///
/// ```
/// use paco_sim::{OnlineOutcome, OutcomeBatch};
///
/// let mut out = OutcomeBatch::new();
/// out.push(&OnlineOutcome {
///     score: 42,
///     prob_bits: Some(0.5f64.to_bits()),
///     predicted_taken: true,
///     mispredicted: false,
/// });
/// assert_eq!(out.len(), 1);
/// assert_eq!(out.get(0).score, 42);
/// assert_eq!(out.flags()[0], OutcomeBatch::FLAG_PREDICTED_TAKEN | OutcomeBatch::FLAG_HAS_PROB);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeBatch {
    flags: Vec<u8>,
    scores: Vec<u64>,
    probs: Vec<u64>,
}

impl OutcomeBatch {
    /// Flag bit: the pipeline predicted the branch taken.
    pub const FLAG_PREDICTED_TAKEN: u8 = 0x01;
    /// Flag bit: the prediction missed the architectural outcome.
    pub const FLAG_MISPREDICTED: u8 = 0x02;
    /// Flag bit: a goodpath-probability value is present.
    pub const FLAG_HAS_PROB: u8 = 0x04;
    /// Every bit an outcome's flags byte may carry.
    pub const FLAG_ALL: u8 =
        Self::FLAG_PREDICTED_TAKEN | Self::FLAG_MISPREDICTED | Self::FLAG_HAS_PROB;

    /// Creates an empty batch.
    pub fn new() -> Self {
        OutcomeBatch::default()
    }

    /// Creates an empty batch with room for `n` outcomes.
    pub fn with_capacity(n: usize) -> Self {
        OutcomeBatch {
            flags: Vec::with_capacity(n),
            scores: Vec::with_capacity(n),
            probs: Vec::with_capacity(n),
        }
    }

    /// Number of outcomes in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the batch holds no outcomes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Empties the batch, retaining capacity for reuse.
    pub fn clear(&mut self) {
        self.flags.clear();
        self.scores.clear();
        self.probs.clear();
    }

    /// Reserves room for `n` additional outcomes.
    pub fn reserve(&mut self, n: usize) {
        self.flags.reserve(n);
        self.scores.reserve(n);
        self.probs.reserve(n);
    }

    /// Appends one outcome.
    #[inline]
    pub fn push(&mut self, o: &OnlineOutcome) {
        // Branchless flag packing; the shifts are pinned to the flag
        // constants at compile time.
        const _: () = assert!(
            OutcomeBatch::FLAG_PREDICTED_TAKEN == 1
                && OutcomeBatch::FLAG_MISPREDICTED == 1 << 1
                && OutcomeBatch::FLAG_HAS_PROB == 1 << 2
        );
        let flags = o.predicted_taken as u8
            | (o.mispredicted as u8) << 1
            | (o.prob_bits.is_some() as u8) << 2;
        self.flags.push(flags);
        self.scores.push(o.score);
        self.probs.push(o.prob_bits.unwrap_or(0));
    }

    /// Appends a whole chunk of outcomes from the batched kernel's
    /// staging arrays — three `memcpy`s instead of three `Vec` pushes
    /// per event. Callers must pack `flags` with the `FLAG_*` bits and
    /// zero `probs` entries whose [`FLAG_HAS_PROB`](Self::FLAG_HAS_PROB)
    /// bit is clear, exactly as [`push`](Self::push) would produce (the
    /// wire encoder and the parity digests read the arrays raw).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree.
    #[inline]
    pub fn extend_packed(&mut self, flags: &[u8], scores: &[u64], probs: &[u64]) {
        assert_eq!(flags.len(), scores.len());
        assert_eq!(flags.len(), probs.len());
        debug_assert!(flags.iter().all(|f| f & !Self::FLAG_ALL == 0));
        debug_assert!(flags
            .iter()
            .zip(probs)
            .all(|(f, &p)| f & Self::FLAG_HAS_PROB != 0 || p == 0));
        self.flags.extend_from_slice(flags);
        self.scores.extend_from_slice(scores);
        self.probs.extend_from_slice(probs);
    }

    /// Reconstructs outcome `i`.
    #[inline]
    pub fn get(&self, i: usize) -> OnlineOutcome {
        let flags = self.flags[i];
        OnlineOutcome {
            score: self.scores[i],
            prob_bits: (flags & Self::FLAG_HAS_PROB != 0).then(|| self.probs[i]),
            predicted_taken: flags & Self::FLAG_PREDICTED_TAKEN != 0,
            mispredicted: flags & Self::FLAG_MISPREDICTED != 0,
        }
    }

    /// Iterates the batch as reconstructed [`OnlineOutcome`]s.
    pub fn iter(&self) -> impl Iterator<Item = OnlineOutcome> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// The per-outcome flag bytes (wire layout, see the `FLAG_*`
    /// constants).
    #[inline]
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// The per-outcome confidence scores.
    #[inline]
    pub fn scores(&self) -> &[u64] {
        &self.scores
    }

    /// The per-outcome raw probability bits (0 where
    /// [`FLAG_HAS_PROB`](Self::FLAG_HAS_PROB) is clear).
    #[inline]
    pub fn prob_bits(&self) -> &[u64] {
        &self.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<OnlineOutcome> {
        vec![
            OnlineOutcome {
                score: 0,
                prob_bits: None,
                predicted_taken: false,
                mispredicted: false,
            },
            OnlineOutcome {
                score: 4096,
                prob_bits: Some(0.25f64.to_bits()),
                predicted_taken: true,
                mispredicted: true,
            },
            OnlineOutcome {
                score: 17,
                prob_bits: Some(0u64),
                predicted_taken: true,
                mispredicted: false,
            },
        ]
    }

    #[test]
    fn round_trips_outcomes() {
        let outcomes = samples();
        let mut batch = OutcomeBatch::with_capacity(outcomes.len());
        for o in &outcomes {
            batch.push(o);
        }
        assert_eq!(batch.len(), outcomes.len());
        let back: Vec<OnlineOutcome> = batch.iter().collect();
        assert_eq!(back, outcomes);
    }

    #[test]
    fn zero_prob_bits_with_flag_survive() {
        // `Some(0)` and `None` must stay distinguishable: the flag, not
        // the value, carries presence.
        let o = OnlineOutcome {
            score: 1,
            prob_bits: Some(0),
            predicted_taken: false,
            mispredicted: false,
        };
        let mut batch = OutcomeBatch::new();
        batch.push(&o);
        assert_eq!(batch.get(0), o);
    }

    #[test]
    fn extend_packed_matches_per_event_push() {
        let outcomes = samples();
        let mut pushed = OutcomeBatch::new();
        for o in &outcomes {
            pushed.push(o);
        }
        let flags: Vec<u8> = outcomes
            .iter()
            .map(|o| {
                o.predicted_taken as u8
                    | (o.mispredicted as u8) << 1
                    | (o.prob_bits.is_some() as u8) << 2
            })
            .collect();
        let scores: Vec<u64> = outcomes.iter().map(|o| o.score).collect();
        let probs: Vec<u64> = outcomes.iter().map(|o| o.prob_bits.unwrap_or(0)).collect();
        let mut packed = OutcomeBatch::new();
        packed.extend_packed(&flags, &scores, &probs);
        assert_eq!(pushed, packed);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut batch = OutcomeBatch::new();
        for o in &samples() {
            batch.push(o);
        }
        let cap = batch.scores.capacity();
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.scores.capacity(), cap);
    }
}
