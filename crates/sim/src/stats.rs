//! Simulation statistics, including the confidence-instance samples that
//! feed reliability diagrams.

use paco_branch::Mdc;

/// Number of percent bins in the predicted-probability histogram (0–100).
pub const PROB_BINS: usize = 101;

/// Maximum tracked low-confidence counter value for counter-instance
/// sampling (larger scores are clamped into the last bin).
pub const SCORE_BINS: usize = 64;

/// Per-thread statistics for one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStats {
    /// Instructions retired (architectural work).
    pub retired: u64,
    /// Instructions fetched (good + bad path).
    pub fetched: u64,
    /// Instructions fetched while the fetch unit was on the wrong path.
    pub fetched_badpath: u64,
    /// Instructions issued to functional units.
    pub executed: u64,
    /// Wrong-path instructions issued to functional units.
    pub executed_badpath: u64,
    /// Conditional branches retired.
    pub cond_retired: u64,
    /// Conditional branches retired that were mispredicted.
    pub cond_mispredicted: u64,
    /// All control-flow instructions retired.
    pub control_retired: u64,
    /// Control-flow instructions retired that were mispredicted.
    pub control_mispredicted: u64,
    /// Retired conditional branches per MDC-at-fetch bucket.
    pub mdc_retired: [u64; Mdc::BUCKETS],
    /// Mispredicted retired conditional branches per MDC-at-fetch bucket.
    pub mdc_mispredicted: [u64; Mdc::BUCKETS],
    /// Cycles in which gating blocked all fetch for this thread.
    pub gated_cycles: u64,
    /// Confidence instances binned by predicted goodpath percent:
    /// `(instances, instances-on-goodpath)`.
    pub prob_instances: Vec<(u64, u64)>,
    /// Confidence instances binned by integer confidence score
    /// (low-confidence branch count): `(instances, instances-on-goodpath)`.
    pub score_instances: Vec<(u64, u64)>,
}

impl ThreadStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        ThreadStats {
            retired: 0,
            fetched: 0,
            fetched_badpath: 0,
            executed: 0,
            executed_badpath: 0,
            cond_retired: 0,
            cond_mispredicted: 0,
            control_retired: 0,
            control_mispredicted: 0,
            mdc_retired: [0; Mdc::BUCKETS],
            mdc_mispredicted: [0; Mdc::BUCKETS],
            gated_cycles: 0,
            prob_instances: vec![(0, 0); PROB_BINS],
            score_instances: vec![(0, 0); SCORE_BINS],
        }
    }

    /// Records one confidence instance.
    #[inline]
    pub fn sample_instance(
        &mut self,
        predicted_goodpath: Option<f64>,
        score: u64,
        on_goodpath: bool,
    ) {
        if let Some(p) = predicted_goodpath {
            let bin = ((p * 100.0).round() as usize).min(PROB_BINS - 1);
            self.prob_instances[bin].0 += 1;
            self.prob_instances[bin].1 += on_goodpath as u64;
        }
        let sbin = (score as usize).min(SCORE_BINS - 1);
        self.score_instances[sbin].0 += 1;
        self.score_instances[sbin].1 += on_goodpath as u64;
    }

    /// Conditional mispredict rate in percent (None when no branches
    /// retired).
    pub fn cond_mispredict_pct(&self) -> Option<f64> {
        (self.cond_retired > 0)
            .then(|| 100.0 * self.cond_mispredicted as f64 / self.cond_retired as f64)
    }

    /// Overall control-flow mispredict rate in percent.
    pub fn overall_mispredict_pct(&self) -> Option<f64> {
        (self.control_retired > 0)
            .then(|| 100.0 * self.control_mispredicted as f64 / self.control_retired as f64)
    }

    /// Observed goodpath probability for a given score value, if sampled.
    pub fn observed_goodpath_at_score(&self, score: u64) -> Option<f64> {
        let (n, good) = self.score_instances[(score as usize).min(SCORE_BINS - 1)];
        (n > 0).then(|| good as f64 / n as f64)
    }

    /// Per-MDC-bucket mispredict rate in percent.
    pub fn mdc_bucket_mispredict_pct(&self, bucket: usize) -> Option<f64> {
        let n = self.mdc_retired[bucket];
        (n > 0).then(|| 100.0 * self.mdc_mispredicted[bucket] as f64 / n as f64)
    }
}

impl Default for ThreadStats {
    fn default() -> Self {
        ThreadStats::new()
    }
}

/// Whole-machine statistics for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Per-thread statistics.
    pub threads: Vec<ThreadStats>,
}

impl MachineStats {
    /// Instructions per cycle for one thread.
    pub fn ipc(&self, thread: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.threads[thread].retired as f64 / self.cycles as f64
        }
    }

    /// Total retired instructions across threads.
    pub fn total_retired(&self) -> u64 {
        self.threads.iter().map(|t| t.retired).sum()
    }

    /// Total wrong-path instructions executed across threads.
    pub fn total_badpath_executed(&self) -> u64 {
        self.threads.iter().map(|t| t.executed_badpath).sum()
    }

    /// Total wrong-path instructions fetched across threads.
    pub fn total_badpath_fetched(&self) -> u64 {
        self.threads.iter().map(|t| t.fetched_badpath).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_bins_probabilities() {
        let mut s = ThreadStats::new();
        s.sample_instance(Some(0.995), 0, true);
        s.sample_instance(Some(1.0), 0, true);
        s.sample_instance(Some(0.004), 7, false);
        assert_eq!(s.prob_instances[100].0, 2);
        assert_eq!(s.prob_instances[0], (1, 0));
        assert_eq!(s.score_instances[7], (1, 0));
        assert_eq!(s.score_instances[0], (2, 2));
    }

    #[test]
    fn sampling_clamps_out_of_range_scores() {
        let mut s = ThreadStats::new();
        s.sample_instance(None, 10_000, true);
        assert_eq!(s.score_instances[SCORE_BINS - 1], (1, 1));
        // No probability recorded.
        assert!(s.prob_instances.iter().all(|&(n, _)| n == 0));
    }

    #[test]
    fn rates_handle_empty_denominators() {
        let s = ThreadStats::new();
        assert_eq!(s.cond_mispredict_pct(), None);
        assert_eq!(s.overall_mispredict_pct(), None);
        assert_eq!(s.observed_goodpath_at_score(5), None);
        assert_eq!(s.mdc_bucket_mispredict_pct(0), None);
    }

    #[test]
    fn machine_ipc() {
        let mut m = MachineStats {
            cycles: 100,
            threads: vec![ThreadStats::new()],
        };
        m.threads[0].retired = 250;
        assert!((m.ipc(0) - 2.5).abs() < 1e-12);
        assert_eq!(m.total_retired(), 250);
    }
}
